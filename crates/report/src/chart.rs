//! ASCII bar charts and line plots: the terminal rendition of the paper's
//! figures.

/// Renders a horizontal bar chart: one row per `(label, value)`, bars
/// scaled so the max spans `width` characters.
///
/// # Examples
///
/// ```
/// let s = dcf_report::bar_chart(&[("Mon".into(), 4.0), ("Tue".into(), 2.0)], 10);
/// assert!(s.contains("##########")); // Mon at full width
/// assert!(s.contains("#####"));      // Tue at half
/// ```
pub fn bar_chart(data: &[(String, f64)], width: usize) -> String {
    let width = width.max(1);
    let max = data.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = data
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in data {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} |{} {value:.4}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Renders `(x, y)` series as a fixed-size ASCII scatter/line plot with
/// optional log-scaled x axis. `y` is assumed to be in `[0, 1]` (CDFs).
pub fn cdf_plot(series: &[(&str, &[(f64, f64)])], cols: usize, rows: usize, log_x: bool) -> String {
    let cols = cols.max(10);
    let rows = rows.max(5);
    let all_x: Vec<f64> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|(x, _)| *x))
        .filter(|x| !log_x || *x > 0.0)
        .collect();
    if all_x.is_empty() {
        return String::from("(no data)\n");
    }
    let tx = |x: f64| if log_x { x.ln() } else { x };
    let x_min = all_x.iter().copied().map(tx).fold(f64::INFINITY, f64::min);
    let x_max = all_x
        .iter()
        .copied()
        .map(tx)
        .fold(f64::NEG_INFINITY, f64::max);
    let span = (x_max - x_min).max(1e-12);

    let mut grid = vec![vec![' '; cols]; rows];
    let marks = ['*', '+', 'o', 'x', '.', '~'];
    for (si, (_, pts)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for &(x, y) in *pts {
            if log_x && x <= 0.0 {
                continue;
            }
            let cx = (((tx(x) - x_min) / span) * (cols - 1) as f64).round() as usize;
            let cy = ((1.0 - y.clamp(0.0, 1.0)) * (rows - 1) as f64).round() as usize;
            grid[cy.min(rows - 1)][cx.min(cols - 1)] = mark;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let y_label = 1.0 - r as f64 / (rows - 1) as f64;
        out.push_str(&format!("{y_label:4.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("     +");
    out.push_str(&"-".repeat(cols));
    out.push('\n');
    let x_lo = if log_x { x_min.exp() } else { x_min };
    let x_hi = if log_x { x_max.exp() } else { x_max };
    out.push_str(&format!(
        "      x: {x_lo:.3} .. {x_hi:.3}{}\n",
        if log_x { " (log scale)" } else { "" }
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("      {} {name}\n", marks[si % marks.len()]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let s = bar_chart(
            &[("a".into(), 10.0), ("bb".into(), 5.0), ("c".into(), 0.0)],
            20,
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(&"#".repeat(20)));
        assert!(lines[1].contains(&"#".repeat(10)));
        assert!(!lines[2].contains('#'));
        // Labels padded to equal width.
        assert!(lines[0].starts_with("a  |"));
        assert!(lines[1].starts_with("bb |"));
    }

    #[test]
    fn empty_bar_chart_is_empty() {
        assert_eq!(bar_chart(&[], 10), "");
    }

    #[test]
    fn cdf_plot_renders_grid_and_legend() {
        let pts: Vec<(f64, f64)> = (1..=100).map(|i| (i as f64, i as f64 / 100.0)).collect();
        let s = cdf_plot(&[("data", &pts)], 40, 10, false);
        assert!(s.contains("* data"));
        assert!(s.contains("1.00 |"));
        assert!(s.contains("0.00 |"));
        assert!(s.lines().count() >= 13);
    }

    #[test]
    fn log_scale_skips_nonpositive_x() {
        let pts = [(0.0, 0.1), (1.0, 0.5), (100.0, 1.0)];
        let s = cdf_plot(&[("d", &pts)], 30, 6, true);
        assert!(s.contains("log scale"));
    }

    #[test]
    fn no_data_message() {
        let s = cdf_plot(&[("d", &[][..])], 30, 6, false);
        assert!(s.contains("no data"));
    }
}
