//! One renderer per paper table/figure: each prints the same rows/series
//! the paper reports, with the paper's published value alongside where one
//! exists. The `reproduce` binary in `dcf-bench` drives these.

use dcf_core::paper;
use dcf_core::FailureStudy;
use dcf_stats::ContinuousDistribution as _;
use dcf_trace::{ComponentClass, FailureType, FotCategory};

use crate::chart::{bar_chart, cdf_plot};
use crate::table::{days, pct, TextTable};

/// Table I: FOT categories.
pub fn render_table1(study: &FailureStudy<'_>) -> String {
    let b = study.overview().category_breakdown();
    let mut t = TextTable::new(vec!["Failure trace", "Measured", "Paper"]);
    for ((name, paper_share), measured) in
        paper::CATEGORY_SHARES
            .iter()
            .zip([b.fixing_share, b.error_share, b.false_alarm_share])
    {
        t.row(vec![(*name).into(), pct(measured), pct(*paper_share)]);
    }
    format!(
        "Table I — FOT categories ({} tickets)\n{}",
        b.total,
        t.render()
    )
}

/// Table II: failure breakdown by component.
pub fn render_table2(study: &FailureStudy<'_>) -> String {
    let rows = study.overview().component_breakdown();
    let mut t = TextTable::new(vec!["Device", "Count", "Measured", "Paper"]);
    for r in &rows {
        let paper_share = paper::COMPONENT_SHARES
            .iter()
            .find(|(c, _)| *c == r.class)
            .map(|(_, s)| *s)
            .unwrap_or(0.0);
        t.row(vec![
            r.class.name().into(),
            r.count.to_string(),
            pct(r.share),
            pct(paper_share),
        ]);
    }
    format!("Table II — failure percentage by component\n{}", t.render())
}

/// Table III: the failure-type taxonomy (definitional; no measurement).
pub fn render_table3() -> String {
    let mut t = TextTable::new(vec!["Class", "Failure type", "Severity"]);
    for class in ComponentClass::ALL {
        for ft in FailureType::types_of(class) {
            t.row(vec![
                class.name().into(),
                ft.name().into(),
                format!("{:?}", ft.severity()),
            ]);
        }
    }
    format!("Table III — failure-type taxonomy\n{}", t.render())
}

/// Figure 2: failure-type breakdown for the four classes the paper plots.
pub fn render_fig2(study: &FailureStudy<'_>) -> String {
    let mut out = String::from("Figure 2 — failure type breakdown\n");
    for class in [
        ComponentClass::Hdd,
        ComponentClass::RaidCard,
        ComponentClass::FlashCard,
        ComponentClass::Memory,
    ] {
        let rows = study.overview().type_breakdown(class);
        out.push_str(&format!("\n  ({})\n", class.name()));
        let data: Vec<(String, f64)> = rows
            .iter()
            .map(|r| (r.failure_type.name().to_string(), r.share))
            .collect();
        for line in bar_chart(&data, 40).lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Figure 3: day-of-week fractions plus the Hypothesis 1 tests.
pub fn render_fig3(study: &FailureStudy<'_>) -> String {
    let mut out = String::from("Figure 3 — failures per day of week\n");
    for class in [
        None,
        Some(ComponentClass::Hdd),
        Some(ComponentClass::Memory),
        Some(ComponentClass::RaidCard),
        Some(ComponentClass::Miscellaneous),
    ] {
        let Ok(r) = study.temporal().day_of_week(class) else {
            continue;
        };
        let name = class.map_or("All", |c| c.name());
        out.push_str(&format!("\n  ({name})  H1 test: {}\n", r.uniformity));
        let data: Vec<(String, f64)> = dcf_trace::Weekday::ALL
            .iter()
            .map(|w| (w.abbrev().to_string(), r.fractions[w.index()]))
            .collect();
        for line in bar_chart(&data, 40).lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Figure 4: hour-of-day fractions plus the Hypothesis 2 tests.
pub fn render_fig4(study: &FailureStudy<'_>) -> String {
    let mut out = String::from("Figure 4 — failures per hour of day\n");
    for class in [
        ComponentClass::Hdd,
        ComponentClass::Memory,
        ComponentClass::Motherboard,
        ComponentClass::RaidCard,
        ComponentClass::Ssd,
        ComponentClass::Power,
        ComponentClass::FlashCard,
        ComponentClass::Miscellaneous,
    ] {
        let Ok(r) = study.temporal().hour_of_day(Some(class)) else {
            continue;
        };
        out.push_str(&format!(
            "\n  ({})  H2 test: {}\n",
            class.name(),
            r.uniformity
        ));
        let data: Vec<(String, f64)> = (0..24)
            .map(|h| (format!("{h:02}"), r.fractions[h]))
            .collect();
        for line in bar_chart(&data, 36).lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Figure 5: TBF CDF with the four fitted families and their tests.
pub fn render_fig5(study: &FailureStudy<'_>) -> String {
    let temporal = study.temporal();
    let Ok(tbf) = temporal.tbf_all() else {
        return String::from("Figure 5 — not enough failures for TBF analysis\n");
    };
    let mut out = format!(
        "Figure 5 — TBF over all components\n  MTBF = {:.1} min (paper: {:.1}); median = {:.1} min; n = {}\n",
        tbf.mtbf_minutes,
        paper::MTBF_MINUTES,
        tbf.median_minutes,
        tbf.n
    );
    let per_dc = temporal.mtbf_by_dc(100);
    if !per_dc.is_empty() {
        let min = per_dc.iter().map(|(_, m)| *m).fold(f64::INFINITY, f64::min);
        let max = per_dc.iter().map(|(_, m)| *m).fold(0.0f64, f64::max);
        out.push_str(&format!(
            "  per-DC MTBF range: {min:.0}–{max:.0} min (paper: {:.0}–{:.0})\n",
            paper::MTBF_BY_DC_RANGE_MINUTES.0,
            paper::MTBF_BY_DC_RANGE_MINUTES.1
        ));
    }
    let mut t = TextTable::new(vec!["Family", "Fit", "chi2", "p-value", "Rejected@0.05"]);
    for fit in &tbf.fits {
        t.row(vec![
            fit.fitted.name().into(),
            fit.fitted.to_string(),
            format!("{:.1}", fit.test.statistic),
            format!("{:.2e}", fit.test.p_value),
            if fit.test.rejects_at(0.05) {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    out.push_str(&t.render());
    if let Ok(pts) = temporal.tbf_ecdf(60) {
        out.push_str("\n  Empirical CDF (log-scaled minutes):\n");
        out.push_str(&cdf_plot(&[("TBF", &pts)], 60, 12, true));
    }
    out
}

/// Figure 6: normalized monthly failure rates per class.
pub fn render_fig6(study: &FailureStudy<'_>) -> String {
    let mut out = String::from("Figure 6 — normalized monthly failure rate by age\n");
    let all = study.lifecycle().all();
    for r in &all {
        let series = r.normalized_series();
        if series.len() < 6 {
            continue;
        }
        out.push_str(&format!("\n  ({})\n", r.class.name()));
        let data: Vec<(String, f64)> = series
            .iter()
            .filter(|(m, _)| m % 3 == 0) // quarterly bars keep it compact
            .map(|(m, v)| (format!("m{m:02}"), *v))
            .collect();
        for line in bar_chart(&data, 40).lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out.push_str("\n  Headline lifecycle statistics:\n");
    let mut t = TextTable::new(vec!["Metric", "Measured", "Paper"]);
    let raid = &all[ComponentClass::RaidCard.index()];
    t.row(vec![
        "RAID failures in first 6 months".into(),
        pct(raid.failure_fraction(0..6)),
        pct(paper::lifecycle::RAID_FIRST_6_MONTHS),
    ]);
    let hdd = &all[ComponentClass::Hdd.index()];
    if let (Some(infant), Some(trough)) = (hdd.mean_rate(0..3), hdd.mean_rate(3..9)) {
        t.row(vec![
            "HDD infant rate / months 4-9 rate".into(),
            format!("{:.2}", infant / trough),
            format!("{:.2}", paper::lifecycle::HDD_INFANT_OVER_TROUGH),
        ]);
    }
    let mb = &all[ComponentClass::Motherboard.index()];
    t.row(vec![
        "Motherboard failures after 3 years".into(),
        pct(mb.failure_fraction(36..48)),
        pct(paper::lifecycle::MOTHERBOARD_AFTER_36_MONTHS),
    ]);
    let flash = &all[ComponentClass::FlashCard.index()];
    t.row(vec![
        "Flash failures in first 12 months".into(),
        pct(flash.failure_fraction(0..12)),
        pct(paper::lifecycle::FLASH_FIRST_12_MONTHS),
    ]);
    out.push_str(&t.render());
    out
}

/// Figure 7: failure concentration plus repeat statistics.
pub fn render_fig7(study: &FailureStudy<'_>) -> String {
    let skew = study.skew();
    let c = skew.concentration();
    let r = skew.repeats();
    let mut out = format!(
        "Figure 7 — failure concentration across servers\n  servers ever failed: {} ({} of fleet); max FOTs on one server: {}\n",
        c.servers_ever_failed,
        pct(c.ever_failed_share),
        c.max_on_one_server
    );
    let mut t = TextTable::new(vec!["Top share of ever-failed servers", "Failure share"]);
    for f in [0.01, 0.02, 0.05, 0.10, 0.25, 0.50] {
        t.row(vec![pct(f), pct(c.top_share(f))]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\n  Repeats: {} of fixed components never repeat (paper: >{}); {} of ever-failed servers repeat (paper: ~{})\n",
        pct(r.never_repeat_share),
        pct(paper::repeats::NEVER_REPEAT_SHARE),
        pct(r.repeat_server_share),
        pct(paper::repeats::REPEAT_SERVER_SHARE),
    ));
    let curve = c.curve(40);
    out.push_str("  Concentration curve (x: top server fraction, y: failure share):\n");
    out.push_str(&cdf_plot(&[("concentration", &curve)], 50, 10, false));
    out
}

/// Table IV + Figure 8: the spatial analysis.
pub fn render_table4_fig8(study: &FailureStudy<'_>) -> String {
    let spatial = study.spatial();
    let results = spatial.by_data_center(200);
    let t4 = spatial.table_iv(&results);
    let mut out = String::from("Table IV — chi-squared results for Hypothesis 5\n");
    let mut t = TextTable::new(vec!["p-value", "Measured", "Paper (of 24)"]);
    t.row(vec![
        "p < 0.01".into(),
        t4.rejected_001.to_string(),
        paper::table_iv::REJECTED_001.to_string(),
    ]);
    t.row(vec![
        "0.01 <= p < 0.05".into(),
        t4.borderline.to_string(),
        paper::table_iv::BORDERLINE.to_string(),
    ]);
    t.row(vec![
        "p >= 0.05".into(),
        t4.accepted.to_string(),
        paper::table_iv::ACCEPTED.to_string(),
    ]);
    t.row(vec![
        "skipped (few failures)".into(),
        t4.skipped.to_string(),
        "0".into(),
    ]);
    out.push_str(&t.render());
    let share = spatial.modern_acceptance_share(&results, 0.02);
    if share.is_finite() {
        out.push_str(&format!(
            "  post-2014 DCs where H5 cannot be rejected at 0.02: {} (paper: ~90 %)\n",
            pct(share)
        ));
    }

    // Figure 8: the two example DCs.
    for (idx, label) in [(0usize, "A"), (1usize, "B")] {
        let Some(r) = results.get(idx) else { continue };
        out.push_str(&format!(
            "\nFigure 8 ({label}) — failure ratio per rack position ({})\n",
            r.dc
        ));
        if let Some(test) = &r.test {
            out.push_str(&format!("  H5 test: {test}\n"));
        }
        if !r.anomalous_positions.is_empty() {
            out.push_str(&format!(
                "  positions outside mu±2sigma: {:?}\n",
                r.anomalous_positions
            ));
        }
        let data: Vec<(String, f64)> = r
            .positions
            .iter()
            .map(|p| (format!("u{:02}", p.position), p.ratio))
            .collect();
        for line in bar_chart(&data, 40).lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Table V: batch failure frequencies.
pub fn render_table5(study: &FailureStudy<'_>) -> String {
    let batch = study.batch();
    let thresholds = batch.scaled_thresholds();
    let rows = batch.r_n(&thresholds);
    let mut out = format!(
        "Table V — batch failure frequency (thresholds {:?}, scaled from the paper's 100/200/500)\n",
        thresholds
    );
    let mut t = TextTable::new(vec![
        "Device",
        "rN1 %",
        "rN2 %",
        "rN3 %",
        "paper r100/r200/r500 %",
    ]);
    for row in &rows {
        let paper_row = paper::BATCH_FREQUENCIES
            .iter()
            .find(|(c, _, _, _)| *c == row.class);
        let paper_s = paper_row
            .map(|(_, a, b, c)| format!("{a:.1}/{b:.1}/{c:.1}"))
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            row.class.name().into(),
            format!("{:.1}", 100.0 * row.r[0].1),
            format!("{:.1}", 100.0 * row.r[1].1),
            format!("{:.1}", 100.0 * row.r[2].1),
            paper_s,
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Table VI: correlated component pairs.
pub fn render_table6(study: &FailureStudy<'_>) -> String {
    let c = study.correlation().component_pairs();
    let mut out = format!(
        "Table VI — correlated component failures\n  servers with same-day multi-component failures: {} ({} of ever-failed; paper: {})\n  incidents involving misc: {} (paper: {})\n",
        c.servers_with_pairs,
        pct(c.pair_server_share),
        pct(paper::correlation::PAIR_SERVER_SHARE),
        pct(c.misc_involved_share),
        pct(paper::correlation::MISC_INVOLVED_SHARE),
    );
    let mut t = TextTable::new(vec!["Pair", "Count"]);
    for p in c.pairs.iter().take(15) {
        t.row(vec![
            format!("{} + {}", p.a.name(), p.b.name()),
            p.count.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Table VII: power → fan causal examples.
pub fn render_table7(study: &FailureStudy<'_>) -> String {
    let examples =
        study
            .correlation()
            .causal_examples(ComponentClass::Power, ComponentClass::Fan, 300, 5);
    let mut out = String::from("Table VII — correlated power/fan failures (within 5 minutes)\n");
    if examples.is_empty() {
        out.push_str("  (none found at this scale — the channel fires with probability ~1.5e-3 per PSU failure)\n");
        return out;
    }
    let mut t = TextTable::new(vec!["Server", "First", "Second"]);
    for e in &examples {
        t.row(vec![
            e.server.to_string(),
            format!("{} {} {}", e.first.0.name(), e.first.1, e.first.2),
            format!("{} {} {}", e.second.0.name(), e.second.1, e.second.2),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Table VIII: synchronously repeating server groups.
pub fn render_table8(study: &FailureStudy<'_>) -> String {
    let groups = study.correlation().synchronous_groups(60, 3, 6);
    let mut out = String::from("Table VIII — synchronously repeating failures\n");
    if groups.is_empty() {
        out.push_str("  (no synchronous groups found)\n");
        return out;
    }
    for g in groups.iter().take(3) {
        out.push_str(&format!(
            "  servers {} and {}: {} synchronized occurrences\n",
            g.servers[0],
            g.servers[1],
            g.occurrences.len()
        ));
        for t in g.occurrences.iter().take(6) {
            out.push_str(&format!("    {t}\n"));
        }
    }
    out
}

/// Figure 9: RT CDF for `D_fixing` and `D_falsealarm`.
pub fn render_fig9(study: &FailureStudy<'_>) -> String {
    let resp = study.response();
    let mut out = String::from("Figure 9 — operator response time\n");
    let mut t = TextTable::new(vec![
        "Category",
        "n",
        "MTTR",
        "Median",
        ">140d",
        ">200d",
        "Paper MTTR/median",
    ]);
    for (cat, p_mean, p_median) in [
        (
            FotCategory::Fixing,
            paper::response::FIXING_MEAN_DAYS,
            paper::response::FIXING_MEDIAN_DAYS,
        ),
        (
            FotCategory::FalseAlarm,
            paper::response::FALSE_ALARM_MEAN_DAYS,
            paper::response::FALSE_ALARM_MEDIAN_DAYS,
        ),
    ] {
        if let Ok(s) = resp.rt_of_category(cat) {
            t.row(vec![
                cat.name().into(),
                s.n.to_string(),
                days(s.mean_days),
                days(s.median_days),
                pct(s.over_140d),
                pct(s.over_200d),
                format!("{p_mean:.1}/{p_median:.1} d"),
            ]);
        }
    }
    out.push_str(&t.render());
    let fixing = resp.rt_cdf(FotCategory::Fixing, 60).unwrap_or_default();
    let fa = resp.rt_cdf(FotCategory::FalseAlarm, 60).unwrap_or_default();
    out.push_str("\n  CDF of RT in days (log x):\n");
    out.push_str(&cdf_plot(
        &[("D_fixing", &fixing), ("D_falsealarm", &fa)],
        60,
        12,
        true,
    ));
    out
}

/// Figure 10: RT per component class.
pub fn render_fig10(study: &FailureStudy<'_>) -> String {
    let by_class = study.response().rt_by_class(20);
    let mut out = String::from("Figure 10 — response time by component class\n");
    let mut t = TextTable::new(vec!["Class", "n", "Median", "Mean", "p90"]);
    let mut rows = by_class;
    rows.sort_by(|a, b| {
        a.1.median_days
            .partial_cmp(&b.1.median_days)
            .expect("finite")
    });
    for (class, s) in &rows {
        t.row(vec![
            class.name().into(),
            s.n.to_string(),
            days(s.median_days),
            days(s.mean_days),
            days(s.p90_days),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("  (paper: SSD and misc close within hours; HDD/fan/memory take 7-18 days)\n");
    out
}

/// Figure 11: per-product-line HDD failure count vs median RT.
pub fn render_fig11(study: &FailureStudy<'_>) -> String {
    let resp = study.response();
    let points = resp.rt_by_product_line_hdd(5);
    let mut out = String::from("Figure 11 — median RT vs HDD failures per product line\n");
    if points.is_empty() {
        out.push_str("  (no product lines with enough HDD responses)\n");
        return out;
    }
    // Scale the paper's <100-failure cutoff with fleet size.
    let cutoff = ((100.0 * study.trace().servers().len() as f64 / 160_000.0) as usize).max(5);
    if let Some(s) = resp.line_rt_summary(&points, cutoff) {
        let mut t = TextTable::new(vec!["Metric", "Measured", "Paper"]);
        t.row(vec![
            "top-1% lines median RT".into(),
            days(s.top1pct_median_days),
            days(paper::response::TOP_LINES_MEDIAN_DAYS),
        ]);
        t.row(vec![
            format!("small lines (<{cutoff} failures) with median > 100 d"),
            pct(s.small_line_over_100d_share),
            pct(paper::response::SMALL_LINE_OVER_100D_SHARE),
        ]);
        t.row(vec![
            "std dev of line medians".into(),
            days(s.std_dev_days),
            days(paper::response::LINE_STD_DEV_DAYS),
        ]);
        out.push_str(&t.render());
    }
    out.push_str("\n  Scatter (x: HDD failures, log; y: median RT days / 200, capped):\n");
    let pts: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.hdd_failures as f64, (p.median_rt_days / 200.0).min(1.0)))
        .collect();
    out.push_str(&cdf_plot(&[("lines", &pts)], 60, 12, true));
    out
}

/// §VII-A extension: the warning→failure predictor evaluation.
pub fn render_prediction(study: &FailureStudy<'_>) -> String {
    let mut out = String::from("Extension (paper §VII-A) — warning-based failure prediction\n");
    let mut t = TextTable::new(vec![
        "Horizon",
        "Warnings",
        "Precision",
        "Recall",
        "F1",
        "Median lead",
    ]);
    for eval in study.prediction().sweep(&[1, 3, 7, 14, 30], None) {
        t.row(vec![
            format!("{} d", eval.horizon_days),
            eval.warnings.to_string(),
            pct(eval.precision),
            pct(eval.recall),
            format!("{:.3}", eval.f1()),
            eval.median_lead_days
                .map(|d| format!("{d:.1} d"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("  (the paper: the FMS team predicts failures 'a couple of days early')\n");
    out
}

/// §VII-A extension: the open-ticket backlog and degraded fleet.
pub fn render_backlog(study: &FailureStudy<'_>) -> String {
    let backlog = study.backlog();
    let s = backlog.summary();
    let mut out = String::from("Extension (paper §VII-A) — repair backlog and degraded capacity\n");
    out.push_str(&format!(
        "  mean open D_fixing tickets : {:.0} ({:.2} per 1k servers)\n",
        s.mean_open, s.mean_open_per_1k_servers
    ));
    out.push_str(&format!(
        "  peak open tickets          : {} (day d{})\n",
        s.peak_open, s.peak_day
    ));
    out.push_str(&format!(
        "  degraded fleet at window end (servers with unrepaired D_error failures): {}\n",
        pct(s.degraded_share_at_end)
    ));
    let timeline = backlog.open_timeline(None);
    let max = timeline.iter().map(|p| p.count).max().unwrap_or(1).max(1) as f64;
    let pts: Vec<(f64, f64)> = timeline
        .iter()
        .step_by((timeline.len() / 60).max(1))
        .map(|p| (p.day as f64, p.count as f64 / max))
        .collect();
    out.push_str("  Open tickets over time (y normalized to peak):\n");
    out.push_str(&cdf_plot(&[("open", &pts)], 60, 10, false));
    out
}

/// Renders every experiment in paper order.
pub fn render_all(study: &FailureStudy<'_>) -> String {
    [
        render_table1(study),
        render_table2(study),
        render_table3(),
        render_fig2(study),
        render_fig3(study),
        render_fig4(study),
        render_fig5(study),
        render_fig6(study),
        render_fig7(study),
        render_table4_fig8(study),
        render_table5(study),
        render_table6(study),
        render_table7(study),
        render_table8(study),
        render_fig9(study),
        render_fig10(study),
        render_fig11(study),
        render_prediction(study),
        render_backlog(study),
    ]
    .join("\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn trace() -> &'static dcf_trace::Trace {
        static T: OnceLock<dcf_trace::Trace> = OnceLock::new();
        T.get_or_init(|| {
            dcf_sim::Scenario::small()
                .seed(0xDCF)
                .simulate(&dcf_sim::RunOptions::default())
                .unwrap()
        })
    }

    #[test]
    fn every_renderer_produces_output() {
        let trace = trace();
        let study = FailureStudy::new(trace);
        for (name, text) in [
            ("t1", render_table1(&study)),
            ("t2", render_table2(&study)),
            ("t3", render_table3()),
            ("f2", render_fig2(&study)),
            ("f3", render_fig3(&study)),
            ("f4", render_fig4(&study)),
            ("f5", render_fig5(&study)),
            ("f6", render_fig6(&study)),
            ("f7", render_fig7(&study)),
            ("t4f8", render_table4_fig8(&study)),
            ("t5", render_table5(&study)),
            ("t6", render_table6(&study)),
            ("t7", render_table7(&study)),
            ("t8", render_table8(&study)),
            ("pred", render_prediction(&study)),
            ("backlog", render_backlog(&study)),
            ("f9", render_fig9(&study)),
            ("f10", render_fig10(&study)),
            ("f11", render_fig11(&study)),
        ] {
            assert!(text.lines().count() >= 2, "{name} too short:\n{text}");
        }
    }

    #[test]
    fn table1_mentions_all_categories_and_paper_values() {
        let study = FailureStudy::new(trace());
        let s = render_table1(&study);
        assert!(s.contains("D_fixing") && s.contains("D_error") && s.contains("D_falsealarm"));
        assert!(s.contains("70.30 %")); // paper reference column
    }

    #[test]
    fn render_all_concatenates_everything() {
        let study = FailureStudy::new(trace());
        let s = render_all(&study);
        assert!(s.contains("Table I"));
        assert!(s.contains("Figure 11"));
        assert!(s.contains("Table VIII"));
    }
}
