//! # dcf-report
//!
//! Rendering for the `dcfail` study: aligned text tables, ASCII bar/CDF
//! charts, and one renderer per paper table/figure (used by the
//! `reproduce` binary and the EXPERIMENTS.md generator).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chart;
mod document;
pub mod experiments;
mod runreport;
mod table;

pub use chart::{bar_chart, cdf_plot};
pub use document::markdown_report;
pub use runreport::run_report_markdown;
pub use table::{days, pct, TextTable};
