//! Aligned plain-text tables for terminal reports.

/// A simple column-aligned text table builder.
///
/// # Examples
///
/// ```
/// use dcf_report::TextTable;
///
/// let mut t = TextTable::new(vec!["Device", "Share"]);
/// t.row(vec!["HDD".into(), "81.84 %".into()]);
/// t.row(vec!["Memory".into(), "3.06 %".into()]);
/// let s = t.render();
/// assert!(s.contains("HDD"));
/// assert!(s.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Rows shorter than the header are padded with
    /// empty cells; longer rows are truncated.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table: header, rule, then rows, columns padded to the
    /// widest cell. First column is left-aligned, the rest right-aligned.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                if i == 0 {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }
}

/// Formats a fraction as a percent with two decimals (`0.8184` → `81.84 %`).
pub fn pct(x: f64) -> String {
    format!("{:.2} %", 100.0 * x)
}

/// Formats a day count with one decimal (`6.13` → `6.1 d`).
pub fn days(x: f64) -> String {
    format!("{x:.1} d")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Right-aligned numeric column: both rows end at the same offset.
        assert_eq!(lines[2].len(), lines[2].trim_end().len());
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
        t.row(vec!["1".into(), "2".into(), "extra".into()]);
        let s = t.render();
        assert!(!s.contains("extra"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = TextTable::new(vec!["h1", "h2"]);
        t.row(vec!["a".into(), "b".into()]);
        let md = t.render_markdown();
        assert!(md.contains("| h1 | h2 |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| a | b |"));
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.8184), "81.84 %");
        assert_eq!(days(6.13), "6.1 d");
    }
}
