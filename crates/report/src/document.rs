//! Whole-study markdown document generation: every experiment as a
//! markdown section with paper-vs-measured tables — the machine-written
//! counterpart of EXPERIMENTS.md.

use dcf_core::paper;
use dcf_core::FailureStudy;
use dcf_trace::{ComponentClass, FotCategory};

use crate::table::TextTable;

fn md_pct(x: f64) -> String {
    format!("{:.2} %", 100.0 * x)
}

/// Renders the complete study as a markdown document.
///
/// Sections: provenance, Table I/II, hypotheses H1–H5, TBF, lifecycle,
/// repeats/concentration, spatial, batch `r_N`, correlations, response
/// times, the §VII extensions (prediction + backlog).
pub fn markdown_report(study: &FailureStudy<'_>) -> String {
    let trace = study.trace();
    let mut out = String::new();
    out.push_str("# Failure study report\n\n");
    out.push_str(&format!(
        "Trace: `{}` — seed {}, {} servers, {} data centers, {} product lines, {}-day window, {} tickets.\n\n",
        trace.info().description,
        trace.info().seed,
        trace.servers().len(),
        trace.data_centers().len(),
        trace.product_lines().len(),
        trace.info().days,
        trace.len(),
    ));

    // Table I.
    let b = study.overview().category_breakdown();
    out.push_str("## Ticket categories (Table I)\n\n");
    let mut t = TextTable::new(vec!["Category", "Paper", "Measured"]);
    for ((name, p), m) in
        paper::CATEGORY_SHARES
            .iter()
            .zip([b.fixing_share, b.error_share, b.false_alarm_share])
    {
        t.row(vec![(*name).into(), md_pct(*p), md_pct(m)]);
    }
    out.push_str(&t.render_markdown());
    out.push('\n');

    // Table II.
    out.push_str("## Component breakdown (Table II)\n\n");
    let mut t = TextTable::new(vec!["Device", "Count", "Paper", "Measured"]);
    for r in study.overview().component_breakdown() {
        let p = paper::COMPONENT_SHARES
            .iter()
            .find(|(c, _)| *c == r.class)
            .map(|(_, s)| *s)
            .unwrap_or(0.0);
        t.row(vec![
            r.class.name().into(),
            r.count.to_string(),
            md_pct(p),
            md_pct(r.share),
        ]);
    }
    out.push_str(&t.render_markdown());
    out.push('\n');

    // Hypotheses.
    out.push_str("## Hypotheses (H1–H5)\n\n");
    let mut t = TextTable::new(vec!["Hypothesis", "Result", "Paper"]);
    let temporal = study.temporal();
    if let Ok(dow) = temporal.day_of_week(None) {
        t.row(vec![
            "H1 day-of-week uniform".into(),
            dow.uniformity.to_string(),
            "rejected @0.01".into(),
        ]);
    }
    if let Ok(hod) = temporal.hour_of_day(None) {
        t.row(vec![
            "H2 hour-of-day uniform".into(),
            hod.uniformity.to_string(),
            "rejected @0.01".into(),
        ]);
    }
    if let Ok(tbf) = temporal.tbf_all() {
        t.row(vec![
            "H3 TBF fits a family".into(),
            format!(
                "all 4 rejected: {} (MTBF {:.1} min)",
                tbf.all_rejected_at_005, tbf.mtbf_minutes
            ),
            format!("rejected @0.05; MTBF {:.1} min", paper::MTBF_MINUTES),
        ]);
    }
    if let Ok(hdd) = temporal.tbf_of_class(ComponentClass::Hdd) {
        t.row(vec![
            "H4 per-class TBF (HDD)".into(),
            format!("all 4 rejected: {}", hdd.all_rejected_at_005),
            "rejected @0.05".into(),
        ]);
    }
    let spatial = study.spatial();
    let results = spatial.by_data_center(200);
    let t4 = spatial.table_iv(&results);
    t.row(vec![
        "H5 rack position irrelevant".into(),
        format!(
            "{} reject @0.01 / {} borderline / {} accept",
            t4.rejected_001, t4.borderline, t4.accepted
        ),
        format!(
            "{} / {} / {}",
            paper::table_iv::REJECTED_001,
            paper::table_iv::BORDERLINE,
            paper::table_iv::ACCEPTED
        ),
    ]);
    out.push_str(&t.render_markdown());
    out.push('\n');

    // Lifecycle.
    out.push_str("## Lifecycle (Figure 6)\n\n");
    let all = study.lifecycle().all();
    let mut t = TextTable::new(vec!["Claim", "Paper", "Measured"]);
    let raid = &all[ComponentClass::RaidCard.index()];
    t.row(vec![
        "RAID failures in first 6 months".into(),
        md_pct(paper::lifecycle::RAID_FIRST_6_MONTHS),
        md_pct(raid.failure_fraction(0..6)),
    ]);
    let mb = &all[ComponentClass::Motherboard.index()];
    t.row(vec![
        "Motherboard failures after year 3".into(),
        md_pct(paper::lifecycle::MOTHERBOARD_AFTER_36_MONTHS),
        md_pct(mb.failure_fraction(36..48)),
    ]);
    let flash = &all[ComponentClass::FlashCard.index()];
    t.row(vec![
        "Flash failures in first 12 months".into(),
        md_pct(paper::lifecycle::FLASH_FIRST_12_MONTHS),
        md_pct(flash.failure_fraction(0..12)),
    ]);
    out.push_str(&t.render_markdown());
    out.push('\n');

    // Repeats and concentration.
    let skew = study.skew();
    let conc = skew.concentration();
    let reps = skew.repeats();
    out.push_str("## Repeats and concentration (Figure 7)\n\n");
    out.push_str(&format!(
        "- servers ever failed: {} ({} of the fleet)\n- never-repeat share of fixed components: {} (paper: > {})\n- max tickets on one server: {} (paper: > {})\n- top 10 % of ever-failed servers hold {} of failures\n\n",
        conc.servers_ever_failed,
        md_pct(conc.ever_failed_share),
        md_pct(reps.never_repeat_share),
        md_pct(paper::repeats::NEVER_REPEAT_SHARE),
        conc.max_on_one_server,
        paper::repeats::MAX_FOTS_ONE_SERVER,
        md_pct(conc.top_share(0.10)),
    ));

    // Batch rN.
    out.push_str("## Batch frequency r_N (Table V)\n\n");
    let batch = study.batch();
    let thresholds = batch.scaled_thresholds();
    let mut t = TextTable::new(vec!["Device", "r_N1", "r_N2", "r_N3"]);
    for row in batch.r_n(&thresholds) {
        t.row(vec![
            row.class.name().into(),
            md_pct(row.r[0].1),
            md_pct(row.r[1].1),
            md_pct(row.r[2].1),
        ]);
    }
    out.push_str(&t.render_markdown());
    out.push('\n');

    // Correlations.
    let corr = study.correlation().component_pairs();
    out.push_str("## Correlated component failures (Table VI)\n\n");
    out.push_str(&format!(
        "- servers with same-day multi-component failures: {} (paper: {})\n- incidents involving misc: {} (paper: {})\n\n",
        md_pct(corr.pair_server_share),
        md_pct(paper::correlation::PAIR_SERVER_SHARE),
        md_pct(corr.misc_involved_share),
        md_pct(paper::correlation::MISC_INVOLVED_SHARE),
    ));

    // Response times.
    out.push_str("## Operator response (Figures 9–11)\n\n");
    let mut t = TextTable::new(vec!["Metric", "Paper", "Measured"]);
    if let Ok(rt) = study.response().rt_of_category(FotCategory::Fixing) {
        t.row(vec![
            "D_fixing MTTR / median (days)".into(),
            format!(
                "{:.1} / {:.1}",
                paper::response::FIXING_MEAN_DAYS,
                paper::response::FIXING_MEDIAN_DAYS
            ),
            format!("{:.1} / {:.1}", rt.mean_days, rt.median_days),
        ]);
        t.row(vec![
            "RT > 140 d".into(),
            md_pct(paper::response::OVER_140_DAYS),
            md_pct(rt.over_140d),
        ]);
    }
    out.push_str(&t.render_markdown());
    out.push('\n');

    // Extensions.
    out.push_str("## Extensions (paper §VII)\n\n");
    let eval = study.prediction().evaluate(7, None);
    out.push_str(&format!(
        "- warning→failure predictor @7-day horizon: precision {}, recall {}, median lead {}\n",
        md_pct(eval.precision),
        md_pct(eval.recall),
        eval.median_lead_days
            .map(|d| format!("{d:.1} d"))
            .unwrap_or_else(|| "-".into()),
    ));
    let backlog = study.backlog().summary();
    out.push_str(&format!(
        "- mean open repair tickets: {:.0} (peak {}); degraded fleet at window end: {}\n",
        backlog.mean_open,
        backlog.peak_open,
        md_pct(backlog.degraded_share_at_end),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn trace() -> &'static dcf_trace::Trace {
        static T: OnceLock<dcf_trace::Trace> = OnceLock::new();
        T.get_or_init(|| {
            dcf_sim::Scenario::small()
                .seed(0xD0C)
                .simulate(&dcf_sim::RunOptions::default())
                .unwrap()
        })
    }

    #[test]
    fn report_contains_every_section() {
        let study = FailureStudy::new(trace());
        let md = markdown_report(&study);
        for section in [
            "# Failure study report",
            "## Ticket categories",
            "## Component breakdown",
            "## Hypotheses",
            "## Lifecycle",
            "## Repeats and concentration",
            "## Batch frequency",
            "## Correlated component failures",
            "## Operator response",
            "## Extensions",
        ] {
            assert!(md.contains(section), "missing {section}");
        }
    }

    #[test]
    fn report_is_valid_markdown_tables() {
        let study = FailureStudy::new(trace());
        let md = markdown_report(&study);
        // Every table header row is followed by a separator row.
        for (i, line) in md.lines().enumerate() {
            if line.starts_with("| ") && line.contains("Paper") {
                let next = md.lines().nth(i + 1).unwrap_or("");
                assert!(next.starts_with("|---"), "no separator after {line}");
            }
        }
    }
}
