//! Markdown rendering of `dcf-obs` run reports (phase timings + counters).

use dcf_obs::RunReport;

use crate::table::TextTable;

/// Renders a [`RunReport`] as a markdown fragment: the hierarchical phase
/// log (children indented under their parent, in opening order), then the
/// counter and gauge tables.
///
/// Counter values are deterministic in the simulation seed; the timing
/// column is wall-clock and varies run to run.
///
/// # Examples
///
/// ```
/// use dcf_obs::MetricsRegistry;
/// use dcf_report::run_report_markdown;
///
/// let registry = MetricsRegistry::new();
/// {
///     let _run = registry.phase("run");
///     registry.add("sim.tickets.total", 123);
/// }
/// let md = run_report_markdown(&registry.report("demo"));
/// assert!(md.contains("| run |"));
/// assert!(md.contains("| sim.tickets.total | 123 |"));
/// ```
pub fn run_report_markdown(report: &RunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("## Run metrics — {}\n", report.label));

    if !report.phases.is_empty() {
        out.push_str("\n### Phases\n\n");
        let mut t = TextTable::new(vec!["Phase", "Duration"]);
        for phase in &report.phases {
            // Markdown trims leading cell whitespace, so indent with a
            // visible marker.
            let indent = "· ".repeat(phase.depth as usize);
            t.row(vec![
                format!("{indent}{}", phase.name),
                format!("{:.1} ms", phase.duration_ms()),
            ]);
        }
        out.push_str(&t.render_markdown());
    }

    if !report.counters.is_empty() {
        out.push_str("\n### Counters\n\n");
        let mut t = TextTable::new(vec!["Counter", "Value"]);
        for (name, value) in &report.counters {
            t.row(vec![name.clone(), value.to_string()]);
        }
        out.push_str(&t.render_markdown());
    }

    if !report.gauges.is_empty() {
        out.push_str("\n### Gauges\n\n");
        let mut t = TextTable::new(vec!["Gauge", "Value"]);
        for (name, value) in &report.gauges {
            t.row(vec![name.clone(), format!("{value}")]);
        }
        out.push_str(&t.render_markdown());
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_sections_with_nesting_markers() {
        let registry = dcf_obs::MetricsRegistry::new();
        {
            let _outer = registry.phase("engine.global");
            let _inner = registry.phase("engine.global.batch");
        }
        registry.add("sim.tickets.total", 42);
        registry.set_gauge("trace.fots", 42.0);
        let md = run_report_markdown(&registry.report("test-run"));
        assert!(md.contains("## Run metrics — test-run"));
        assert!(md.contains("| engine.global |"));
        assert!(md.contains("| · engine.global.batch |"));
        assert!(md.contains("| sim.tickets.total | 42 |"));
        assert!(md.contains("| trace.fots | 42 |"));
    }

    #[test]
    fn empty_report_renders_just_the_header() {
        let report = dcf_obs::RunReport {
            label: "empty".into(),
            phases: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
        };
        let md = run_report_markdown(&report);
        assert_eq!(md, "## Run metrics — empty\n");
    }
}
