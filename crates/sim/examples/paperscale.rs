use dcf_trace::ComponentClass;

fn main() {
    let t0 = std::time::Instant::now();
    let t = dcf_sim::Scenario::paper()
        .seed(1)
        .simulate(&dcf_sim::RunOptions::default())
        .unwrap();
    let build = t0.elapsed();
    let total = t.len();
    let failures = t.failures().count();
    println!(
        "total={total} failures={failures} cats={:?} in {build:?}",
        t.category_counts()
    );
    for class in ComponentClass::ALL {
        let n = t.failures_of(class).count();
        println!(
            "{:15} {:7} {:.2}%",
            class.name(),
            n,
            100.0 * n as f64 / failures as f64
        );
    }
    // daily HDD counts for r_N feel
    let mut per_day = std::collections::HashMap::new();
    for f in t.failures_of(ComponentClass::Hdd) {
        *per_day.entry(f.error_time.day_index()).or_insert(0usize) += 1;
    }
    let days = t.info().days as f64;
    let over = |n: usize| per_day.values().filter(|&&c| c >= n).count() as f64 / days * 100.0;
    println!(
        "HDD rN: r100={:.1}% r200={:.1}% r500={:.1}%",
        over(100),
        over(200),
        over(500)
    );
    // MTBF minutes
    let mut times: Vec<u64> = t.failures().map(|f| f.error_time.as_secs()).collect();
    times.sort();
    let gaps = times.len() - 1;
    let span = (times[times.len() - 1] - times[0]) as f64 / 60.0;
    println!("MTBF={:.1} min", span / gaps as f64);
}
