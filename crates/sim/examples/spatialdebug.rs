use dcf_fleet::{CoolingDesign, FleetBuilder, FleetConfig};
fn main() {
    let t = dcf_sim::Scenario::paper()
        .seed(1)
        .simulate(&dcf_sim::RunOptions::default())
        .unwrap();
    let fleet = FleetBuilder::new(FleetConfig::paper())
        .seed(1)
        .build()
        .unwrap();
    let study = dcf_core::FailureStudy::new(&t);
    let results = study.spatial().by_data_center(200);
    for r in &results {
        let dc = &fleet.data_centers()[r.dc.index()];
        let grad = match dc.cooling {
            CoolingDesign::Modern => -1.0,
            CoolingDesign::UnderFloor { gradient } => gradient,
        };
        let fails: usize = r.positions.iter().map(|p| p.failures).sum();
        println!(
            "{} grad={:5.2} hot={:?} fails={:6} p={:.4} anom={:?}",
            r.dc,
            grad,
            dc.hot_positions,
            fails,
            r.test.as_ref().map(|t| t.p_value).unwrap_or(-1.0),
            r.anomalous_positions
        );
    }
}
