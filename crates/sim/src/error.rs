//! Error type for simulation runs.

use dcf_trace::TraceError;

/// Errors from running a simulation.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The configuration failed validation.
    Config(String),
    /// Trace assembly rejected the generated tickets (an engine bug,
    /// surfaced instead of panicking).
    Trace(TraceError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(msg) => write!(f, "invalid simulation config: {msg}"),
            SimError::Trace(e) => write!(f, "trace assembly failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Trace(e) => Some(e),
            SimError::Config(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::Config("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
