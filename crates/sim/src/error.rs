//! Error type for simulation runs.

use dcf_fleet::FleetError;
use dcf_trace::TraceError;

/// Errors from running a simulation.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The fleet configuration failed validation.
    Fleet(FleetError),
    /// A non-fleet configuration problem (free-form description).
    Config(String),
    /// Trace assembly rejected the generated tickets (an engine bug,
    /// surfaced instead of panicking).
    Trace(TraceError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Fleet(e) => write!(f, "invalid fleet config: {e}"),
            SimError::Config(msg) => write!(f, "invalid simulation config: {msg}"),
            SimError::Trace(e) => write!(f, "trace assembly failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Fleet(e) => Some(e),
            SimError::Trace(e) => Some(e),
            SimError::Config(_) => None,
        }
    }
}

impl From<FleetError> for SimError {
    fn from(e: FleetError) -> Self {
        SimError::Fleet(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::Config("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(std::error::Error::source(&e).is_none());
        let e: SimError = FleetError::EmptyWindow.into();
        assert!(e.to_string().contains("window_days"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
