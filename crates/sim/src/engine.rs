//! The discrete-event engine: turns a [`SimConfig`] into a validated
//! [`Trace`].
//!
//! # Pipeline
//!
//! 1. Build the fleet (deterministic in the seed).
//! 2. **Global phase** (one RNG stream): generate batch events and assign
//!    affected servers and report times; schedule synchronous-repeat
//!    groups.
//! 3. **Per-server phase** (one RNG stream per server, so the result is
//!    independent of thread count): sample background faults from the
//!    lifecycle hazards, expand repeats, run detection, roll correlated
//!    companions/causal propagations and false alarms, apply warranty
//!    categorization and decommissioning, and sample operator responses.
//! 4. Assemble: merge, time-sort, assign ticket ids, validate into a
//!    [`Trace`].
//!
//! The per-server phase is parallelized with crossbeam scoped threads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dcf_failmodel::sample_type;
use dcf_fleet::{Fleet, FleetBuilder, UtilizationProfile};
use dcf_fms::{Detection, OperatorModel, TicketFactory};
use dcf_trace::{
    ComponentClass, FailureType, FotCategory, OperatorResponse, ServerId, Severity, SimDuration,
    SimTime, Trace, TraceInfo,
};

use crate::config::SimConfig;
use crate::error::SimError;

/// Samples a fatal-severity failure type of `class` (None if the class has
/// no fatal types, which does not happen for hardware classes).
fn fatal_type_for(rng: &mut StdRng, class: ComponentClass) -> Option<FailureType> {
    let fatal: Vec<FailureType> = FailureType::types_of(class)
        .into_iter()
        .filter(|t| t.severity() == Severity::Fatal)
        .collect();
    if fatal.is_empty() {
        None
    } else {
        Some(fatal[rng.random_range(0..fatal.len())])
    }
}

/// SplitMix64 — used to derive independent per-server RNG seeds from the
/// master seed so the per-server phase parallelizes deterministically.
fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A ticket before id assignment.
#[derive(Debug, Clone)]
struct TicketSpec {
    server: ServerId,
    class: ComponentClass,
    slot: u8,
    ftype: FailureType,
    error_time: SimTime,
    category: FotCategory,
    response: Option<OperatorResponse>,
}

/// A failure occurrence on one server, before categorization.
#[derive(Debug, Clone, Copy)]
struct Occurrence {
    class: ComponentClass,
    slot: u8,
    ftype: FailureType,
    /// Ticket `error_time`; for latent faults this is filled by detection.
    error_time: SimTime,
    /// Whether repeats may be expanded from this occurrence.
    expand_repeats: bool,
}

/// Runs the simulation.
///
/// # Errors
///
/// Returns [`SimError::Config`] for invalid configurations and
/// [`SimError::Trace`] if assembly invariants fail (a bug, not a user
/// error — surfaced rather than panicking).
pub fn run(config: &SimConfig) -> Result<Trace, SimError> {
    let fleet = FleetBuilder::new(config.fleet.clone())
        .seed(config.seed)
        .build()
        .map_err(SimError::Config)?;
    run_on_fleet(config, &fleet)
}

/// Runs the simulation on an already-built fleet (lets callers reuse one
/// fleet across scenario variants).
pub fn run_on_fleet(config: &SimConfig, fleet: &Fleet) -> Result<Trace, SimError> {
    let start = SimTime::from_days(config.fleet.pre_window_days);
    let end = start + SimDuration::from_days(config.fleet.window_days);

    // -------- Global phase --------
    let mut global_rng = StdRng::seed_from_u64(mix_seed(config.seed, 0x61_0b_a1));
    let mut direct: Vec<Vec<Occurrence>> = vec![Vec::new(); fleet.servers().len()];

    apply_batch_events(config, fleet, start, end, &mut global_rng, &mut direct);
    apply_sync_groups(config, fleet, start, end, &mut global_rng, &mut direct);

    let operator = OperatorModel::new(config.seed, &fleet.snapshot().2);

    // -------- Per-server phase (parallel) --------
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);
    let chunk = fleet.servers().len().div_ceil(n_threads).max(1);
    let direct_ref = &direct;
    let operator_ref = &operator;
    let mut spec_chunks: Vec<Vec<TicketSpec>> = Vec::new();

    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = fleet
            .servers()
            .chunks(chunk)
            .map(|servers| {
                scope.spawn(move |_| {
                    let mut specs = Vec::new();
                    for server in servers {
                        simulate_server(
                            config,
                            fleet,
                            operator_ref,
                            server.id,
                            &direct_ref[server.id.index()],
                            start,
                            end,
                            &mut specs,
                        );
                    }
                    specs
                })
            })
            .collect();
        for h in handles {
            spec_chunks.push(h.join().expect("simulation worker panicked"));
        }
    })
    .expect("crossbeam scope failed");

    // -------- Assembly --------
    let mut specs: Vec<TicketSpec> = spec_chunks.into_iter().flatten().collect();
    specs.sort_by_key(|s| (s.error_time, s.server.raw(), s.class.index(), s.slot));

    let mut factory = TicketFactory::new();
    let fots = specs
        .into_iter()
        .map(|s| {
            factory.make_fot(
                Detection {
                    server: s.server.raw(),
                    class: s.class,
                    slot: s.slot,
                    failure_type: s.ftype,
                    time: s.error_time,
                },
                fleet.server(s.server),
                s.category,
                s.response,
            )
        })
        .collect();

    let (servers, dcs, lines) = fleet.snapshot();
    let info = TraceInfo {
        start,
        days: config.fleet.window_days,
        seed: config.seed,
        description: config.description.clone(),
    };
    Trace::new(info, servers, dcs, lines, fots).map_err(SimError::Trace)
}

/// Expected number of *background* failures (lifecycle hazards only — no
/// batches, repeats, escalations or correlations) for a fleet over the
/// observation window. A calibration aid: compare with a run where those
/// channels are disabled.
pub fn expected_background_failures(config: &SimConfig, fleet: &Fleet) -> f64 {
    let start = SimTime::from_days(config.fleet.pre_window_days);
    let end = start + SimDuration::from_days(config.fleet.window_days);
    let mut total = 0.0;
    for server in fleet.servers() {
        let age_from = start.since(server.deploy_time).as_days_f64();
        let age_to = end.since(server.deploy_time).as_days_f64();
        if age_to <= 0.0 {
            continue;
        }
        let spatial = fleet.spatial_multiplier(server.id);
        for class in ComponentClass::ALL {
            let count = server.component_count(class);
            if count == 0 {
                continue;
            }
            let mult = if class == ComponentClass::Miscellaneous {
                count as f64
            } else {
                count as f64 * spatial
            };
            total += config
                .rates
                .hazard_for(class)
                .expected_count(age_from.max(0.0), age_to, mult);
        }
    }
    total
}

/// Expands batch events into per-server direct occurrences.
fn apply_batch_events(
    config: &SimConfig,
    fleet: &Fleet,
    start: SimTime,
    end: SimTime,
    rng: &mut StdRng,
    direct: &mut [Vec<Occurrence>],
) {
    let events = config.batch.generate(fleet, start, end, config.seed);
    for event in &events {
        // Candidate servers for this event.
        let candidates: Vec<ServerId> = match (event.line, event.pdu) {
            (Some(line), _) => fleet
                .servers_of_line(line)
                .iter()
                .copied()
                .filter(|&sid| {
                    let s = fleet.server(sid);
                    s.data_center == event.dc
                        && event.generation.is_none_or(|g| s.generation == g)
                        && s.deploy_time + SimDuration::from_days(event.min_age_days) <= event.start
                        && s.component_count(event.class) > 0
                })
                .collect(),
            (None, Some(pdu)) => fleet
                .servers_of_pdu(event.dc, pdu)
                .into_iter()
                .filter(|&sid| {
                    let s = fleet.server(sid);
                    s.deploy_time + SimDuration::from_days(event.min_age_days) <= event.start
                        && s.component_count(event.class) > 0
                })
                .collect(),
            (None, None) => Vec::new(),
        };
        if candidates.is_empty() {
            continue;
        }
        let target = match event.cluster_fraction {
            Some(f) => ((candidates.len() as f64 * f) as usize).max(1),
            None => event.target_size.min(candidates.len()),
        };
        // Partial Fisher–Yates to sample `target` servers without replacement.
        let mut pool = candidates;
        let target = target.min(pool.len());
        for i in 0..target {
            let j = rng.random_range(i..pool.len());
            pool.swap(i, j);
            let sid = pool[i];
            let server = fleet.server(sid);
            let offset = SimDuration::from_secs(
                (rng.random::<f64>() * event.window.as_secs() as f64) as u64,
            );
            let t = event.start + offset;
            if t >= end {
                continue;
            }
            let slots = server.component_count(event.class).max(1) as u8;
            direct[sid.index()].push(Occurrence {
                class: event.class,
                slot: rng.random_range(0..slots),
                ftype: event.failure_type,
                error_time: t,
                expand_repeats: false,
            });
        }
    }
}

/// Schedules synchronous-repeat groups (§V-C / Table VIII): pairs of
/// same-rack servers whose disks report the same failure type within
/// seconds, repeatedly.
fn apply_sync_groups(
    config: &SimConfig,
    fleet: &Fleet,
    start: SimTime,
    end: SimTime,
    rng: &mut StdRng,
    direct: &mut [Vec<Occurrence>],
) {
    let scale = (fleet.servers().len() as f64 / 160_000.0).max(1.0 / 160.0);
    let groups = (config.sync_repeat.groups_per_trace * scale).round() as usize;
    let groups = if config.sync_repeat.groups_per_trace > 0.0 {
        groups.max(1)
    } else {
        0
    };
    let window_days = end.since(start).as_days_f64() as u64;
    for _ in 0..groups {
        // Find a rack with at least group_size HDD-bearing servers.
        let mut found = None;
        for _ in 0..200 {
            let dc_idx = rng.random_range(0..fleet.racks().len());
            if fleet.racks()[dc_idx].is_empty() {
                continue;
            }
            let rack_idx = rng.random_range(0..fleet.racks()[dc_idx].len());
            let rack = &fleet.racks()[dc_idx][rack_idx];
            // Prefer servers whose warranty outlives the window: the paper's
            // Table VIII servers kept being "fixed" (D_fixing) each time, so
            // they must not be decommissioned mid-episode.
            let eligible: Vec<ServerId> = rack
                .iter()
                .copied()
                .filter(|&sid| {
                    let s = fleet.server(sid);
                    s.hdd_count > 0 && s.warranty_end() > end
                })
                .collect();
            if eligible.len() >= config.sync_repeat.group_size as usize {
                found = Some(eligible);
                break;
            }
        }
        let Some(eligible) = found else { continue };
        let members = &eligible[..config.sync_repeat.group_size as usize];
        let first = start
            + SimDuration::from_days(rng.random_range(0..window_days.saturating_sub(60).max(1)));
        let (times, offsets) = config.sync_repeat.sample_group_schedule(rng, first, end);
        for (member_idx, &sid) in members.iter().enumerate() {
            let server = fleet.server(sid);
            let slot = rng.random_range(0..server.hdd_count.max(1));
            for &t in &times {
                let jittered = t + SimDuration::from_secs(offsets[member_idx]);
                if jittered >= end {
                    continue;
                }
                direct[sid.index()].push(Occurrence {
                    class: ComponentClass::Hdd,
                    slot,
                    ftype: FailureType::SixthFixing,
                    error_time: jittered,
                    expand_repeats: false,
                });
            }
        }
    }
}

/// Simulates one server end to end. Deterministic in
/// `(config.seed, server id)`.
#[allow(clippy::too_many_arguments)]
fn simulate_server(
    config: &SimConfig,
    fleet: &Fleet,
    operator: &OperatorModel,
    sid: ServerId,
    direct: &[Occurrence],
    start: SimTime,
    end: SimTime,
    out: &mut Vec<TicketSpec>,
) {
    let mut rng = StdRng::seed_from_u64(mix_seed(config.seed, sid.raw() as u64 + 1));
    let server = fleet.server(sid);
    let profile: &UtilizationProfile = &fleet.product_line(server.product_line).utilization;
    let spatial = fleet.spatial_multiplier(sid);
    // FMS agent coverage (§VIII): before `monitored_from`, only manual
    // (miscellaneous) tickets exist for this server; `None` = never covered.
    let monitored_from = config
        .monitoring
        .sample_monitored_from(&mut rng, start, end);

    // --- background faults from the lifecycle hazards ---
    let mut occurrences: Vec<Occurrence> = Vec::new();
    let deploy = server.deploy_time;
    let age_from = start.since(deploy).as_days_f64();
    let age_to = end.since(deploy).as_days_f64();
    if age_to > 0.0 {
        let mut arrivals: Vec<f64> = Vec::new();
        for class in ComponentClass::ALL {
            let count = server.component_count(class);
            if count == 0 {
                continue;
            }
            // Temperature/spatial effects apply to hardware, not to the
            // manual miscellaneous stream.
            let mult = if class == ComponentClass::Miscellaneous {
                count as f64
            } else {
                count as f64 * spatial
            };
            arrivals.clear();
            config.rates.hazard_for(class).sample_arrivals(
                &mut rng,
                age_from.max(0.0),
                age_to,
                mult,
                &mut arrivals,
            );
            for &age_days in &arrivals {
                let latent = deploy + SimDuration::from_secs((age_days * 86_400.0) as u64);
                let slots = count as u8;
                occurrences.push(Occurrence {
                    class,
                    slot: rng.random_range(0..slots),
                    ftype: sample_type(&mut rng, class),
                    error_time: latent, // detection applied below
                    expand_repeats: true,
                });
            }
        }
    }

    // --- detection for background faults ---
    for occ in &mut occurrences {
        let channel = config.detection.sample_channel(&mut rng, occ.class);
        occ.error_time =
            config
                .detection
                .detection_time(&mut rng, channel, occ.error_time, profile);
    }

    // --- warning → fatal escalation on the same component (§VII-A) ---
    let mut escalations: Vec<Occurrence> = Vec::new();
    for occ in &occurrences {
        if occ.ftype.severity() != Severity::Warning || occ.class == ComponentClass::Miscellaneous {
            continue;
        }
        if let Some(at) = config.escalation.roll(&mut rng, occ.error_time, end) {
            // The escalated failure is a fatal type of the same class,
            // on the same physical component.
            let fatal = fatal_type_for(&mut rng, occ.class).unwrap_or(occ.ftype);
            escalations.push(Occurrence {
                ftype: fatal,
                error_time: at,
                expand_repeats: false,
                ..*occ
            });
        }
    }
    occurrences.extend(escalations);

    // --- repeats: the same component failing again after a "fix" ---
    let mut repeats: Vec<Occurrence> = Vec::new();
    for occ in &occurrences {
        if !occ.expand_repeats {
            continue;
        }
        for t in config.repeat.sample_repeats(&mut rng, occ.error_time, end) {
            repeats.push(Occurrence {
                error_time: t,
                expand_repeats: false,
                ..*occ
            });
        }
    }
    occurrences.extend(repeats);
    occurrences.extend_from_slice(direct);

    // --- correlated companions and causal propagation (§V-B) ---
    let mut extra: Vec<Occurrence> = Vec::new();
    for occ in &occurrences {
        if occ.class == ComponentClass::Miscellaneous {
            continue;
        }
        if let Some(delay) = config.correlation.roll_misc_companion(&mut rng, occ.class) {
            extra.push(Occurrence {
                class: ComponentClass::Miscellaneous,
                slot: 0,
                ftype: sample_type(&mut rng, ComponentClass::Miscellaneous),
                error_time: occ.error_time + delay,
                expand_repeats: false,
            });
        }
        for (secondary, delay) in config.correlation.roll_causal(&mut rng, occ.class) {
            if server.component_count(secondary) == 0 {
                continue;
            }
            let slots = server.component_count(secondary) as u8;
            extra.push(Occurrence {
                class: secondary,
                slot: rng.random_range(0..slots),
                ftype: sample_type(&mut rng, secondary),
                error_time: occ.error_time + delay,
                expand_repeats: false,
            });
        }
    }
    occurrences.extend(extra);

    // --- categorize in time order, applying decommissioning ---
    occurrences.retain(|o| {
        if o.class != ComponentClass::Miscellaneous {
            match monitored_from {
                Some(from) if o.error_time >= from => {}
                _ => return false, // no agent yet: failure goes unrecorded
            }
        }
        o.error_time >= start && o.error_time < end
    });
    occurrences.sort_by_key(|o| o.error_time);
    let mut decommissioned_at: Option<SimTime> = None;
    for occ in &occurrences {
        if let Some(d) = decommissioned_at {
            if occ.error_time >= d {
                continue;
            }
        }
        let category = if server.out_of_warranty_at(occ.error_time) {
            FotCategory::Error
        } else {
            FotCategory::Fixing
        };
        let response = operator.sample_response(
            &mut rng,
            server.product_line,
            occ.class,
            category,
            occ.error_time,
            occ.error_time.since(server.deploy_time),
        );
        out.push(TicketSpec {
            server: sid,
            class: occ.class,
            slot: occ.slot,
            ftype: occ.ftype,
            error_time: occ.error_time,
            category,
            response,
        });

        if category == FotCategory::Error
            && occ.ftype.severity() == Severity::Fatal
            && operator.roll_decommission(&mut rng, true)
        {
            decommissioned_at = Some(occ.error_time);
        }

        // --- false alarms (Table I: 1.7% of tickets) ---
        if config.false_alarm.roll(&mut rng) {
            let fa_time = occ.error_time + SimDuration::from_secs(rng.random_range(0..30 * 86_400));
            if fa_time < end {
                let fa_class = occ.class;
                let slots = server.component_count(fa_class).max(1) as u8;
                let fa_response = operator.sample_response(
                    &mut rng,
                    server.product_line,
                    fa_class,
                    FotCategory::FalseAlarm,
                    fa_time,
                    fa_time.since(server.deploy_time),
                );
                out.push(TicketSpec {
                    server: sid,
                    class: fa_class,
                    slot: rng.random_range(0..slots),
                    ftype: sample_type(&mut rng, fa_class),
                    error_time: fa_time,
                    category: FotCategory::FalseAlarm,
                    response: fa_response,
                });
            }
        }
    }
}
