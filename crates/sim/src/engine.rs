//! The discrete-event engine: turns a [`SimConfig`] into a validated
//! [`Trace`].
//!
//! # Pipeline
//!
//! 1. Build the fleet (deterministic in the seed).
//! 2. **Global phase** (one RNG stream): generate batch events and assign
//!    affected servers and report times; schedule synchronous-repeat
//!    groups. The resulting direct occurrences are packed into a CSR-style
//!    [`DirectOccurrences`] (flat buffer + per-server offsets).
//! 3. **Per-server phase** (one RNG stream per server, so the result is
//!    independent of thread count): sample background faults from the
//!    lifecycle hazards, expand repeats, run detection, roll correlated
//!    companions/causal propagations and false alarms, apply warranty
//!    categorization and decommissioning, and sample operator responses.
//!    Each worker reuses one [`ServerScratch`] across all servers in its
//!    chunk and pre-sorts its ticket specs before handing them back.
//! 4. Assemble: k-way merge the pre-sorted chunks on the same
//!    `(error_time, server, class, slot)` key, assign ticket ids in merge
//!    order, validate into a [`Trace`].
//!
//! The per-server phase is parallelized with crossbeam scoped threads; the
//! worker count comes from [`SimConfig::engine_threads`] (`0` = auto).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dcf_failmodel::{sample_type, HazardTable};
use dcf_fleet::{Fleet, FleetBuilder, UtilizationProfile};
use dcf_fms::{Detection, FmsMetrics, OperatorModel, TicketFactory};
use dcf_obs::MetricsRegistry;
use dcf_trace::{
    ComponentClass, FailureType, FotCategory, OperatorResponse, ServerId, Severity, SimDuration,
    SimTime, Trace, TraceInfo,
};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::options::RunOptions;

/// Samples a fatal-severity failure type of `class` (None if the class has
/// no fatal types, which does not happen for hardware classes).
fn fatal_type_for(rng: &mut StdRng, class: ComponentClass) -> Option<FailureType> {
    let fatal = FailureType::fatal_types_of(class);
    if fatal.is_empty() {
        None
    } else {
        Some(fatal[rng.random_range(0..fatal.len())])
    }
}

/// SplitMix64 — used to derive independent per-server RNG seeds from the
/// master seed so the per-server phase parallelizes deterministically.
fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Effective rate multiplier for `count` components of `class` under the
/// server's spatial factor. Temperature/spatial effects apply to hardware,
/// not to the manual miscellaneous stream.
fn class_rate_multiplier(class: ComponentClass, count: u32, spatial: f64) -> f64 {
    if class == ComponentClass::Miscellaneous {
        count as f64
    } else {
        count as f64 * spatial
    }
}

/// A ticket before id assignment.
#[derive(Debug, Clone)]
pub(crate) struct TicketSpec {
    pub(crate) server: ServerId,
    pub(crate) class: ComponentClass,
    pub(crate) slot: u8,
    pub(crate) ftype: FailureType,
    pub(crate) error_time: SimTime,
    pub(crate) category: FotCategory,
    pub(crate) response: Option<OperatorResponse>,
}

/// The assembly ordering key: tickets are issued in time order, with
/// deterministic server/class/slot tie-breaks.
fn spec_key(s: &TicketSpec) -> (SimTime, u32, usize, u8) {
    (s.error_time, s.server.raw(), s.class.index(), s.slot)
}

/// Packs [`spec_key`] into one `u64` so the per-chunk pre-sort compares
/// a single integer instead of a four-field tuple.
///
/// Bit layout, most-significant first: `time | server | class(4) |
/// slot(8)`. The server field is sized to the run's highest server id
/// and the time field takes the remainder, so the packing is injective
/// over every in-range key and `u64` order equals tuple order exactly.
/// `new` returns `None` when the run's bounds don't fit (callers keep
/// the tuple sort), which at a 2M-server fleet still leaves 31 time
/// bits ≈ 68 years of seconds — far past any scenario window.
pub(crate) struct SpecKeyPacker {
    server_bits: u32,
}

impl SpecKeyPacker {
    /// Builds a packer for keys bounded by `max_server` (inclusive) and
    /// `max_time_secs` (inclusive), or `None` if 64 bits can't hold them.
    pub(crate) fn new(max_server: u32, max_time_secs: u64) -> Option<Self> {
        const _: () = assert!(
            dcf_trace::ComponentClass::ALL.len() <= 16,
            "class field is 4 bits"
        );
        let server_bits = (32 - max_server.leading_zeros()).max(1);
        let time_bits = 64 - 8 - 4 - server_bits;
        if time_bits >= 64 || max_time_secs >> time_bits != 0 {
            return None;
        }
        Some(Self { server_bits })
    }

    /// The packed key for `s`; caller guarantees `s` is within the
    /// bounds `new` was given.
    pub(crate) fn pack(&self, s: &TicketSpec) -> u64 {
        debug_assert_eq!(s.server.raw() >> self.server_bits, 0);
        (s.error_time.as_secs() << (self.server_bits + 12))
            | (u64::from(s.server.raw()) << 12)
            | ((s.class.index() as u64) << 8)
            | u64::from(s.slot)
    }
}

/// A failure occurrence on one server, before categorization.
#[derive(Debug, Clone, Copy)]
struct Occurrence {
    class: ComponentClass,
    slot: u8,
    ftype: FailureType,
    /// Ticket `error_time`; for latent faults this is filled by detection.
    error_time: SimTime,
    /// Whether repeats may be expanded from this occurrence.
    expand_repeats: bool,
}

/// Direct (globally scheduled) occurrences in CSR layout: one flat buffer
/// plus per-server offsets, replacing the former `Vec<Vec<Occurrence>>`
/// that allocated a (mostly empty) vector per fleet server.
pub(crate) struct DirectOccurrences {
    occurrences: Vec<Occurrence>,
    /// `offsets[s]..offsets[s + 1]` bounds server `s`'s slice.
    offsets: Vec<u32>,
}

impl DirectOccurrences {
    /// Packs `(server index, occurrence)` pairs via a stable counting sort,
    /// preserving each server's insertion order (batch events first, then
    /// sync groups — exactly as the old per-server vectors received them).
    fn build(n_servers: usize, staged: &[(u32, Occurrence)]) -> Self {
        let mut offsets = vec![0u32; n_servers + 1];
        for &(s, _) in staged {
            offsets[s as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut occurrences = Vec::new();
        if let Some(&(_, first)) = staged.first() {
            occurrences.resize(staged.len(), first);
            let mut cursor = offsets.clone();
            for &(s, occ) in staged {
                let c = &mut cursor[s as usize];
                occurrences[*c as usize] = occ;
                *c += 1;
            }
        }
        Self {
            occurrences,
            offsets,
        }
    }

    /// The direct occurrences scheduled for `sid`, in insertion order.
    fn of(&self, sid: ServerId) -> &[Occurrence] {
        let i = sid.index();
        &self.occurrences[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// Per-worker scratch buffers reused across every server in a chunk, so
/// the steady state of [`simulate_server`] allocates nothing: each buffer
/// grows to the chunk's high-water mark and stays there.
#[derive(Default)]
struct ServerScratch {
    occurrences: Vec<Occurrence>,
    escalations: Vec<Occurrence>,
    repeats: Vec<Occurrence>,
    extra: Vec<Occurrence>,
    arrivals: Vec<f64>,
    repeat_times: Vec<SimTime>,
    causal: Vec<(ComponentClass, SimDuration)>,
}

/// Per-thread event tallies for the per-server phase.
///
/// Worker threads count into plain integers and the main thread merges the
/// chunks and publishes each total with one [`dcf_obs::Counter::add`], so
/// the hot loops stay atomic-free and the totals are independent of thread
/// count and chunk boundaries.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ServerCounts {
    background: u64,
    latent_resolved: u64,
    escalated: u64,
    repeats: u64,
    correlated: u64,
    dropped_unmonitored: u64,
    dropped_outside_window: u64,
    skipped_decommissioned: u64,
    decommissioned: u64,
    responses: u64,
    tickets_fixing: u64,
    tickets_error: u64,
    tickets_false_alarm: u64,
}

impl ServerCounts {
    pub(crate) fn merge(&mut self, other: &ServerCounts) {
        self.background += other.background;
        self.latent_resolved += other.latent_resolved;
        self.escalated += other.escalated;
        self.repeats += other.repeats;
        self.correlated += other.correlated;
        self.dropped_unmonitored += other.dropped_unmonitored;
        self.dropped_outside_window += other.dropped_outside_window;
        self.skipped_decommissioned += other.skipped_decommissioned;
        self.decommissioned += other.decommissioned;
        self.responses += other.responses;
        self.tickets_fixing += other.tickets_fixing;
        self.tickets_error += other.tickets_error;
        self.tickets_false_alarm += other.tickets_false_alarm;
    }
}

/// Resolves the engine worker count: `0` means auto (the machine's
/// available parallelism); any value is clamped to `[1, 16]`.
pub(crate) fn resolve_engine_threads(requested: usize) -> usize {
    let n = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        requested
    };
    n.clamp(1, 16)
}

/// Runs the simulation — the single entry point, with every execution knob
/// (metrics registry, thread override, sharding) consolidated in
/// [`RunOptions`].
///
/// Instrumentation is observational only: counters tally events the engine
/// already produces and never consume RNG draws; the thread override and
/// the shard knobs are purely execution strategies — so the returned trace
/// is a byte-identical pure function of `(config, config.seed)` for every
/// [`RunOptions`] value. With [`RunOptions::shards`] ≥ 2 the run goes
/// through the sharded bounded-memory driver (spill + k-way merge,
/// SCALING.md) and assembles the merged trace.
///
/// # Examples
///
/// ```
/// use dcf_sim::{simulate, RunOptions, Scenario};
///
/// let scenario = Scenario::small().seed(11);
/// let trace = simulate(&scenario.config, &RunOptions::default()).unwrap();
/// assert!(!trace.is_empty());
/// assert_eq!(trace.info().seed, 11);
/// ```
///
/// # Errors
///
/// Returns [`SimError::Fleet`] for invalid fleet configurations and
/// [`SimError::Trace`] if assembly invariants fail (a bug, not a user
/// error — surfaced rather than panicking).
pub fn simulate(config: &SimConfig, options: &RunOptions) -> Result<Trace, SimError> {
    if options.is_sharded() {
        let (_, trace) = crate::shard::sharded_run(config, options, true)?;
        return Ok(trace.expect("materialization was requested"));
    }
    let metrics = &options.metrics;
    // Wall-clock for the whole run, fleet build included; benchmarks
    // read this span for throughput so sharded and unsharded runs (whose
    // phase sets differ) stay comparable.
    let total_span = metrics.phase("engine.total");
    let span = metrics.phase("engine.fleet_build");
    let fleet = FleetBuilder::new(config.fleet.clone())
        .seed(config.seed)
        .metrics(metrics.clone())
        .build()?;
    drop(span);
    let run = simulate_on_fleet(config, &fleet, options);
    drop(total_span);
    run
}

/// [`simulate`] on an already-built fleet (lets callers reuse one fleet
/// across scenario variants). Records the `engine.global`,
/// `engine.per_server` and `engine.assembly` phase spans, the
/// `engine.threads` gauge, and the `sim.*` / `fms.*` counters when
/// `options.metrics` is enabled.
///
/// # Errors
///
/// Same contract as [`simulate`].
pub fn simulate_on_fleet(
    config: &SimConfig,
    fleet: &Fleet,
    options: &RunOptions,
) -> Result<Trace, SimError> {
    if options.is_sharded() {
        let (_, trace) = crate::shard::sharded_run_on_fleet(config, fleet, options, true)?;
        return Ok(trace.expect("materialization was requested"));
    }
    match options.threads {
        Some(threads) if threads != config.engine_threads => {
            let mut config = config.clone();
            config.engine_threads = threads;
            engine_on_fleet(&config, fleet, &options.metrics)
        }
        _ => engine_on_fleet(config, fleet, &options.metrics),
    }
}

/// Everything the global phase produces that the per-server phase needs:
/// the direct (globally scheduled) occurrences, the shared models, and the
/// observation window. Building it consumes the single global RNG stream
/// exactly once, so per-server work — whether over the whole fleet or one
/// shard's range — sees identical inputs.
pub(crate) struct GlobalPhase {
    pub(crate) start: SimTime,
    pub(crate) end: SimTime,
    pub(crate) direct: DirectOccurrences,
    pub(crate) operator: OperatorModel,
    pub(crate) hazards: HazardTable,
}

/// Runs the global phase: batch events, synchronous-repeat groups, shared
/// models. Records the `engine.global` span and the `sim.batch.*` /
/// `sim.occurrences.{batch,sync_repeat}` counters.
pub(crate) fn run_global_phase(
    config: &SimConfig,
    fleet: &Fleet,
    metrics: &MetricsRegistry,
) -> GlobalPhase {
    let start = SimTime::from_days(config.fleet.pre_window_days);
    let end = start + SimDuration::from_days(config.fleet.window_days);
    let global_span = metrics.phase("engine.global");
    let mut global_rng = StdRng::seed_from_u64(mix_seed(config.seed, 0x61_0b_a1));
    let mut staged: Vec<(u32, Occurrence)> = Vec::new();

    let (batch_events, batch_occurrences) =
        apply_batch_events(config, fleet, start, end, &mut global_rng, &mut staged);
    let sync_occurrences =
        apply_sync_groups(config, fleet, start, end, &mut global_rng, &mut staged);
    let direct = DirectOccurrences::build(fleet.servers().len(), &staged);
    drop(staged);
    metrics.add("sim.batch.events", batch_events);
    metrics.add("sim.occurrences.batch", batch_occurrences);
    metrics.add("sim.occurrences.sync_repeat", sync_occurrences);

    // Only the line metas feed the operator model — `fleet.snapshot()`
    // would clone every ServerMeta (hostnames included) to get at them.
    let line_metas: Vec<_> = fleet
        .product_lines()
        .iter()
        .map(|p| p.meta.clone())
        .collect();
    let operator = OperatorModel::new(config.seed, &line_metas);
    // The eleven class hazards are constant across servers: build them once
    // instead of once per server per class inside the hot loop.
    let hazards = config.rates.hazard_table();
    drop(global_span);
    GlobalPhase {
        start,
        end,
        direct,
        operator,
        hazards,
    }
}

/// Runs the per-server phase over `servers` (the whole fleet, or one
/// shard's contiguous range) across `n_threads` workers. Returns the
/// per-thread spec chunks — each sorted by [`spec_key`] — and the merged
/// event tallies.
///
/// Each server's RNG stream is seeded from `(config.seed, server id)`
/// alone, so the specs are independent of both the thread count and how
/// `servers` slices the fleet.
pub(crate) fn per_server_specs(
    config: &SimConfig,
    fleet: &Fleet,
    global: &GlobalPhase,
    servers: &[dcf_trace::ServerMeta],
    n_threads: usize,
) -> (Vec<Vec<TicketSpec>>, ServerCounts) {
    let chunk = servers.len().div_ceil(n_threads).max(1);
    let direct_ref = &global.direct;
    let operator_ref = &global.operator;
    let hazards_ref = &global.hazards;
    let (start, end) = (global.start, global.end);
    // Windowing guarantees every spec's `error_time` is below `end`
    // (see the retain in `simulate_server`), so the packed key covers
    // every spec this run can produce; the tuple sort stays as the
    // out-of-range fallback.
    let max_server = servers.iter().map(|s| s.id.raw()).max().unwrap_or(0);
    let packer = SpecKeyPacker::new(max_server, end.as_secs());
    let packer_ref = packer.as_ref();
    let mut spec_chunks: Vec<Vec<TicketSpec>> = Vec::new();
    let mut counts = ServerCounts::default();

    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = servers
            .chunks(chunk)
            .map(|servers| {
                scope.spawn(move |_| {
                    let mut specs = Vec::new();
                    let mut scratch = ServerScratch::default();
                    let mut counts = ServerCounts::default();
                    for server in servers {
                        simulate_server(
                            config,
                            fleet,
                            operator_ref,
                            hazards_ref,
                            server.id,
                            direct_ref.of(server.id),
                            start,
                            end,
                            &mut scratch,
                            &mut specs,
                            &mut counts,
                        );
                    }
                    // Pre-sort this chunk in parallel; assembly then only
                    // has to merge. The packed key is injective over the
                    // tuple key, so the unstable sort cannot reorder
                    // distinct keys — and equal keys denote tickets the
                    // merge tie-break already treats as interchangeable.
                    match packer_ref {
                        Some(p) => specs.sort_unstable_by_key(|s| p.pack(s)),
                        None => specs.sort_by_key(spec_key),
                    }
                    (specs, counts)
                })
            })
            .collect();
        for h in handles {
            let (specs, chunk_counts) = h.join().expect("simulation worker panicked");
            spec_chunks.push(specs);
            counts.merge(&chunk_counts);
        }
    })
    .expect("crossbeam scope failed");
    (spec_chunks, counts)
}

/// Publishes the per-server phase's event tallies to the registry — once
/// per run, after every server (all shards included) has been simulated.
pub(crate) fn publish_server_counts(
    metrics: &MetricsRegistry,
    fms: &FmsMetrics,
    counts: &ServerCounts,
) {
    metrics.add("sim.occurrences.background", counts.background);
    metrics.add("sim.occurrences.escalated", counts.escalated);
    metrics.add("sim.repeats.expanded", counts.repeats);
    metrics.add("sim.occurrences.correlated", counts.correlated);
    metrics.add(
        "sim.occurrences.dropped_window",
        counts.dropped_outside_window,
    );
    metrics.add(
        "sim.occurrences.dropped_decommissioned",
        counts.skipped_decommissioned,
    );
    metrics.add("sim.servers.decommissioned", counts.decommissioned);
    metrics.add("sim.tickets.fixing", counts.tickets_fixing);
    metrics.add("sim.tickets.error", counts.tickets_error);
    metrics.add("sim.tickets.false_alarm", counts.tickets_false_alarm);
    fms.latent_resolved.add(counts.latent_resolved);
    fms.unmonitored_dropped.add(counts.dropped_unmonitored);
    fms.decommissioned.add(counts.decommissioned);
    fms.responses_sampled.add(counts.responses);
}

/// Issues the next ticket id and builds the [`dcf_trace::Fot`] for `spec`
/// — the single spec→ticket conversion shared by in-memory assembly and
/// the sharded spill merge.
pub(crate) fn make_fot_from_spec(
    factory: &mut TicketFactory,
    fleet: &Fleet,
    spec: &TicketSpec,
) -> dcf_trace::Fot {
    factory.make_fot(
        Detection {
            server: spec.server.raw(),
            class: spec.class,
            slot: spec.slot,
            failure_type: spec.ftype,
            time: spec.error_time,
        },
        fleet.server(spec.server),
        spec.category,
        spec.response,
    )
}

/// Builds the run's [`TraceInfo`] header.
pub(crate) fn trace_info(config: &SimConfig, start: SimTime) -> TraceInfo {
    TraceInfo {
        start,
        days: config.fleet.window_days,
        seed: config.seed,
        description: config.description.clone(),
    }
}

/// The engine proper: global phase, per-server phase, assembly.
fn engine_on_fleet(
    config: &SimConfig,
    fleet: &Fleet,
    metrics: &MetricsRegistry,
) -> Result<Trace, SimError> {
    let fms = FmsMetrics::from_registry(metrics);
    let global = run_global_phase(config, fleet, metrics);

    // -------- Per-server phase (parallel) --------
    let per_server_span = metrics.phase("engine.per_server");
    let n_threads = resolve_engine_threads(config.engine_threads);
    metrics.set_gauge("engine.threads", n_threads as f64);
    let (spec_chunks, counts) =
        per_server_specs(config, fleet, &global, fleet.servers(), n_threads);
    drop(per_server_span);
    publish_server_counts(metrics, &fms, &counts);

    // -------- Assembly --------
    let assembly_span = metrics.phase("engine.assembly");
    let total: usize = spec_chunks.iter().map(Vec::len).sum();
    metrics.add("sim.tickets.total", total as u64);

    // Chunks arrive sorted; a k-way merge with ties going to the lowest
    // chunk index reproduces exactly what the former global stable sort of
    // the concatenated chunks produced, so ticket ids are unchanged.
    let mut factory = TicketFactory::new();
    let mut fots = Vec::with_capacity(total);
    merge_sorted_specs(spec_chunks, |s| {
        fots.push(make_fot_from_spec(&mut factory, fleet, &s));
    });
    fms.tickets_issued.add(factory.issued());

    let (servers, dcs, lines) = fleet.snapshot();
    let trace = Trace::new(trace_info(config, global.start), servers, dcs, lines, fots)
        .map_err(SimError::Trace);
    drop(assembly_span);
    trace
}

/// Merges spec chunks — each already sorted by [`spec_key`] — emitting
/// specs in globally sorted order. Ties pick the lowest chunk index;
/// because chunks are collected in fleet order and each is sorted stably,
/// the emitted order equals a stable sort of the concatenation.
pub(crate) fn merge_sorted_specs(chunks: Vec<Vec<TicketSpec>>, mut emit: impl FnMut(TicketSpec)) {
    let mut iters: Vec<std::vec::IntoIter<TicketSpec>> =
        chunks.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<TicketSpec>> = iters.iter_mut().map(Iterator::next).collect();
    loop {
        let mut best: Option<(usize, (SimTime, u32, usize, u8))> = None;
        for (i, head) in heads.iter().enumerate() {
            if let Some(h) = head {
                let k = spec_key(h);
                // Strict `<` keeps the earliest chunk on ties.
                if best.is_none_or(|(_, bk)| k < bk) {
                    best = Some((i, k));
                }
            }
        }
        let Some((i, _)) = best else { break };
        let spec = heads[i].take().expect("best head exists");
        heads[i] = iters[i].next();
        emit(spec);
    }
}

/// Expected number of *background* failures (lifecycle hazards only — no
/// batches, repeats, escalations or correlations) for a fleet over the
/// observation window. A calibration aid: compare with a run where those
/// channels are disabled.
pub fn expected_background_failures(config: &SimConfig, fleet: &Fleet) -> f64 {
    let start = SimTime::from_days(config.fleet.pre_window_days);
    let end = start + SimDuration::from_days(config.fleet.window_days);
    let hazards = config.rates.hazard_table();
    let mut total = 0.0;
    for server in fleet.servers() {
        let age_from = start.since(server.deploy_time).as_days_f64();
        let age_to = end.since(server.deploy_time).as_days_f64();
        if age_to <= 0.0 {
            continue;
        }
        let spatial = fleet.spatial_multiplier(server.id);
        for class in ComponentClass::ALL {
            let count = server.component_count(class);
            if count == 0 {
                continue;
            }
            let mult = class_rate_multiplier(class, count, spatial);
            total += hazards
                .hazard(class)
                .expected_count(age_from.max(0.0), age_to, mult);
        }
    }
    total
}

/// Expands batch events into per-server direct occurrences, staged as
/// `(server index, occurrence)` pairs for [`DirectOccurrences::build`].
/// Returns `(events generated, occurrences scheduled)`.
fn apply_batch_events(
    config: &SimConfig,
    fleet: &Fleet,
    start: SimTime,
    end: SimTime,
    rng: &mut StdRng,
    staged: &mut Vec<(u32, Occurrence)>,
) -> (u64, u64) {
    let mut scheduled: u64 = 0;
    let events = config.batch.generate(fleet, start, end, config.seed);
    // Line-scoped events only ever match servers of one (line, DC) pair;
    // bucketing the fleet once replaces a full line scan (with a random
    // `ServerMeta` lookup per server) by a scan of the ~1/n_dcs bucket.
    // Built in server-id order, so each bucket lists ids in the same
    // order the line scan produced them and the Fisher–Yates sampling
    // below sees an identical candidate list (no RNG drift).
    let n_dcs = fleet.data_centers().len();
    let mut by_line_dc: Vec<Vec<ServerId>> = vec![Vec::new(); fleet.product_lines().len() * n_dcs];
    for s in fleet.servers() {
        by_line_dc[s.product_line.index() * n_dcs + s.data_center.index()].push(s.id);
    }
    for event in &events {
        // Candidate servers for this event.
        let candidates: Vec<ServerId> = match (event.line, event.pdu) {
            (Some(line), _) => by_line_dc[line.index() * n_dcs + event.dc.index()]
                .iter()
                .copied()
                .filter(|&sid| {
                    let s = fleet.server(sid);
                    event.generation.is_none_or(|g| s.generation == g)
                        && s.deploy_time + SimDuration::from_days(event.min_age_days) <= event.start
                        && s.component_count(event.class) > 0
                })
                .collect(),
            (None, Some(pdu)) => fleet
                .servers_of_pdu(event.dc, pdu)
                .into_iter()
                .filter(|&sid| {
                    let s = fleet.server(sid);
                    s.deploy_time + SimDuration::from_days(event.min_age_days) <= event.start
                        && s.component_count(event.class) > 0
                })
                .collect(),
            (None, None) => Vec::new(),
        };
        if candidates.is_empty() {
            continue;
        }
        let target = match event.cluster_fraction {
            Some(f) => ((candidates.len() as f64 * f) as usize).max(1),
            None => event.target_size.min(candidates.len()),
        };
        // Partial Fisher–Yates to sample `target` servers without replacement.
        let mut pool = candidates;
        let target = target.min(pool.len());
        for i in 0..target {
            let j = rng.random_range(i..pool.len());
            pool.swap(i, j);
            let sid = pool[i];
            let server = fleet.server(sid);
            let offset = SimDuration::from_secs(
                (rng.random::<f64>() * event.window.as_secs() as f64) as u64,
            );
            let t = event.start + offset;
            if t >= end {
                continue;
            }
            let slots = server.component_count(event.class).max(1) as u8;
            staged.push((
                sid.raw(),
                Occurrence {
                    class: event.class,
                    slot: rng.random_range(0..slots),
                    ftype: event.failure_type,
                    error_time: t,
                    expand_repeats: false,
                },
            ));
            scheduled += 1;
        }
    }
    (events.len() as u64, scheduled)
}

/// Schedules synchronous-repeat groups (§V-C / Table VIII): pairs of
/// same-rack servers whose disks report the same failure type within
/// seconds, repeatedly. Returns the number of occurrences scheduled.
fn apply_sync_groups(
    config: &SimConfig,
    fleet: &Fleet,
    start: SimTime,
    end: SimTime,
    rng: &mut StdRng,
    staged: &mut Vec<(u32, Occurrence)>,
) -> u64 {
    let mut scheduled: u64 = 0;
    let scale = (fleet.servers().len() as f64 / 160_000.0).max(1.0 / 160.0);
    let groups = (config.sync_repeat.groups_per_trace * scale).round() as usize;
    let groups = if config.sync_repeat.groups_per_trace > 0.0 {
        groups.max(1)
    } else {
        0
    };
    if groups == 0 {
        return 0;
    }
    // Eligibility is a pure function of the fleet: precompute it per rack
    // once instead of re-filtering inside the rejection-sampling loop
    // below (consumes no RNG draws, so the trace is unchanged).
    //
    // Prefer servers whose warranty outlives the window: the paper's
    // Table VIII servers kept being "fixed" (D_fixing) each time, so
    // they must not be decommissioned mid-episode.
    //
    // Eligibility still does not check deploy_time (filtering here would
    // shift member selection and consume different RNG draws); instead the
    // emission loop below drops any occurrence that would land before the
    // member's deploy date, so late-deployed servers can join an episode
    // but never receive pre-deploy tickets.
    let eligible_by_rack: Vec<Vec<Vec<ServerId>>> = fleet
        .racks()
        .iter()
        .map(|dc| {
            dc.iter()
                .map(|rack| {
                    rack.iter()
                        .copied()
                        .filter(|&sid| {
                            let s = fleet.server(sid);
                            s.hdd_count > 0 && s.warranty_end() > end
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    let window_days = end.since(start).as_days_f64() as u64;
    for _ in 0..groups {
        // Find a rack with at least group_size HDD-bearing servers.
        let mut found: Option<&[ServerId]> = None;
        for _ in 0..200 {
            let dc_idx = rng.random_range(0..fleet.racks().len());
            if fleet.racks()[dc_idx].is_empty() {
                continue;
            }
            let rack_idx = rng.random_range(0..fleet.racks()[dc_idx].len());
            let eligible = &eligible_by_rack[dc_idx][rack_idx];
            if eligible.len() >= config.sync_repeat.group_size as usize {
                found = Some(eligible);
                break;
            }
        }
        let Some(eligible) = found else { continue };
        let members = &eligible[..config.sync_repeat.group_size as usize];
        let first = start
            + SimDuration::from_days(rng.random_range(0..window_days.saturating_sub(60).max(1)));
        let (times, offsets) = config.sync_repeat.sample_group_schedule(rng, first, end);
        for (member_idx, &sid) in members.iter().enumerate() {
            let server = fleet.server(sid);
            let slot = rng.random_range(0..server.hdd_count.max(1));
            for &t in &times {
                let jittered = t + SimDuration::from_secs(offsets[member_idx]);
                if jittered >= end || jittered < server.deploy_time {
                    continue;
                }
                staged.push((
                    sid.raw(),
                    Occurrence {
                        class: ComponentClass::Hdd,
                        slot,
                        ftype: FailureType::SixthFixing,
                        error_time: jittered,
                        expand_repeats: false,
                    },
                ));
                scheduled += 1;
            }
        }
    }
    scheduled
}

/// Simulates one server end to end. Deterministic in
/// `(config.seed, server id)`. Event tallies go into `counts`; they never
/// touch `rng`, so instrumentation cannot perturb the trace. All working
/// buffers live in `scratch` and are reused across calls.
#[allow(clippy::too_many_arguments)]
fn simulate_server(
    config: &SimConfig,
    fleet: &Fleet,
    operator: &OperatorModel,
    hazards: &HazardTable,
    sid: ServerId,
    direct: &[Occurrence],
    start: SimTime,
    end: SimTime,
    scratch: &mut ServerScratch,
    out: &mut Vec<TicketSpec>,
    counts: &mut ServerCounts,
) {
    let ServerScratch {
        occurrences,
        escalations,
        repeats,
        extra,
        arrivals,
        repeat_times,
        causal,
    } = scratch;
    occurrences.clear();

    let mut rng = StdRng::seed_from_u64(mix_seed(config.seed, sid.raw() as u64 + 1));
    let server = fleet.server(sid);
    let profile: &UtilizationProfile = &fleet.product_line(server.product_line).utilization;
    let spatial = fleet.spatial_multiplier(sid);
    // FMS agent coverage (§VIII): before `monitored_from`, only manual
    // (miscellaneous) tickets exist for this server; `None` = never covered.
    let monitored_from = config
        .monitoring
        .sample_monitored_from(&mut rng, start, end);

    // --- background faults from the lifecycle hazards ---
    let deploy = server.deploy_time;
    let age_from = start.since(deploy).as_days_f64();
    let age_to = end.since(deploy).as_days_f64();
    if age_to > 0.0 {
        for class in ComponentClass::ALL {
            let count = server.component_count(class);
            if count == 0 {
                continue;
            }
            let mult = class_rate_multiplier(class, count, spatial);
            arrivals.clear();
            hazards.hazard(class).sample_arrivals(
                &mut rng,
                age_from.max(0.0),
                age_to,
                mult,
                arrivals,
            );
            for &age_days in arrivals.iter() {
                let latent = deploy + SimDuration::from_secs((age_days * 86_400.0) as u64);
                let slots = count as u8;
                occurrences.push(Occurrence {
                    class,
                    slot: rng.random_range(0..slots),
                    ftype: sample_type(&mut rng, class),
                    error_time: latent, // detection applied below
                    expand_repeats: true,
                });
            }
        }
    }

    counts.background += occurrences.len() as u64;

    // --- detection for background faults ---
    for occ in occurrences.iter_mut() {
        let channel = config.detection.sample_channel(&mut rng, occ.class);
        occ.error_time =
            config
                .detection
                .detection_time(&mut rng, channel, occ.error_time, profile);
        counts.latent_resolved += 1;
    }

    // --- warning → fatal escalation on the same component (§VII-A) ---
    escalations.clear();
    for occ in occurrences.iter() {
        if occ.ftype.severity() != Severity::Warning || occ.class == ComponentClass::Miscellaneous {
            continue;
        }
        if let Some(at) = config.escalation.roll(&mut rng, occ.error_time, end) {
            // The escalated failure is a fatal type of the same class,
            // on the same physical component.
            let fatal = fatal_type_for(&mut rng, occ.class).unwrap_or(occ.ftype);
            escalations.push(Occurrence {
                ftype: fatal,
                error_time: at,
                expand_repeats: false,
                ..*occ
            });
        }
    }
    counts.escalated += escalations.len() as u64;
    occurrences.extend_from_slice(escalations);

    // --- repeats: the same component failing again after a "fix" ---
    repeats.clear();
    for occ in occurrences.iter() {
        if !occ.expand_repeats {
            continue;
        }
        repeat_times.clear();
        config
            .repeat
            .sample_repeats_into(&mut rng, occ.error_time, end, repeat_times);
        for &t in repeat_times.iter() {
            repeats.push(Occurrence {
                error_time: t,
                expand_repeats: false,
                ..*occ
            });
        }
    }
    counts.repeats += repeats.len() as u64;
    occurrences.extend_from_slice(repeats);
    occurrences.extend_from_slice(direct);

    // --- correlated companions and causal propagation (§V-B) ---
    extra.clear();
    for occ in occurrences.iter() {
        if occ.class == ComponentClass::Miscellaneous {
            continue;
        }
        if let Some(delay) = config.correlation.roll_misc_companion(&mut rng, occ.class) {
            extra.push(Occurrence {
                class: ComponentClass::Miscellaneous,
                slot: 0,
                ftype: sample_type(&mut rng, ComponentClass::Miscellaneous),
                error_time: occ.error_time + delay,
                expand_repeats: false,
            });
        }
        causal.clear();
        config
            .correlation
            .roll_causal_into(&mut rng, occ.class, causal);
        for &(secondary, delay) in causal.iter() {
            if server.component_count(secondary) == 0 {
                continue;
            }
            let slots = server.component_count(secondary) as u8;
            extra.push(Occurrence {
                class: secondary,
                slot: rng.random_range(0..slots),
                ftype: sample_type(&mut rng, secondary),
                error_time: occ.error_time + delay,
                expand_repeats: false,
            });
        }
    }
    counts.correlated += extra.len() as u64;
    occurrences.extend_from_slice(extra);

    // --- categorize in time order, applying decommissioning ---
    occurrences.retain(|o| {
        if o.class != ComponentClass::Miscellaneous {
            match monitored_from {
                Some(from) if o.error_time >= from => {}
                _ => {
                    // no agent yet: failure goes unrecorded
                    counts.dropped_unmonitored += 1;
                    return false;
                }
            }
        }
        if o.error_time >= start && o.error_time < end {
            true
        } else {
            counts.dropped_outside_window += 1;
            false
        }
    });
    occurrences.sort_by_key(|o| o.error_time);
    let mut decommissioned_at: Option<SimTime> = None;
    for occ in occurrences.iter() {
        if let Some(d) = decommissioned_at {
            if occ.error_time >= d {
                counts.skipped_decommissioned += 1;
                continue;
            }
        }
        let category = if server.out_of_warranty_at(occ.error_time) {
            FotCategory::Error
        } else {
            FotCategory::Fixing
        };
        match category {
            FotCategory::Error => counts.tickets_error += 1,
            _ => counts.tickets_fixing += 1,
        }
        let response = operator.sample_response(
            &mut rng,
            server.product_line,
            occ.class,
            category,
            occ.error_time,
            occ.error_time.since(server.deploy_time),
        );
        if response.is_some() {
            counts.responses += 1;
        }
        out.push(TicketSpec {
            server: sid,
            class: occ.class,
            slot: occ.slot,
            ftype: occ.ftype,
            error_time: occ.error_time,
            category,
            response,
        });

        if category == FotCategory::Error
            && occ.ftype.severity() == Severity::Fatal
            && operator.roll_decommission(&mut rng, true)
        {
            decommissioned_at = Some(occ.error_time);
            counts.decommissioned += 1;
        }

        // --- false alarms (Table I: 1.7% of tickets) ---
        if config.false_alarm.roll(&mut rng) {
            let fa_time = occ.error_time + SimDuration::from_secs(rng.random_range(0..30 * 86_400));
            if fa_time < end {
                let fa_class = occ.class;
                let slots = server.component_count(fa_class).max(1) as u8;
                let fa_response = operator.sample_response(
                    &mut rng,
                    server.product_line,
                    fa_class,
                    FotCategory::FalseAlarm,
                    fa_time,
                    fa_time.since(server.deploy_time),
                );
                counts.tickets_false_alarm += 1;
                if fa_response.is_some() {
                    counts.responses += 1;
                }
                out.push(TicketSpec {
                    server: sid,
                    class: fa_class,
                    slot: rng.random_range(0..slots),
                    ftype: sample_type(&mut rng, fa_class),
                    error_time: fa_time,
                    category: FotCategory::FalseAlarm,
                    response: fa_response,
                });
            }
        }
    }
}
