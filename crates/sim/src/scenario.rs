//! Scenario presets: the paper reproduction, scaled-down variants for tests
//! and benches, and the ablations called out in DESIGN.md.

use dcf_failmodel::{BatchModel, DetectionModel, RepeatModel, SyncRepeatModel};
use dcf_fleet::FleetConfig;
use dcf_trace::Trace;

use crate::config::SimConfig;
use crate::engine;
use crate::error::SimError;
use crate::options::RunOptions;

/// A named, runnable simulation scenario.
///
/// # Examples
///
/// ```
/// use dcf_sim::{RunOptions, Scenario};
///
/// let trace = Scenario::small().seed(3).simulate(&RunOptions::default()).unwrap();
/// assert!(!trace.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (recorded in the trace description).
    pub name: &'static str,
    /// The full configuration.
    pub config: SimConfig,
}

impl Scenario {
    fn new(name: &'static str, fleet: FleetConfig) -> Self {
        let mut config = SimConfig::with_fleet(fleet, name);
        config.description = name.to_string();
        Self { name, config }
    }

    /// The full paper reproduction: 24 DCs, 160k servers, 1,411-day window,
    /// all failure channels on, calibrated rates (~290k FOTs).
    pub fn paper() -> Self {
        Self::new("paper", FleetConfig::paper())
    }

    /// Medium scale (~20k servers) — realistic shape at bench-friendly cost.
    pub fn medium() -> Self {
        Self::new("medium", FleetConfig::medium())
    }

    /// Small scale (2k servers, 360-day window) — unit/integration tests.
    pub fn small() -> Self {
        Self::new("small", FleetConfig::small())
    }

    /// Ablation: batch failures disabled. Under this counterfactual the
    /// paper predicts TBF becomes close to a smooth heavy-tailed family
    /// (it blames the batches for the Hypothesis 3/4 rejections).
    pub fn without_batches(mut self) -> Self {
        self.config.batch = BatchModel::disabled();
        self.name = "no-batch";
        self.config.description = "no-batch".into();
        self
    }

    /// Ablation: workload-independent "active probing" detection (§III-A's
    /// proposed fix). Figures 3–4's diurnal structure should flatten.
    pub fn with_active_probing(mut self) -> Self {
        self.config.detection = DetectionModel::active_probing();
        self.name = "active-probing";
        self.config.description = "active-probing".into();
        self
    }

    /// Ablation: fully effective repairs (no repeating or synchronous
    /// failures) — the §V-C recommendation.
    pub fn with_effective_repairs(mut self) -> Self {
        self.config.repeat = RepeatModel::disabled();
        self.config.sync_repeat = SyncRepeatModel {
            groups_per_trace: 0.0,
            ..SyncRepeatModel::default()
        };
        self.name = "effective-repairs";
        self.config.description = "effective-repairs".into();
        self
    }

    /// Ablation: every data center built with modern cooling — Hypothesis 5
    /// should stop rejecting everywhere (§IV).
    pub fn with_modern_cooling(mut self) -> Self {
        self.config.fleet.modern_cooling_fraction = 1.0;
        self.name = "modern-cooling";
        self.config.description = "modern-cooling".into();
        self
    }

    /// Ablation: the §VIII measurement artifact — FMS agents rolled out
    /// incrementally, so early-window failures are under-recorded.
    pub fn with_partial_monitoring(mut self) -> Self {
        self.config.monitoring = dcf_fms::MonitoringModel::paper_rollout();
        self.name = "partial-monitoring";
        self.config.description = "partial-monitoring".into();
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the engine worker-thread count (`0` = auto). Execution knob
    /// only: the trace is byte-identical at any setting.
    pub fn engine_threads(mut self, threads: usize) -> Self {
        self.config.engine_threads = threads;
        self
    }

    /// Runs the scenario under `options` (metrics sink, thread override —
    /// see [`RunOptions`]). The trace is a pure function of the scenario
    /// config and seed: options never perturb it.
    ///
    /// # Errors
    ///
    /// Propagates configuration and assembly errors from the engine.
    pub fn simulate(&self, options: &RunOptions) -> Result<Trace, SimError> {
        engine::simulate(&self.config, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_distinct_fleets() {
        assert!(Scenario::paper().config.fleet.servers > Scenario::medium().config.fleet.servers);
        assert!(Scenario::medium().config.fleet.servers > Scenario::small().config.fleet.servers);
    }

    #[test]
    fn ablations_change_the_config() {
        let base = Scenario::small();
        assert_ne!(base.config, base.clone().without_batches().config);
        assert_ne!(base.config, base.clone().with_active_probing().config);
        assert_ne!(base.config, base.clone().with_effective_repairs().config);
        assert_ne!(base.config, base.clone().with_modern_cooling().config);
        assert_ne!(base.config, base.clone().with_partial_monitoring().config);
    }

    #[test]
    fn seed_is_recorded() {
        let s = Scenario::small().seed(99);
        assert_eq!(s.config.seed, 99);
    }

    #[test]
    fn engine_threads_is_recorded() {
        let s = Scenario::small().engine_threads(3);
        assert_eq!(s.config.engine_threads, 3);
        assert_eq!(Scenario::small().config.engine_threads, 0, "auto default");
    }
}
