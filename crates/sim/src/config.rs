//! Simulation configuration: fleet + all failure/FMS models + seed.

use serde::{Deserialize, Serialize};

use dcf_failmodel::{
    BatchModel, CorrelationModel, DetectionModel, EscalationModel, FailureRates, RepeatModel,
    SyncRepeatModel,
};
use dcf_fleet::FleetConfig;
use dcf_fms::{FalseAlarmModel, MonitoringModel};

/// Everything a simulation run depends on. A run is a pure function of this
/// struct (including its `seed`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Fleet topology and deployment.
    pub fleet: FleetConfig,
    /// Background per-class failure rates.
    pub rates: FailureRates,
    /// Fault-to-FOT detection model.
    pub detection: DetectionModel,
    /// Batch failure events.
    pub batch: BatchModel,
    /// Repeating-failure behavior.
    pub repeat: RepeatModel,
    /// Synchronously repeating server groups.
    pub sync_repeat: SyncRepeatModel,
    /// Correlated component failures.
    pub correlation: CorrelationModel,
    /// Warning→fatal escalation on unrepaired components.
    pub escalation: EscalationModel,
    /// False-alarm stream.
    pub false_alarm: FalseAlarmModel,
    /// FMS agent coverage over the window (full for calibrated runs).
    pub monitoring: MonitoringModel,
    /// Master RNG seed.
    pub seed: u64,
    /// Worker threads for the per-server engine phase: `0` (the default)
    /// means auto-detect, other values are clamped to `[1, 16]`. Purely an
    /// execution knob — the trace is byte-identical at any setting.
    #[serde(default)]
    pub engine_threads: usize,
    /// Free-text description recorded into the trace.
    pub description: String,
}

impl SimConfig {
    /// A config with all models at their calibrated defaults over `fleet`.
    pub fn with_fleet(fleet: FleetConfig, description: impl Into<String>) -> Self {
        Self {
            fleet,
            rates: FailureRates::calibrated(),
            detection: DetectionModel::default(),
            batch: BatchModel::default(),
            repeat: RepeatModel::default(),
            sync_repeat: SyncRepeatModel::default(),
            correlation: CorrelationModel::default(),
            escalation: EscalationModel::default(),
            false_alarm: FalseAlarmModel::default(),
            monitoring: MonitoringModel::full(),
            seed: 0,
            engine_threads: 0,
            description: description.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_assembly_round_trips_serde() {
        let cfg = SimConfig::with_fleet(FleetConfig::small(), "test");
        // Minimal build environments stub serde_json; skip if so.
        let Ok(json) = std::panic::catch_unwind(|| serde_json::to_string(&cfg).unwrap()) else {
            return;
        };
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn engine_threads_is_optional_in_serialized_configs() {
        let cfg = SimConfig::with_fleet(FleetConfig::small(), "test");
        assert_eq!(cfg.engine_threads, 0, "default is auto");
        // Minimal build environments stub serde_json; skip if so.
        let Ok(json) = std::panic::catch_unwind(|| serde_json::to_string(&cfg).unwrap()) else {
            return;
        };
        // Configs serialized before the knob existed must still load.
        let stripped = json.replace(r#""engine_threads":0,"#, "");
        assert_ne!(stripped, json, "field should have been present");
        let back: SimConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, cfg);
    }
}
