//! [`RunOptions`]: the consolidated knob struct for simulation entry points.

use std::path::PathBuf;

use dcf_obs::MetricsRegistry;
use dcf_trace::io::spill::SpillCodec;

/// Execution options for [`crate::simulate`] / [`crate::Scenario::simulate`].
///
/// One struct gathers every run-time knob that is *not* part of the
/// simulated world: the metrics registry, the engine worker-thread
/// override, and the sharded-execution knobs (shard count, shard worker
/// pool, spill codec/dir). None of the fields affect the generated trace —
/// a run is a pure function of `(SimConfig, seed)`.
///
/// With [`RunOptions::shards`] ≥ 2, [`crate::simulate`] routes through the
/// sharded bounded-memory driver (SCALING.md) and assembles the merged
/// trace; the result is byte-identical to an unsharded run. For streaming
/// digest-only runs that never materialize a trace, use
/// [`crate::simulate_sharded`].
///
/// # Examples
///
/// ```
/// use dcf_obs::MetricsRegistry;
/// use dcf_sim::{RunOptions, Scenario};
///
/// // The default is uninstrumented, unsharded, with threads from the config.
/// let trace = Scenario::small().seed(3).simulate(&RunOptions::default()).unwrap();
///
/// // Instrumented run on two engine workers: byte-identical trace.
/// let metrics = MetricsRegistry::new();
/// let options = RunOptions::new().metrics(&metrics).threads(2);
/// let same = Scenario::small().seed(3).simulate(&options).unwrap();
/// assert_eq!(trace.fots(), same.fots());
///
/// // Sharded execution is a pure strategy: still byte-identical.
/// let sharded = Scenario::small()
///     .seed(3)
///     .simulate(&RunOptions::new().shards(4))
///     .unwrap();
/// assert_eq!(trace.fots(), sharded.fots());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Metrics sink for phase timings and event counters. The default
    /// (disabled) registry records nothing at near-zero cost. Counters
    /// never consume RNG draws, so instrumented and plain runs produce
    /// bit-identical traces.
    pub metrics: MetricsRegistry,
    /// Engine worker-thread override: `Some(n)` takes precedence over
    /// [`crate::SimConfig::engine_threads`] (`0` = auto-detect, clamped to
    /// `[1, 16]`), `None` leaves the config's setting in charge. Purely an
    /// execution knob — the trace is byte-identical at any value.
    pub threads: Option<usize>,
    /// Shard count for the bounded-memory driver. `0` or `1` (the
    /// default) runs the in-memory engine; ≥ 2 partitions the fleet into
    /// contiguous server-id ranges, spills each shard to disk, and k-way
    /// merges ([`crate::ShardPlan`]). Clamped to the fleet size. The trace
    /// is byte-identical at any shard count.
    pub shards: u32,
    /// Worker threads simulating shards concurrently (sharded runs only).
    /// `0` resolves to the machine's available parallelism (capped at 16);
    /// any value is clamped to the shard count. Peak memory grows by one
    /// in-flight shard's tickets per extra worker; the digest never moves.
    pub shard_workers: u32,
    /// On-disk encoding for the shard spill files.
    /// [`SpillCodec::Delta`] (default) writes `DCFSPIL1` delta-varint
    /// blocks at ~10–13 bytes per record; [`SpillCodec::Raw`] writes
    /// 27-byte `DCFSPIL0` rows.
    pub spill_codec: SpillCodec,
    /// Directory for the per-shard spill files. `None` uses a
    /// process-unique directory under the system temp dir.
    pub spill_dir: Option<PathBuf>,
    /// Keep the spill files after the merge instead of deleting them.
    pub keep_spills: bool,
}

impl RunOptions {
    /// Default options: no instrumentation, unsharded, threads from the
    /// config.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a metrics registry (cloned; clones share the same state).
    pub fn metrics(mut self, metrics: &MetricsRegistry) -> Self {
        self.metrics = metrics.clone();
        self
    }

    /// Overrides the engine worker-thread count (`0` = auto-detect).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the shard count (`0`/`1` = unsharded in-memory engine).
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the shard-worker pool size (`0` = auto).
    pub fn shard_workers(mut self, workers: u32) -> Self {
        self.shard_workers = workers;
        self
    }

    /// Sets the spill encoding for sharded runs.
    pub fn spill_codec(mut self, codec: SpillCodec) -> Self {
        self.spill_codec = codec;
        self
    }

    /// Sets the spill directory for sharded runs.
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Keeps spill files after the merge.
    pub fn keep_spills(mut self, keep: bool) -> Self {
        self.keep_spills = keep;
        self
    }

    /// Whether the options request the sharded bounded-memory driver.
    pub fn is_sharded(&self) -> bool {
        self.shards >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_uninstrumented_and_deferential() {
        let options = RunOptions::default();
        assert!(!options.metrics.is_enabled());
        assert_eq!(options.threads, None);
        assert_eq!(options.shards, 0);
        assert!(!options.is_sharded());
        assert_eq!(options.spill_dir, None);
        assert!(!options.keep_spills);
    }

    #[test]
    fn builders_set_fields() {
        let metrics = MetricsRegistry::new();
        let options = RunOptions::new()
            .metrics(&metrics)
            .threads(4)
            .shards(8)
            .shard_workers(2)
            .spill_codec(SpillCodec::Raw)
            .spill_dir("/tmp/spills")
            .keep_spills(true);
        assert!(options.metrics.is_enabled());
        assert_eq!(options.threads, Some(4));
        assert_eq!(options.shards, 8);
        assert!(options.is_sharded());
        assert_eq!(options.shard_workers, 2);
        assert_eq!(options.spill_codec, SpillCodec::Raw);
        assert_eq!(
            options.spill_dir.as_deref(),
            Some(std::path::Path::new("/tmp/spills"))
        );
        assert!(options.keep_spills);
    }
}
