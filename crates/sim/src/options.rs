//! [`RunOptions`]: the consolidated knob struct for simulation entry points.

use dcf_obs::MetricsRegistry;

/// Execution options for [`crate::simulate`] / [`crate::Scenario::simulate`].
///
/// One struct gathers every run-time knob that is *not* part of the
/// simulated world: the metrics registry and the engine worker-thread
/// override today, future knobs (tracing sinks, memory budgets, …) without
/// another `run_with_*` variant each. None of the fields affect the
/// generated trace — a run is a pure function of `(SimConfig, seed)`.
///
/// # Examples
///
/// ```
/// use dcf_obs::MetricsRegistry;
/// use dcf_sim::{RunOptions, Scenario};
///
/// // The default is uninstrumented, with threads from the config.
/// let trace = Scenario::small().seed(3).simulate(&RunOptions::default()).unwrap();
///
/// // Instrumented run on two engine workers: byte-identical trace.
/// let metrics = MetricsRegistry::new();
/// let options = RunOptions::new().metrics(&metrics).threads(2);
/// let same = Scenario::small().seed(3).simulate(&options).unwrap();
/// assert_eq!(trace.fots(), same.fots());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Metrics sink for phase timings and event counters. The default
    /// (disabled) registry records nothing at near-zero cost. Counters
    /// never consume RNG draws, so instrumented and plain runs produce
    /// bit-identical traces.
    pub metrics: MetricsRegistry,
    /// Engine worker-thread override: `Some(n)` takes precedence over
    /// [`crate::SimConfig::engine_threads`] (`0` = auto-detect, clamped to
    /// `[1, 16]`), `None` leaves the config's setting in charge. Purely an
    /// execution knob — the trace is byte-identical at any value.
    pub threads: Option<usize>,
}

impl RunOptions {
    /// Default options: no instrumentation, threads from the config.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a metrics registry (cloned; clones share the same state).
    pub fn metrics(mut self, metrics: &MetricsRegistry) -> Self {
        self.metrics = metrics.clone();
        self
    }

    /// Overrides the engine worker-thread count (`0` = auto-detect).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_uninstrumented_and_deferential() {
        let options = RunOptions::default();
        assert!(!options.metrics.is_enabled());
        assert_eq!(options.threads, None);
    }

    #[test]
    fn builders_set_fields() {
        let metrics = MetricsRegistry::new();
        let options = RunOptions::new().metrics(&metrics).threads(4);
        assert!(options.metrics.is_enabled());
        assert_eq!(options.threads, Some(4));
    }
}
