//! # dcf-sim
//!
//! The discrete-event simulation engine of the `dcfail` reproduction:
//! drives the fleet, failure, detection and operator models to emit a
//! calibrated FOT trace with the statistical structure of the DSN'17
//! dataset (~290k tickets at full scale).
//!
//! Runs are pure functions of `(SimConfig, seed)`; per-server RNG streams
//! make the parallel per-server phase independent of thread count.
//!
//! ```
//! use dcf_sim::{RunOptions, Scenario};
//!
//! let a = Scenario::small().seed(5).simulate(&RunOptions::default()).unwrap();
//! let b = Scenario::small().seed(5).simulate(&RunOptions::default()).unwrap();
//! assert_eq!(a.fots(), b.fots()); // bit-for-bit deterministic
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod engine;
mod error;
mod options;
mod scenario;
mod shard;

pub use config::SimConfig;
pub use engine::{expected_background_failures, simulate, simulate_on_fleet};
pub use error::SimError;
pub use options::RunOptions;
pub use scenario::Scenario;
pub use shard::{simulate_sharded, simulate_sharded_on_fleet, ShardPlan, ShardedRun};

#[cfg(test)]
mod tests {
    use super::*;
    use dcf_trace::{ComponentClass, FotCategory};

    fn small_trace() -> dcf_trace::Trace {
        Scenario::small()
            .seed(42)
            .simulate(&RunOptions::default())
            .unwrap()
    }

    #[test]
    fn small_run_produces_plausible_volume() {
        let trace = small_trace();
        // 2k servers over a 360-day window: expect hundreds to thousands of
        // tickets once batches and repeats are included.
        assert!(trace.len() > 200, "got {}", trace.len());
        assert!(trace.len() < 200_000, "got {}", trace.len());
    }

    #[test]
    fn every_ticket_is_inside_the_window() {
        let trace = small_trace();
        let start = trace.info().start;
        let end = trace.end_time();
        for fot in trace.fots() {
            assert!(fot.error_time >= start && fot.error_time < end);
        }
    }

    #[test]
    fn hdd_dominates_and_all_major_classes_appear() {
        let trace = small_trace();
        let hdd = trace.failures_of(ComponentClass::Hdd).count();
        let total = trace.failures().count();
        let share = hdd as f64 / total as f64;
        assert!(share > 0.6, "HDD share {share}");
        assert!(trace.failures_of(ComponentClass::Miscellaneous).count() > 0);
        assert!(trace.failures_of(ComponentClass::Memory).count() > 0);
    }

    #[test]
    fn categories_are_all_present() {
        let trace = small_trace();
        let [fixing, error, fa] = trace.category_counts();
        assert!(fixing > 0 && error > 0 && fa > 0);
        // False alarms are rare.
        assert!((fa as f64) < 0.05 * trace.len() as f64);
    }

    #[test]
    fn runs_are_deterministic_across_invocations() {
        let options = RunOptions::default();
        let a = Scenario::small().seed(7).simulate(&options).unwrap();
        let b = Scenario::small().seed(7).simulate(&options).unwrap();
        assert_eq!(a.fots(), b.fots());
        let c = Scenario::small().seed(8).simulate(&options).unwrap();
        assert_ne!(a.fots(), c.fots());
    }

    #[test]
    fn background_volume_matches_analytic_expectation() {
        // Disable every non-background channel and every detection-window
        // censoring effect we can, then compare the sampled count with the
        // analytic expectation.
        let mut config =
            crate::SimConfig::with_fleet(dcf_fleet::FleetConfig::small(), "expectation-check");
        config.batch = dcf_failmodel::BatchModel::disabled();
        config.repeat = dcf_failmodel::RepeatModel::disabled();
        config.escalation = dcf_failmodel::EscalationModel::disabled();
        config.correlation = dcf_failmodel::CorrelationModel::disabled();
        config.sync_repeat = dcf_failmodel::SyncRepeatModel {
            groups_per_trace: 0.0,
            ..dcf_failmodel::SyncRepeatModel::default()
        };
        config.false_alarm = dcf_fms::FalseAlarmModel::disabled();
        config.rates = config.rates.scaled(5.0); // enough volume for a tight CLT band
        let fleet = dcf_fleet::FleetBuilder::new(config.fleet.clone())
            .seed(config.seed)
            .build()
            .unwrap();
        let expected = crate::expected_background_failures(&config, &fleet);
        let trace = crate::simulate_on_fleet(&config, &fleet, &RunOptions::default()).unwrap();
        let got = trace.failures().count() as f64;
        // Detection delays push a small share of late faults past the
        // window end, so the sample sits slightly below the expectation.
        assert!(
            got <= expected * 1.03 && got >= expected * 0.85,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn no_batch_ablation_reduces_daily_spikes() {
        let base = Scenario::small()
            .seed(3)
            .simulate(&RunOptions::default())
            .unwrap();
        let ablated = Scenario::small()
            .without_batches()
            .seed(3)
            .simulate(&RunOptions::default())
            .unwrap();
        let max_daily = |t: &dcf_trace::Trace| {
            let mut per_day = std::collections::HashMap::new();
            for f in t.failures() {
                *per_day.entry(f.error_time.day_index()).or_insert(0usize) += 1;
            }
            per_day.values().copied().max().unwrap_or(0)
        };
        assert!(max_daily(&base) >= max_daily(&ablated));
    }

    #[test]
    fn metrics_do_not_perturb_the_trace_and_match_its_shape() {
        let scenario = Scenario::small().seed(42);
        let plain = scenario.simulate(&RunOptions::default()).unwrap();
        let registry = dcf_obs::MetricsRegistry::new();
        let instrumented = scenario
            .simulate(&RunOptions::new().metrics(&registry))
            .unwrap();
        // Instrumentation must be RNG-free: identical trace either way.
        assert_eq!(plain.fots(), instrumented.fots());
        let count = |name: &str| registry.counter_value(name).unwrap();
        let by_category = count("sim.tickets.fixing")
            + count("sim.tickets.error")
            + count("sim.tickets.false_alarm");
        assert_eq!(by_category, instrumented.len() as u64);
        assert_eq!(count("sim.tickets.total"), instrumented.len() as u64);
        assert_eq!(count("fms.tickets.issued"), instrumented.len() as u64);
        assert!(count("sim.occurrences.background") > 0);
        let report = registry.report("sim-test");
        for phase in [
            "engine.fleet_build",
            "engine.global",
            "engine.per_server",
            "engine.assembly",
        ] {
            assert!(report.phase_ms(phase).is_some(), "missing span {phase}");
        }
    }

    #[test]
    fn error_tickets_come_from_out_of_warranty_servers() {
        let trace = small_trace();
        for fot in trace.in_category(FotCategory::Error) {
            let server = trace.server(fot.server);
            assert!(server.out_of_warranty_at(fot.error_time));
            assert!(fot.response.is_none());
        }
        for fot in trace.in_category(FotCategory::Fixing) {
            assert!(fot.response.is_some());
        }
    }
}
