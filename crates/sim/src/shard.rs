//! The sharded, bounded-memory engine driver.
//!
//! [`simulate_sharded`] partitions the fleet into contiguous server-id
//! ranges (a [`ShardPlan`]), simulates one shard at a time — reusing the
//! unsharded engine's global phase and per-server workers verbatim — and
//! streams each shard's sorted ticket records into a
//! [`dcf_trace::io::spill`] file instead of holding a global ticket
//! vector. A final k-way merge replays the spills in global order,
//! assigns ticket ids, and computes the trace digest as a stream, so peak
//! memory is bounded by `fleet metadata + one shard's tickets + one merge
//! chunk per shard` regardless of fleet size.
//!
//! Because per-server RNG streams are seeded from `(seed, server id)`
//! alone and the global phase runs once over the full fleet, the merged
//! stream is **byte-identical** to an unsharded run at any shard count and
//! thread count — `SCALING.md` documents the argument, and
//! `tests/engine_identity.rs` gates it in CI.
//!
//! Phases recorded on the run's registry: one `engine.shard.simulate` and
//! `engine.shard.spill` span per shard, one `engine.shard.merge` span,
//! plus the `engine.shards` gauge, the `shard.bytes_spilled` counter, and
//! the `mem.peak_rss_bytes` gauge ([`dcf_obs::BenchSummary`] picks all of
//! them up).

use std::ops::Range;
use std::path::PathBuf;

use dcf_fleet::{Fleet, FleetBuilder};
use dcf_fms::{FmsMetrics, TicketFactory};
use dcf_trace::io::spill::{merge_spills, ShardSpillReader, ShardSpillWriter, SpillRecord};
use dcf_trace::io::FotsDigester;
use dcf_trace::{columns::category_tag, Fot, Trace, TraceError};

use crate::config::SimConfig;
use crate::engine::{
    make_fot_from_spec, merge_sorted_specs, per_server_specs, publish_server_counts,
    resolve_engine_threads, run_global_phase, trace_info, ServerCounts,
};
use crate::error::SimError;
use crate::options::RunOptions;

/// A partition of `n_servers` contiguous server ids into `shards`
/// near-equal half-open ranges. The first `n_servers % shards` ranges get
/// one extra server, so sizes differ by at most one.
///
/// The plan keys shards by server-id range (not by hash) so each shard's
/// direct-occurrence lookups and fleet metadata accesses stay contiguous,
/// and so spill files carry a self-describing `server_lo..server_hi`.
///
/// # Examples
///
/// ```
/// use dcf_sim::ShardPlan;
///
/// let plan = ShardPlan::new(10, 3);
/// assert_eq!(plan.shards(), 3);
/// let ranges: Vec<_> = plan.ranges().collect();
/// assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
///
/// // Degenerate plans clamp: never more shards than servers, never zero.
/// assert_eq!(ShardPlan::new(2, 8).shards(), 2);
/// assert_eq!(ShardPlan::new(5, 0).shards(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    n_servers: u32,
    shards: u32,
}

impl ShardPlan {
    /// Plans `shards` ranges over `n_servers` servers. `shards` is clamped
    /// to `[1, max(1, n_servers)]`.
    pub fn new(n_servers: u32, shards: u32) -> Self {
        Self {
            n_servers,
            shards: shards.clamp(1, n_servers.max(1)),
        }
    }

    /// Number of shards in the plan.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Total servers covered.
    pub fn servers(&self) -> u32 {
        self.n_servers
    }

    /// The half-open server-id range of shard `shard` (< [`Self::shards`]).
    pub fn range(&self, shard: u32) -> Range<u32> {
        assert!(shard < self.shards, "shard {shard} out of {}", self.shards);
        let base = self.n_servers / self.shards;
        let extra = self.n_servers % self.shards;
        // Shards [0, extra) are (base + 1) wide, the rest are base wide.
        let lo = shard * base + shard.min(extra);
        let width = base + u32::from(shard < extra);
        lo..lo + width
    }

    /// All ranges, in shard order; adjacent ranges abut and the union is
    /// `0..n_servers`.
    pub fn ranges(&self) -> impl Iterator<Item = Range<u32>> + '_ {
        (0..self.shards).map(|s| self.range(s))
    }
}

/// Knobs specific to the sharded driver (everything else comes from
/// [`RunOptions`] and [`SimConfig`]).
#[derive(Debug, Clone, Default)]
pub struct ShardOptions {
    /// Shard count (`0` or `1` = a single shard; clamped to the fleet
    /// size). More shards lower the per-shard ticket high-water mark.
    pub shards: u32,
    /// Directory for the per-shard spill files. `None` uses a
    /// process-unique directory under the system temp dir.
    pub spill_dir: Option<PathBuf>,
    /// Keep the spill files after the merge instead of deleting them.
    pub keep_spills: bool,
    /// Assemble a full [`Trace`] from the merged stream. Leave `false` for
    /// fleets too large to hold a ticket vector in memory: the run then
    /// reports only the digest and streamed tallies.
    pub materialize_trace: bool,
}

impl ShardOptions {
    /// Default options with `shards` shards.
    pub fn new(shards: u32) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }

    /// Sets the spill directory.
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Keeps spill files after the merge.
    pub fn keep_spills(mut self, keep: bool) -> Self {
        self.keep_spills = keep;
        self
    }

    /// Requests full trace assembly after the merge.
    pub fn materialize_trace(mut self, materialize: bool) -> Self {
        self.materialize_trace = materialize;
        self
    }
}

/// What a sharded run produces: streamed aggregates always, the full trace
/// only when [`ShardOptions::materialize_trace`] asked for it.
#[derive(Debug)]
#[non_exhaustive]
pub struct ShardedRun {
    /// [`dcf_trace::io::fots_digest`] of the merged ticket stream —
    /// byte-identical to an unsharded run of the same `(config, seed)`.
    pub digest: u64,
    /// Total tickets issued.
    pub tickets: u64,
    /// Tickets per category, in `[fixing, error, false_alarm]` order
    /// (matches [`Trace::category_counts`]).
    pub category_counts: [u64; 3],
    /// Shards actually run (after clamping to the fleet size).
    pub shards: u32,
    /// Bytes written across all spill files.
    pub bytes_spilled: u64,
    /// The assembled trace, if requested.
    pub trace: Option<Trace>,
}

/// Runs the simulation sharded: builds the fleet, then
/// [`simulate_sharded_on_fleet`].
///
/// With `shards <= 1` and `materialize_trace`, the result's trace is
/// byte-identical to [`crate::simulate`]'s — the sharded driver is a pure
/// execution strategy, never a different simulation.
///
/// # Examples
///
/// ```
/// use dcf_sim::{simulate, RunOptions, Scenario, ShardOptions};
/// use dcf_trace::io::fots_digest;
///
/// let scenario = Scenario::small().seed(9);
/// let unsharded = simulate(&scenario.config, &RunOptions::default()).unwrap();
/// let sharded = dcf_sim::simulate_sharded(
///     &scenario.config,
///     &RunOptions::default(),
///     &ShardOptions::new(4),
/// )
/// .unwrap();
/// assert_eq!(sharded.digest, fots_digest(unsharded.fots()));
/// assert_eq!(sharded.tickets, unsharded.len() as u64);
/// ```
///
/// # Errors
///
/// [`SimError::Fleet`] for invalid fleet configurations, [`SimError::Trace`]
/// for spill IO failures or (with `materialize_trace`) assembly failures.
pub fn simulate_sharded(
    config: &SimConfig,
    options: &RunOptions,
    shard_options: &ShardOptions,
) -> Result<ShardedRun, SimError> {
    let metrics = &options.metrics;
    let span = metrics.phase("engine.fleet_build");
    let fleet = FleetBuilder::new(config.fleet.clone())
        .seed(config.seed)
        .metrics(metrics.clone())
        .build()?;
    drop(span);
    simulate_sharded_on_fleet(config, &fleet, options, shard_options)
}

/// [`simulate_sharded`] on an already-built fleet.
///
/// # Errors
///
/// Same contract as [`simulate_sharded`].
pub fn simulate_sharded_on_fleet(
    config: &SimConfig,
    fleet: &Fleet,
    options: &RunOptions,
    shard_options: &ShardOptions,
) -> Result<ShardedRun, SimError> {
    match options.threads {
        Some(threads) if threads != config.engine_threads => {
            let mut config = config.clone();
            config.engine_threads = threads;
            sharded_engine(&config, fleet, options, shard_options)
        }
        _ => sharded_engine(config, fleet, options, shard_options),
    }
}

fn sharded_engine(
    config: &SimConfig,
    fleet: &Fleet,
    options: &RunOptions,
    shard_options: &ShardOptions,
) -> Result<ShardedRun, SimError> {
    let metrics = &options.metrics;
    let fms = FmsMetrics::from_registry(metrics);
    let n_threads = resolve_engine_threads(config.engine_threads);
    let plan = ShardPlan::new(fleet.servers().len() as u32, shard_options.shards);
    metrics.set_gauge("engine.threads", n_threads as f64);
    metrics.set_gauge("engine.shards", plan.shards() as f64);

    // Global phase runs ONCE over the full fleet, exactly as unsharded:
    // batch/sync scheduling consumes one RNG stream whose draws must not
    // depend on the shard count.
    let global = run_global_phase(config, fleet, metrics);

    let spill_dir = match &shard_options.spill_dir {
        Some(dir) => dir.clone(),
        None => std::env::temp_dir().join(format!("dcf-spill-{}", std::process::id())),
    };
    std::fs::create_dir_all(&spill_dir).map_err(|e| SimError::Trace(TraceError::from(e)))?;

    // -------- Per-shard simulate + spill --------
    let mut counts = ServerCounts::default();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut bytes_spilled = 0u64;
    for shard in 0..plan.shards() {
        let range = plan.range(shard);
        let sim_span = metrics.phase("engine.shard.simulate");
        let servers = &fleet.servers()[range.start as usize..range.end as usize];
        let (spec_chunks, shard_counts) =
            per_server_specs(config, fleet, &global, servers, n_threads);
        counts.merge(&shard_counts);
        drop(sim_span);

        let spill_span = metrics.phase("engine.shard.spill");
        let path = spill_dir.join(format!("shard-{shard:04}.dcfspill"));
        let mut writer = ShardSpillWriter::new(&path, shard, plan.shards(), range.start, range.end);
        // Same merge discipline as unsharded assembly: the spill file holds
        // this shard's records in final global order.
        merge_sorted_specs(spec_chunks, |s| {
            writer.push(&SpillRecord {
                server: s.server,
                class: s.class,
                slot: s.slot,
                ftype: s.ftype,
                error_time: s.error_time,
                category: s.category,
                response: s.response,
            });
        });
        bytes_spilled += writer.finish().map_err(SimError::Trace)?;
        paths.push(path);
        drop(spill_span);
    }
    publish_server_counts(metrics, &fms, &counts);
    metrics.add("shard.bytes_spilled", bytes_spilled);

    // -------- Streaming merge --------
    let merge_span = metrics.phase("engine.shard.merge");
    let readers = paths
        .iter()
        .map(ShardSpillReader::open)
        .collect::<Result<Vec<_>, _>>()
        .map_err(SimError::Trace)?;
    let mut factory = TicketFactory::new();
    let mut digester = FotsDigester::new();
    let mut category_counts = [0u64; 3];
    let mut fots: Option<Vec<Fot>> = shard_options.materialize_trace.then(Vec::new);
    merge_spills(readers, |r| {
        let spec = crate::engine::TicketSpec {
            server: r.server,
            class: r.class,
            slot: r.slot,
            ftype: r.ftype,
            error_time: r.error_time,
            category: r.category,
            response: r.response,
        };
        let fot = make_fot_from_spec(&mut factory, fleet, &spec);
        digester.push(&fot);
        category_counts[category_tag(fot.category) as usize] += 1;
        if let Some(v) = fots.as_mut() {
            v.push(fot);
        }
    })
    .map_err(SimError::Trace)?;
    let total = factory.issued();
    metrics.add("sim.tickets.total", total);
    fms.tickets_issued.add(total);
    drop(merge_span);

    if !shard_options.keep_spills {
        for p in &paths {
            std::fs::remove_file(p).ok();
        }
        if shard_options.spill_dir.is_none() {
            std::fs::remove_dir(&spill_dir).ok();
        }
    }
    if let Some(peak) = dcf_obs::peak_rss_bytes() {
        metrics.set_gauge("mem.peak_rss_bytes", peak as f64);
    }

    let trace = match fots {
        Some(fots) => {
            let (servers, dcs, lines) = fleet.snapshot();
            Some(
                Trace::new(trace_info(config, global.start), servers, dcs, lines, fots)
                    .map_err(SimError::Trace)?,
            )
        }
        None => None,
    };
    Ok(ShardedRun {
        digest: digester.digest(),
        tickets: total,
        category_counts,
        shards: plan.shards(),
        bytes_spilled,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;
    use dcf_trace::io::fots_digest;

    #[test]
    fn plan_partitions_without_gaps_or_overlap() {
        for (n, k) in [(0u32, 3u32), (1, 1), (7, 3), (100, 7), (16, 16), (5, 9)] {
            let plan = ShardPlan::new(n, k);
            let mut next = 0u32;
            let mut sizes = Vec::new();
            for r in plan.ranges() {
                assert_eq!(r.start, next, "ranges must abut ({n}, {k})");
                // Clamping guarantees non-empty shards on non-empty fleets.
                assert!(n == 0 || r.end > r.start, "empty shard range ({n}, {k})");
                sizes.push(r.end - r.start);
                next = r.end;
            }
            assert_eq!(next, n, "union must cover all servers");
            let (min, max) = (sizes.iter().min(), sizes.iter().max());
            if let (Some(min), Some(max)) = (min, max) {
                assert!(max - min <= 1, "sizes differ by more than one: {sizes:?}");
            }
        }
    }

    #[test]
    fn sharded_digest_matches_unsharded_trace() {
        let scenario = Scenario::small().seed(21);
        let unsharded = crate::simulate(&scenario.config, &RunOptions::default()).unwrap();
        let expect = fots_digest(unsharded.fots());
        for shards in [1u32, 3] {
            let run = simulate_sharded(
                &scenario.config,
                &RunOptions::default(),
                &ShardOptions::new(shards),
            )
            .unwrap();
            assert_eq!(run.digest, expect, "{shards} shards");
            assert_eq!(run.tickets, unsharded.len() as u64);
            assert_eq!(
                run.category_counts,
                unsharded.category_counts().map(|c| c as u64)
            );
            assert!(run.trace.is_none(), "not materialized by default");
            assert!(run.bytes_spilled > 0);
        }
    }

    #[test]
    fn materialized_sharded_trace_is_byte_identical() {
        let scenario = Scenario::small().seed(5);
        let unsharded = crate::simulate(&scenario.config, &RunOptions::default()).unwrap();
        let run = simulate_sharded(
            &scenario.config,
            &RunOptions::default(),
            &ShardOptions::new(4).materialize_trace(true),
        )
        .unwrap();
        let trace = run.trace.expect("materialization requested");
        assert_eq!(trace.fots(), unsharded.fots());
        assert_eq!(trace.info(), unsharded.info());
    }

    #[test]
    fn sharded_run_records_shard_metrics() {
        let registry = dcf_obs::MetricsRegistry::new();
        let scenario = Scenario::small().seed(2);
        let run = simulate_sharded(
            &scenario.config,
            &RunOptions::new().metrics(&registry),
            &ShardOptions::new(2),
        )
        .unwrap();
        let report = registry.report("shard-test");
        assert_eq!(report.gauge("engine.shards"), Some(2.0));
        assert_eq!(
            report.counter("shard.bytes_spilled"),
            Some(run.bytes_spilled)
        );
        assert_eq!(report.counter("sim.tickets.total"), Some(run.tickets));
        for phase in [
            "engine.fleet_build",
            "engine.global",
            "engine.shard.simulate",
            "engine.shard.spill",
            "engine.shard.merge",
        ] {
            assert!(report.phase_ms(phase).is_some(), "missing span {phase}");
        }
        // One simulate span per shard.
        let simulate_spans = report
            .phases
            .iter()
            .filter(|p| p.name == "engine.shard.simulate")
            .count();
        assert_eq!(simulate_spans, 2);
        #[cfg(target_os = "linux")]
        assert!(report.gauge("mem.peak_rss_bytes").unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn keep_spills_leaves_verifiable_files() {
        let dir = std::env::temp_dir().join(format!("dcf-shard-keep-{}", std::process::id()));
        let scenario = Scenario::small().seed(13);
        let run = simulate_sharded(
            &scenario.config,
            &RunOptions::default(),
            &ShardOptions::new(2).spill_dir(&dir).keep_spills(true),
        )
        .unwrap();
        let mut rows = 0;
        for shard in 0..2 {
            let reader = dcf_trace::io::spill::ShardSpillReader::open(
                dir.join(format!("shard-{shard:04}.dcfspill")),
            )
            .unwrap();
            assert_eq!(reader.shard_count(), 2);
            rows += reader.rows();
        }
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(rows, run.tickets);
    }
}
