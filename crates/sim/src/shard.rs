//! The sharded, bounded-memory, pipelined engine driver.
//!
//! [`simulate_sharded`] partitions the fleet into contiguous server-id
//! ranges (a [`ShardPlan`]) and hands them to a pool of up to
//! [`RunOptions::shard_workers`] worker threads — each reusing the
//! unsharded engine's per-server workers verbatim — which stream every
//! shard's sorted ticket records into a [`dcf_trace::io::spill`] file
//! instead of holding a global ticket vector. The coordinating thread
//! opens and prefetches each spill *the moment its shard completes*, so
//! spill verification and first-chunk decode overlap the shards still
//! simulating; once the last shard lands, a k-way merge replays the
//! spills in global order, assigns ticket ids, and computes the trace
//! digest as a stream. Peak memory is bounded by `fleet metadata +
//! in-flight shards' tickets + one merge chunk per shard` regardless of
//! fleet size.
//!
//! Because per-server RNG streams are seeded from `(seed, server id)`
//! alone and the global phase runs once over the full fleet, the merged
//! stream is **byte-identical** to an unsharded run at any shard count,
//! worker count, and thread count — shards are simulated in whatever
//! order workers pick them up, but the merge re-serializes them by key.
//! `SCALING.md` documents the argument, and `tests/engine_identity.rs`
//! gates it in CI.
//!
//! Phases recorded on the run's registry: one `engine.total` wall-clock
//! span (from fleet build to merge end), one `engine.shard.simulate` and
//! `engine.shard.spill` span per shard (detached, recorded from worker
//! threads), one `engine.shard.open` span per spill, one
//! `engine.shard.merge` span, plus the `engine.shards` and
//! `engine.shard_workers` gauges, the `shard.bytes_spilled` counter, and
//! the `mem.peak_rss_bytes` gauge ([`dcf_obs::BenchSummary`] picks all of
//! them up).

use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc;

use dcf_failmodel::types::detail_str;
use dcf_fleet::{Fleet, FleetBuilder};
use dcf_fms::{FmsMetrics, TicketFactory};
use dcf_obs::MetricsRegistry;
use dcf_trace::io::spill::{
    merge_cursors, ShardSpillReader, ShardSpillWriter, SpillCodec, SpillCursor, SpillRecord,
};
use dcf_trace::io::{DigestRow, FotsDigester};
use dcf_trace::{columns::category_tag, Fot, Trace, TraceError};

use crate::config::SimConfig;
use crate::engine::{
    make_fot_from_spec, merge_sorted_specs, per_server_specs, publish_server_counts,
    resolve_engine_threads, run_global_phase, trace_info, ServerCounts,
};
use crate::error::SimError;
use crate::options::RunOptions;

/// A partition of `n_servers` contiguous server ids into `shards`
/// near-equal half-open ranges. The first `n_servers % shards` ranges get
/// one extra server, so sizes differ by at most one.
///
/// The plan keys shards by server-id range (not by hash) so each shard's
/// direct-occurrence lookups and fleet metadata accesses stay contiguous,
/// and so spill files carry a self-describing `server_lo..server_hi`.
///
/// # Examples
///
/// ```
/// use dcf_sim::ShardPlan;
///
/// let plan = ShardPlan::new(10, 3);
/// assert_eq!(plan.shards(), 3);
/// let ranges: Vec<_> = plan.ranges().collect();
/// assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
///
/// // Degenerate plans clamp: never more shards than servers, never zero.
/// assert_eq!(ShardPlan::new(2, 8).shards(), 2);
/// assert_eq!(ShardPlan::new(5, 0).shards(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    n_servers: u32,
    shards: u32,
}

impl ShardPlan {
    /// Plans `shards` ranges over `n_servers` servers. `shards` is clamped
    /// to `[1, max(1, n_servers)]`.
    pub fn new(n_servers: u32, shards: u32) -> Self {
        Self {
            n_servers,
            shards: shards.clamp(1, n_servers.max(1)),
        }
    }

    /// Number of shards in the plan.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Total servers covered.
    pub fn servers(&self) -> u32 {
        self.n_servers
    }

    /// The half-open server-id range of shard `shard` (< [`Self::shards`]).
    pub fn range(&self, shard: u32) -> Range<u32> {
        assert!(shard < self.shards, "shard {shard} out of {}", self.shards);
        let base = self.n_servers / self.shards;
        let extra = self.n_servers % self.shards;
        // Shards [0, extra) are (base + 1) wide, the rest are base wide.
        let lo = shard * base + shard.min(extra);
        let width = base + u32::from(shard < extra);
        lo..lo + width
    }

    /// All ranges, in shard order; adjacent ranges abut and the union is
    /// `0..n_servers`.
    pub fn ranges(&self) -> impl Iterator<Item = Range<u32>> + '_ {
        (0..self.shards).map(|s| self.range(s))
    }
}

/// What a sharded run produces: streamed aggregates, never a materialized
/// trace (for an assembled, byte-identical trace run [`crate::simulate`]
/// with [`RunOptions::shards`] ≥ 2).
#[derive(Debug)]
#[non_exhaustive]
pub struct ShardedRun {
    /// [`dcf_trace::io::fots_digest`] of the merged ticket stream —
    /// byte-identical to an unsharded run of the same `(config, seed)`.
    pub digest: u64,
    /// Total tickets issued.
    pub tickets: u64,
    /// Tickets per category, in `[fixing, error, false_alarm]` order
    /// (matches [`Trace::category_counts`]).
    pub category_counts: [u64; 3],
    /// Shards actually run (after clamping to the fleet size).
    pub shards: u32,
    /// Bytes written across all spill files.
    pub bytes_spilled: u64,
}

/// Runs the simulation sharded and **streams** the merged ticket sequence
/// straight into the digest and tallies, without ever materializing a
/// ticket vector — how multi-million-server fleets fit in bounded memory.
/// The shard knobs ([`RunOptions::shards`], [`RunOptions::shard_workers`],
/// spill codec/dir) all come from `options`; `shards` ≤ 1 still runs the
/// sharded driver with a single shard.
///
/// For a materialized trace use [`crate::simulate`], which routes through
/// this same driver when `options.shards` ≥ 2 and assembles the merge —
/// the sharded driver is a pure execution strategy, never a different
/// simulation.
///
/// # Examples
///
/// ```
/// use dcf_sim::{simulate, simulate_sharded, RunOptions, Scenario};
/// use dcf_trace::io::fots_digest;
///
/// let scenario = Scenario::small().seed(9);
/// let unsharded = simulate(&scenario.config, &RunOptions::default()).unwrap();
/// let sharded = simulate_sharded(&scenario.config, &RunOptions::new().shards(4)).unwrap();
/// assert_eq!(sharded.digest, fots_digest(unsharded.fots()));
/// assert_eq!(sharded.tickets, unsharded.len() as u64);
/// ```
///
/// # Errors
///
/// [`SimError::Fleet`] for invalid fleet configurations, [`SimError::Trace`]
/// for spill IO failures.
pub fn simulate_sharded(config: &SimConfig, options: &RunOptions) -> Result<ShardedRun, SimError> {
    sharded_run(config, options, false).map(|(run, _)| run)
}

/// [`simulate_sharded`] on an already-built fleet.
///
/// # Errors
///
/// Same contract as [`simulate_sharded`].
pub fn simulate_sharded_on_fleet(
    config: &SimConfig,
    fleet: &Fleet,
    options: &RunOptions,
) -> Result<ShardedRun, SimError> {
    sharded_run_on_fleet(config, fleet, options, false).map(|(run, _)| run)
}

/// The sharded driver proper: builds the fleet, then
/// [`sharded_run_on_fleet`]. `materialize` asks for an assembled [`Trace`]
/// alongside the streamed aggregates.
pub(crate) fn sharded_run(
    config: &SimConfig,
    options: &RunOptions,
    materialize: bool,
) -> Result<(ShardedRun, Option<Trace>), SimError> {
    let metrics = &options.metrics;
    // Wall-clock for the whole run: with concurrent shard workers the
    // per-phase spans overlap and their sum exceeds elapsed time, so
    // benchmarks read this span for throughput.
    let total_span = metrics.phase("engine.total");
    let span = metrics.phase("engine.fleet_build");
    let fleet = FleetBuilder::new(config.fleet.clone())
        .seed(config.seed)
        .metrics(metrics.clone())
        .build()?;
    drop(span);
    let run = sharded_run_on_fleet(config, &fleet, options, materialize);
    drop(total_span);
    run
}

/// [`sharded_run`] on an already-built fleet.
pub(crate) fn sharded_run_on_fleet(
    config: &SimConfig,
    fleet: &Fleet,
    options: &RunOptions,
    materialize: bool,
) -> Result<(ShardedRun, Option<Trace>), SimError> {
    match options.threads {
        Some(threads) if threads != config.engine_threads => {
            let mut config = config.clone();
            config.engine_threads = threads;
            sharded_engine(&config, fleet, options, materialize)
        }
        _ => sharded_engine(config, fleet, options, materialize),
    }
}

/// How many shard workers a request resolves to: `0` asks for the
/// machine's available parallelism (capped at 16, like engine threads);
/// everything is clamped to the shard count so idle workers never spawn.
fn resolve_shard_workers(requested: u32, shards: u32) -> u32 {
    let cap = shards.max(1);
    if requested == 0 {
        let auto = std::thread::available_parallelism().map_or(1, |n| n.get() as u32);
        auto.clamp(1, cap.min(16))
    } else {
        requested.clamp(1, cap)
    }
}

/// What one worker hands back per finished shard.
struct ShardDone {
    path: PathBuf,
    counts: ServerCounts,
    bytes: u64,
}

/// Simulates one shard and spills it: the unit of work a pool worker
/// loops over. Spans are detached so any number of workers can record
/// them concurrently.
#[allow(clippy::too_many_arguments)]
fn run_one_shard(
    config: &SimConfig,
    fleet: &Fleet,
    global: &crate::engine::GlobalPhase,
    plan: &ShardPlan,
    shard: u32,
    spill_dir: &Path,
    threads: usize,
    codec: SpillCodec,
    metrics: &MetricsRegistry,
) -> Result<ShardDone, SimError> {
    let range = plan.range(shard);
    let sim_span = metrics.worker_phase("engine.shard.simulate");
    let servers = &fleet.servers()[range.start as usize..range.end as usize];
    let (spec_chunks, counts) = per_server_specs(config, fleet, global, servers, threads);
    drop(sim_span);

    let spill_span = metrics.worker_phase("engine.shard.spill");
    let path = spill_dir.join(format!("shard-{shard:04}.dcfspill"));
    let mut writer =
        ShardSpillWriter::new(&path, shard, plan.shards(), range.start, range.end, codec);
    // Same merge discipline as unsharded assembly: the spill file holds
    // this shard's records in final global order.
    merge_sorted_specs(spec_chunks, |s| {
        writer.push(&SpillRecord {
            server: s.server,
            class: s.class,
            slot: s.slot,
            ftype: s.ftype,
            error_time: s.error_time,
            category: s.category,
            response: s.response,
        });
    });
    let bytes = writer.finish().map_err(SimError::Trace)?;
    drop(spill_span);
    Ok(ShardDone {
        path,
        counts,
        bytes,
    })
}

fn sharded_engine(
    config: &SimConfig,
    fleet: &Fleet,
    options: &RunOptions,
    materialize: bool,
) -> Result<(ShardedRun, Option<Trace>), SimError> {
    let metrics = &options.metrics;
    let fms = FmsMetrics::from_registry(metrics);
    let n_threads = resolve_engine_threads(config.engine_threads);
    let plan = ShardPlan::new(fleet.servers().len() as u32, options.shards);
    let workers = resolve_shard_workers(options.shard_workers, plan.shards());
    // Split the engine's thread budget across concurrent workers so the
    // total stays near n_threads whatever the worker count.
    let threads_per_worker = (n_threads / workers as usize).max(1);
    metrics.set_gauge("engine.threads", n_threads as f64);
    metrics.set_gauge("engine.shards", plan.shards() as f64);
    metrics.set_gauge("engine.shard_workers", workers as f64);

    // Global phase runs ONCE over the full fleet, exactly as unsharded:
    // batch/sync scheduling consumes one RNG stream whose draws must not
    // depend on the shard count.
    let global = run_global_phase(config, fleet, metrics);

    let spill_dir = match &options.spill_dir {
        Some(dir) => dir.clone(),
        None => std::env::temp_dir().join(format!("dcf-spill-{}", std::process::id())),
    };
    std::fs::create_dir_all(&spill_dir).map_err(|e| SimError::Trace(TraceError::from(e)))?;

    // -------- Pipelined per-shard simulate + spill --------
    //
    // Workers drain a shared shard counter; the coordinating thread
    // receives completions in whatever order they land and immediately
    // opens + prefetches each spill, overlapping verification and the
    // first chunk's decode with the shards still simulating. Tally
    // merging is commutative, and the k-way merge re-orders by key, so
    // completion order never reaches the output.
    let codec = options.spill_codec;
    let next_shard = AtomicU32::new(0);
    let abort = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<Result<ShardDone, SimError>>();
    let pooled: Result<(Vec<SpillCursor>, ServerCounts, u64, Vec<PathBuf>), SimError> =
        crossbeam::thread::scope(|scope| {
            let (next_shard, abort) = (&next_shard, &abort);
            for _ in 0..workers {
                let tx = tx.clone();
                let (global, plan, spill_dir) = (&global, &plan, &spill_dir);
                scope.spawn(move |_| loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let shard = next_shard.fetch_add(1, Ordering::Relaxed);
                    if shard >= plan.shards() {
                        break;
                    }
                    let res = run_one_shard(
                        config,
                        fleet,
                        global,
                        plan,
                        shard,
                        spill_dir,
                        threads_per_worker,
                        codec,
                        metrics,
                    );
                    let failed = res.is_err();
                    if tx.send(res).is_err() || failed {
                        break;
                    }
                });
            }
            drop(tx);

            let mut cursors = Vec::with_capacity(plan.shards() as usize);
            let mut counts = ServerCounts::default();
            let mut bytes_spilled = 0u64;
            let mut paths = Vec::with_capacity(plan.shards() as usize);
            let mut first_err: Option<SimError> = None;
            for msg in rx {
                match msg {
                    Ok(done) => {
                        counts.merge(&done.counts);
                        bytes_spilled += done.bytes;
                        let open_span = metrics.worker_phase("engine.shard.open");
                        let opened = ShardSpillReader::open(&done.path)
                            .map(SpillCursor::new)
                            .and_then(|mut c| c.prefetch().map(|()| c));
                        drop(open_span);
                        paths.push(done.path);
                        match opened {
                            Ok(c) => cursors.push(c),
                            Err(e) => {
                                abort.store(true, Ordering::Relaxed);
                                first_err.get_or_insert(SimError::Trace(e));
                            }
                        }
                    }
                    Err(e) => {
                        abort.store(true, Ordering::Relaxed);
                        first_err.get_or_insert(e);
                    }
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok((cursors, counts, bytes_spilled, paths)),
            }
        })
        .expect("shard worker panicked");
    let (cursors, counts, bytes_spilled, paths) = pooled?;
    publish_server_counts(metrics, &fms, &counts);
    metrics.add("shard.bytes_spilled", bytes_spilled);

    // -------- Streaming merge --------
    let merge_span = metrics.phase("engine.shard.merge");
    let mut factory = TicketFactory::new();
    let mut digester = FotsDigester::new();
    let mut category_counts = [0u64; 3];
    let mut fots: Option<Vec<Fot>> = materialize.then(Vec::new);
    let total = if let Some(v) = {
        // Split borrows: the closure captures `v` while `factory` and
        // `digester` stay separately borrowed.
        fots.as_mut()
    } {
        merge_cursors(cursors, |r| {
            let spec = crate::engine::TicketSpec {
                server: r.server,
                class: r.class,
                slot: r.slot,
                ftype: r.ftype,
                error_time: r.error_time,
                category: r.category,
                response: r.response,
            };
            let fot = make_fot_from_spec(&mut factory, fleet, &spec);
            digester.push(&fot);
            category_counts[category_tag(fot.category) as usize] += 1;
            v.push(fot);
        })
        .map_err(SimError::Trace)?
    } else {
        // Digest-only fast path: ids are consecutive and every
        // fleet-derived field comes straight from server metadata, so the
        // digest row is built without assembling a `Fot` (no detail
        // `String` per ticket). `digest_only_path_matches_fot_path`
        // pins the equivalence.
        //
        // Merge order is time order, so server lookups are random across
        // the fleet; a 6-byte-per-server side table keeps each lookup to
        // one warm cache line instead of a ~100-byte `ServerMeta`.
        let packed: Vec<(u16, u16, u8)> = fleet
            .servers()
            .iter()
            .map(|s| (s.data_center.raw(), s.product_line.raw(), s.position.raw()))
            .collect();
        let mut next_id = 0u64;
        merge_cursors(cursors, |r| {
            let (dc, line, pos) = packed[r.server.raw() as usize];
            digester.push_row(&DigestRow {
                id: next_id,
                server: r.server.raw(),
                data_center: dc,
                product_line: line,
                device: r.class,
                device_slot: r.slot,
                failure_type: r.ftype,
                error_secs: r.error_time.as_secs(),
                rack_position: pos,
                category: r.category,
                response: r
                    .response
                    .map(|resp| (resp.op_time.as_secs(), resp.operator.raw(), resp.action)),
                detail: detail_str(r.ftype),
            });
            next_id += 1;
            category_counts[category_tag(r.category) as usize] += 1;
        })
        .map_err(SimError::Trace)?
    };
    metrics.add("sim.tickets.total", total);
    fms.tickets_issued.add(total);
    drop(merge_span);

    if !options.keep_spills {
        for p in &paths {
            std::fs::remove_file(p).ok();
        }
        if options.spill_dir.is_none() {
            std::fs::remove_dir(&spill_dir).ok();
        }
    }
    if let Some(peak) = dcf_obs::peak_rss_bytes() {
        metrics.set_gauge("mem.peak_rss_bytes", peak as f64);
    }

    let trace = match fots {
        Some(fots) => {
            let (servers, dcs, lines) = fleet.snapshot();
            Some(
                Trace::new(trace_info(config, global.start), servers, dcs, lines, fots)
                    .map_err(SimError::Trace)?,
            )
        }
        None => None,
    };
    Ok((
        ShardedRun {
            digest: digester.digest(),
            tickets: total,
            category_counts,
            shards: plan.shards(),
            bytes_spilled,
        },
        trace,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;
    use dcf_trace::io::fots_digest;

    #[test]
    fn plan_partitions_without_gaps_or_overlap() {
        for (n, k) in [(0u32, 3u32), (1, 1), (7, 3), (100, 7), (16, 16), (5, 9)] {
            let plan = ShardPlan::new(n, k);
            let mut next = 0u32;
            let mut sizes = Vec::new();
            for r in plan.ranges() {
                assert_eq!(r.start, next, "ranges must abut ({n}, {k})");
                // Clamping guarantees non-empty shards on non-empty fleets.
                assert!(n == 0 || r.end > r.start, "empty shard range ({n}, {k})");
                sizes.push(r.end - r.start);
                next = r.end;
            }
            assert_eq!(next, n, "union must cover all servers");
            let (min, max) = (sizes.iter().min(), sizes.iter().max());
            if let (Some(min), Some(max)) = (min, max) {
                assert!(max - min <= 1, "sizes differ by more than one: {sizes:?}");
            }
        }
    }

    #[test]
    fn sharded_digest_matches_unsharded_trace() {
        let scenario = Scenario::small().seed(21);
        let unsharded = crate::simulate(&scenario.config, &RunOptions::default()).unwrap();
        let expect = fots_digest(unsharded.fots());
        for shards in [1u32, 3] {
            let run =
                simulate_sharded(&scenario.config, &RunOptions::new().shards(shards)).unwrap();
            assert_eq!(run.digest, expect, "{shards} shards");
            assert_eq!(run.tickets, unsharded.len() as u64);
            assert_eq!(
                run.category_counts,
                unsharded.category_counts().map(|c| c as u64)
            );
            assert!(run.bytes_spilled > 0);
        }
    }

    #[test]
    fn sharded_simulate_is_byte_identical() {
        let scenario = Scenario::small().seed(5);
        let unsharded = crate::simulate(&scenario.config, &RunOptions::default()).unwrap();
        let trace = crate::simulate(&scenario.config, &RunOptions::new().shards(4)).unwrap();
        assert_eq!(trace.fots(), unsharded.fots());
        assert_eq!(trace.info(), unsharded.info());
    }

    #[test]
    fn sharded_run_records_shard_metrics() {
        let registry = dcf_obs::MetricsRegistry::new();
        let scenario = Scenario::small().seed(2);
        let run = simulate_sharded(
            &scenario.config,
            &RunOptions::new().metrics(&registry).shards(2),
        )
        .unwrap();
        let report = registry.report("shard-test");
        assert_eq!(report.gauge("engine.shards"), Some(2.0));
        assert_eq!(
            report.counter("shard.bytes_spilled"),
            Some(run.bytes_spilled)
        );
        assert_eq!(report.counter("sim.tickets.total"), Some(run.tickets));
        for phase in [
            "engine.fleet_build",
            "engine.global",
            "engine.shard.simulate",
            "engine.shard.spill",
            "engine.shard.merge",
        ] {
            assert!(report.phase_ms(phase).is_some(), "missing span {phase}");
        }
        // One simulate span per shard.
        let simulate_spans = report
            .phases
            .iter()
            .filter(|p| p.name == "engine.shard.simulate")
            .count();
        assert_eq!(simulate_spans, 2);
        #[cfg(target_os = "linux")]
        assert!(report.gauge("mem.peak_rss_bytes").unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn keep_spills_leaves_verifiable_files() {
        let dir = std::env::temp_dir().join(format!("dcf-shard-keep-{}", std::process::id()));
        let scenario = Scenario::small().seed(13);
        let run = simulate_sharded(
            &scenario.config,
            &RunOptions::new()
                .shards(2)
                .spill_dir(&dir)
                .keep_spills(true),
        )
        .unwrap();
        let mut rows = 0;
        for shard in 0..2 {
            let reader = dcf_trace::io::spill::ShardSpillReader::open(
                dir.join(format!("shard-{shard:04}.dcfspill")),
            )
            .unwrap();
            assert_eq!(reader.shard_count(), 2);
            rows += reader.rows();
        }
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(rows, run.tickets);
    }
}
