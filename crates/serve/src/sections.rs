//! Renders [`StudyReport`] slices into the six `/report/{section}` JSON
//! bodies. Rendering is pure string assembly over already-computed report
//! fields, so cached bodies can be reused verbatim.

use dcf_core::StudyReport;
use dcf_obs::json::{write_f64, write_string};

/// The section names `/report/{section}` accepts, in document order.
pub const SECTIONS: &[&str] = &[
    "overview",
    "temporal",
    "skew",
    "spatial",
    "correlation",
    "response",
];

/// Incremental JSON-object writer over the `dcf-obs` JSON primitives.
#[derive(Debug)]
pub(crate) struct Obj {
    out: String,
    first: bool,
}

impl Obj {
    pub(crate) fn new() -> Self {
        Self {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_string(&mut self.out, key);
        self.out.push(':');
    }

    pub(crate) fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        write_string(&mut self.out, value);
        self
    }

    pub(crate) fn uint(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.out.push_str(&value.to_string());
        self
    }

    pub(crate) fn float(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        write_f64(&mut self.out, value);
        self
    }

    pub(crate) fn opt_float(&mut self, key: &str, value: Option<f64>) -> &mut Self {
        self.key(key);
        match value {
            Some(v) => write_f64(&mut self.out, v),
            None => self.out.push_str("null"),
        }
        self
    }

    pub(crate) fn opt_bool(&mut self, key: &str, value: Option<bool>) -> &mut Self {
        self.key(key);
        self.out.push_str(match value {
            Some(true) => "true",
            Some(false) => "false",
            None => "null",
        });
        self
    }

    /// Inserts a pre-rendered JSON value verbatim.
    pub(crate) fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.out.push_str(json);
        self
    }

    pub(crate) fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

/// Identity fields stamped on every run-derived response body.
#[derive(Debug, Clone, Copy)]
pub struct RunIdentity<'a> {
    /// Scenario name.
    pub scenario: &'a str,
    /// RNG seed.
    pub seed: u64,
    /// Engine worker-thread override (`0` = engine default).
    pub threads: usize,
    /// Trace digest (16 hex digits).
    pub digest: &'a str,
}

fn identity(obj: &mut Obj, id: RunIdentity<'_>) {
    obj.str("scenario", id.scenario);
    obj.uint("seed", id.seed);
    obj.uint("threads", id.threads as u64);
    obj.str("digest", id.digest);
}

fn rt_stats_json(stats: &Option<dcf_core::response::RtStats>) -> String {
    match stats {
        None => "null".to_string(),
        Some(s) => {
            let mut obj = Obj::new();
            obj.uint("n", s.n as u64)
                .float("mean_days", s.mean_days)
                .float("median_days", s.median_days)
                .float("p90_days", s.p90_days)
                .float("over_140d", s.over_140d)
                .float("over_200d", s.over_200d);
            obj.finish()
        }
    }
}

/// Renders the named section of `report` to its JSON body, or `None` for
/// an unknown section name.
pub fn render(section: &str, id: RunIdentity<'_>, report: &StudyReport) -> Option<String> {
    if !SECTIONS.contains(&section) {
        return None;
    }
    let mut obj = Obj::new();
    obj.str("section", section);
    identity(&mut obj, id);
    match section {
        "overview" => {
            obj.uint("total_fots", report.total_fots as u64)
                .uint("total_failures", report.total_failures as u64)
                .float("fixing_share", report.fixing_share)
                .float("error_share", report.error_share)
                .float("false_alarm_share", report.false_alarm_share)
                .float("hdd_share", report.hdd_share)
                .opt_float("mtbf_minutes", report.mtbf_minutes);
            let mut shares = String::from("[");
            for (i, (class, share)) in report.component_shares.iter().enumerate() {
                if i > 0 {
                    shares.push(',');
                }
                let mut row = Obj::new();
                row.str("component", class.name()).float("share", *share);
                shares.push_str(&row.finish());
            }
            shares.push(']');
            obj.raw("component_shares", &shares);
        }
        "temporal" => {
            obj.opt_bool("day_of_week_rejected_001", report.day_of_week_rejected_001)
                .opt_bool("hour_of_day_rejected_001", report.hour_of_day_rejected_001)
                .opt_bool(
                    "tbf_all_families_rejected",
                    report.tbf_all_families_rejected,
                )
                .opt_float("mtbf_minutes", report.mtbf_minutes);
        }
        "skew" => {
            obj.uint("servers_ever_failed", report.servers_ever_failed as u64)
                .uint("max_fots_one_server", u64::from(report.max_fots_one_server))
                .float("top_2pct_failure_share", report.top_2pct_failure_share)
                .float("never_repeat_share", report.never_repeat_share)
                .float("repeat_server_share", report.repeat_server_share);
        }
        "spatial" => {
            let mut table = Obj::new();
            table
                .uint("rejected_001", report.table_iv.rejected_001 as u64)
                .uint("borderline", report.table_iv.borderline as u64)
                .uint("accepted", report.table_iv.accepted as u64)
                .uint("skipped", report.table_iv.skipped as u64);
            obj.raw("table_iv", &table.finish());
        }
        "correlation" => {
            obj.float("pair_server_share", report.pair_server_share)
                .float("misc_involved_share", report.misc_involved_share)
                .float("repeat_server_share", report.repeat_server_share);
        }
        "response" => {
            obj.raw("rt_fixing", &rt_stats_json(&report.rt_fixing))
                .raw("rt_false_alarm", &rt_stats_json(&report.rt_false_alarm));
        }
        _ => unreachable!("section membership checked above"),
    }
    Some(obj.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcf_core::{FailureStudy, StudyOptions};
    use dcf_sim::{RunOptions, Scenario};

    #[test]
    fn every_section_renders_parsable_json() {
        let trace = Scenario::small()
            .seed(11)
            .simulate(&RunOptions::default())
            .expect("small scenario simulates");
        let report = FailureStudy::new(&trace).analyze(&StudyOptions::default());
        let id = RunIdentity {
            scenario: "small",
            seed: 11,
            threads: 0,
            digest: "00112233aabbccdd",
        };
        for &section in SECTIONS {
            let body = render(section, id, &report).expect("known section renders");
            let value = dcf_obs::json::parse(&body)
                .unwrap_or_else(|e| panic!("section {section} produced invalid JSON: {e}"));
            assert_eq!(value.get("section").and_then(|v| v.as_str()), Some(section));
            assert_eq!(value.get("seed").and_then(|v| v.as_u64()), Some(11));
            assert_eq!(
                value.get("digest").and_then(|v| v.as_str()),
                Some("00112233aabbccdd")
            );
        }
        assert!(render("nope", id, &report).is_none());
    }

    #[test]
    fn overview_carries_component_share_rows() {
        let trace = Scenario::small()
            .seed(2)
            .simulate(&RunOptions::default())
            .unwrap();
        let report = FailureStudy::new(&trace).analyze(&StudyOptions::default());
        let id = RunIdentity {
            scenario: "small",
            seed: 2,
            threads: 0,
            digest: "0",
        };
        let body = render("overview", id, &report).unwrap();
        let value = dcf_obs::json::parse(&body).unwrap();
        let shares = value
            .get("component_shares")
            .and_then(|v| v.as_array())
            .expect("component_shares is an array");
        assert_eq!(shares.len(), report.component_shares.len());
        assert!(shares
            .iter()
            .all(|row| row.get("component").is_some() && row.get("share").is_some()));
    }
}
