//! The snapshot catalog: a directory of `.dcfsnap` files served by name.
//!
//! `reproduce serve --catalog DIR` scans `DIR` at startup: every
//! `name.dcfsnap` file is loaded through a read-only `mmap`
//! ([`crate::mmap`]) — the decoder reads straight over the page cache,
//! with no intermediate heap copy of the file — decoded into a columnar
//! trace, digest-checked, and pinned in the response cache under the
//! scenario name `name` and its trace digest. From then on every request
//! for that snapshot (`/report/{section}?scenario=name`,
//! `/trace/{digest}/fots`) renders off the one shared, already-decoded
//! column store: the file is never re-read and the trace never copied
//! per request or per connection.
//!
//! The catalog is live: dropping a new `.dcfsnap` into the directory and
//! sending the server SIGHUP — or `POST /catalog/reload` — picks it up
//! without a restart; files removed from the directory are unpinned on
//! the same pass. Entries are keyed by file stem, and a published
//! snapshot file is treated as immutable (replace by adding a new name,
//! not rewriting bytes in place — the mapping's pages are shared with the
//! page cache). `GET /v1/catalog` lists what is currently served.
//!
//! The legacy single-file `--snapshot PATH` flag is now sugar for a
//! one-entry catalog whose entry is named `snapshot`, which keeps every
//! pre-catalog client working unchanged.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use dcf_obs::MetricsRegistry;

use crate::cache::{ResponseCache, RunArtifacts, RunEntry};
use crate::mmap;
use crate::sections::Obj;

/// File extension a catalog entry must carry.
pub const SNAPSHOT_EXT: &str = "dcfsnap";

/// One loaded catalog entry's public identity (for `/catalog` listings).
#[derive(Debug, Clone)]
pub struct CatalogEntryInfo {
    /// Scenario name the entry is served under (the file stem).
    pub name: String,
    /// 16-hex FNV-1a trace digest (also its `/trace/{digest}` address).
    pub digest: String,
    /// Number of failure-occurrence tickets in the trace.
    pub fots: u64,
    /// On-disk snapshot size in bytes.
    pub bytes: u64,
}

/// Outcome of a catalog rescan (SIGHUP or `POST /catalog/reload`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReloadSummary {
    /// Entries newly loaded on this pass.
    pub added: usize,
    /// Entries dropped because their file disappeared.
    pub removed: usize,
    /// Entries served after the pass.
    pub total: usize,
}

struct Slot {
    entry: Arc<RunEntry>,
    info: CatalogEntryInfo,
}

/// The set of pinned, name-addressed snapshot entries.
///
/// Thread-safe: the worker pool resolves names while a reload (driven
/// from the supervisor thread on SIGHUP, or from a worker on
/// `POST /catalog/reload`) mutates the set under the same lock.
pub struct Catalog {
    /// Scan root; `None` for a legacy single-file catalog, which cannot
    /// be reloaded.
    dir: Option<PathBuf>,
    metrics: MetricsRegistry,
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("dir", &self.dir)
            .field("entries", &self.len())
            .finish()
    }
}

impl Catalog {
    /// Opens a catalog over `dir`, loading and pinning every `.dcfsnap`
    /// file found.
    ///
    /// # Errors
    ///
    /// Startup is strict: an unreadable directory or any corrupt snapshot
    /// fails the whole open, so a bad deploy is caught before the server
    /// binds.
    pub fn open(
        dir: &str,
        cache: &ResponseCache,
        metrics: &MetricsRegistry,
    ) -> io::Result<Catalog> {
        let catalog = Catalog {
            dir: Some(PathBuf::from(dir)),
            metrics: metrics.clone(),
            slots: Mutex::new(BTreeMap::new()),
        };
        let summary = catalog.reload(cache)?;
        debug_assert_eq!(summary.removed, 0);
        Ok(catalog)
    }

    /// Opens a legacy single-file catalog: `path` is loaded and served
    /// under the fixed name `snapshot`. Reload is not available.
    ///
    /// # Errors
    ///
    /// Propagates open/decode failures for the snapshot file.
    pub fn open_single(
        path: &str,
        cache: &ResponseCache,
        metrics: &MetricsRegistry,
    ) -> io::Result<Catalog> {
        let catalog = Catalog {
            dir: None,
            metrics: metrics.clone(),
            slots: Mutex::new(BTreeMap::new()),
        };
        let slot = catalog.load_slot("snapshot", Path::new(path), cache)?;
        catalog
            .slots
            .lock()
            .expect("catalog poisoned")
            .insert("snapshot".to_string(), slot);
        Ok(catalog)
    }

    /// Rescans the catalog directory: loads snapshots whose name is new,
    /// unpins entries whose file disappeared. Existing names are left
    /// untouched (snapshot files are immutable once published).
    ///
    /// # Errors
    ///
    /// Fails on an unreadable directory or a corrupt new snapshot;
    /// entries already applied on this pass stay applied. A single-file
    /// catalog (`--snapshot`) reports `Unsupported`.
    pub fn reload(&self, cache: &ResponseCache) -> io::Result<ReloadSummary> {
        let Some(dir) = &self.dir else {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "catalog reload needs --catalog DIR (a --snapshot file is fixed for the process lifetime)",
            ));
        };
        let mut on_disk = BTreeMap::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let is_snap = path.extension().and_then(|e| e.to_str()) == Some(SNAPSHOT_EXT);
            if !is_snap || !path.is_file() {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            on_disk.insert(stem.to_string(), path.clone());
        }

        let mut added = 0usize;
        let mut removed = 0usize;
        // Load outside the lock (decoding is slow); apply under it.
        let current: Vec<String> = {
            let slots = self.slots.lock().expect("catalog poisoned");
            slots.keys().cloned().collect()
        };
        for name in &current {
            if !on_disk.contains_key(name) {
                let mut slots = self.slots.lock().expect("catalog poisoned");
                if let Some(slot) = slots.remove(name) {
                    cache.unpin(&slot.info.digest);
                    removed += 1;
                }
            }
        }
        for (name, path) in &on_disk {
            if current.contains(name) {
                continue;
            }
            let slot = self.load_slot(name, path, cache)?;
            self.slots
                .lock()
                .expect("catalog poisoned")
                .insert(name.clone(), slot);
            added += 1;
        }
        let total = self.len();
        self.metrics
            .set_gauge("serve.catalog.entries", total as f64);
        Ok(ReloadSummary {
            added,
            removed,
            total,
        })
    }

    /// Maps, decodes, digests, and pins one snapshot file.
    fn load_slot(&self, name: &str, path: &Path, cache: &ResponseCache) -> io::Result<Slot> {
        let span = self.metrics.phase("trace.snapshot_load");
        let path_str = path.to_string_lossy();
        let mapped = mmap::map_file(&path_str)?;
        let trace = dcf_trace::io::snapshot::snapshot_from_bytes(mapped.bytes())
            .map_err(|e| io::Error::other(format!("snapshot {path_str}: {e}")))?;
        let bytes = mapped.len() as u64;
        drop(mapped); // decoded columns own their storage; unmap the file
        drop(span);
        let artifacts = Arc::new(RunArtifacts::new(trace));
        let info = CatalogEntryInfo {
            name: name.to_string(),
            digest: artifacts.digest.clone(),
            fots: artifacts.trace.len() as u64,
            bytes,
        };
        let entry = Arc::new(RunEntry::preloaded(name, Arc::clone(&artifacts)));
        cache.pin(&info.digest, Arc::clone(&entry));
        self.metrics.add("serve.catalog.bytes_loaded", bytes);
        Ok(Slot { entry, info })
    }

    /// Resolves a scenario name to its pinned entry.
    pub fn get(&self, name: &str) -> Option<Arc<RunEntry>> {
        self.slots
            .lock()
            .expect("catalog poisoned")
            .get(name)
            .map(|slot| Arc::clone(&slot.entry))
    }

    /// Identities of every served entry, name-sorted.
    pub fn entries(&self) -> Vec<CatalogEntryInfo> {
        self.slots
            .lock()
            .expect("catalog poisoned")
            .values()
            .map(|slot| slot.info.clone())
            .collect()
    }

    /// Number of served entries.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("catalog poisoned").len()
    }

    /// Whether the catalog currently serves nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the `/catalog` listing body.
    pub fn render_listing(&self) -> String {
        let entries = self.entries();
        let mut body = String::from("{\"entries\":[");
        for (i, info) in entries.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let mut obj = Obj::new();
            obj.str("name", &info.name)
                .str("digest", &info.digest)
                .uint("total_fots", info.fots)
                .uint("snapshot_bytes", info.bytes);
            body.push_str(&obj.finish());
        }
        body.push_str("],\"total\":");
        body.push_str(&entries.len().to_string());
        body.push('}');
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_bytes() -> Vec<u8> {
        let trace = dcf_sim::Scenario::small()
            .seed(11)
            .simulate(&dcf_sim::RunOptions::new())
            .expect("small scenario simulates");
        dcf_trace::io::snapshot::snapshot_to_bytes(&trace)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dcf-catalog-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn scans_loads_and_reloads_a_directory() {
        let dir = temp_dir("scan");
        let bytes = snapshot_bytes();
        std::fs::write(dir.join("alpha.dcfsnap"), &bytes).unwrap();
        std::fs::write(dir.join("ignored.txt"), b"not a snapshot").unwrap();

        let cache = ResponseCache::new(4);
        let metrics = MetricsRegistry::disabled();
        let catalog = Catalog::open(dir.to_str().unwrap(), &cache, &metrics).expect("open");
        assert_eq!(catalog.len(), 1);
        let entry = catalog.get("alpha").expect("alpha served");
        let digest = catalog.entries()[0].digest.clone();
        assert!(cache.lookup_digest(&digest).is_some(), "digest pinned");
        assert!(Arc::ptr_eq(&entry, &cache.lookup_digest(&digest).unwrap()));

        // New file appears → reload picks it up; removed file unpins.
        std::fs::write(dir.join("beta.dcfsnap"), &bytes).unwrap();
        std::fs::remove_file(dir.join("alpha.dcfsnap")).unwrap();
        let summary = catalog.reload(&cache).expect("reload");
        assert_eq!((summary.added, summary.removed, summary.total), (1, 1, 1));
        assert!(catalog.get("alpha").is_none());
        assert!(catalog.get("beta").is_some());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_fails_open() {
        let dir = temp_dir("corrupt");
        std::fs::write(dir.join("bad.dcfsnap"), b"DCFSNAPX garbage").unwrap();
        let cache = ResponseCache::new(4);
        let metrics = MetricsRegistry::disabled();
        assert!(Catalog::open(dir.to_str().unwrap(), &cache, &metrics).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_file_catalog_serves_snapshot_name_and_rejects_reload() {
        let dir = temp_dir("single");
        let path = dir.join("trace.dcfsnap");
        std::fs::write(&path, snapshot_bytes()).unwrap();
        let cache = ResponseCache::new(4);
        let metrics = MetricsRegistry::disabled();
        let catalog =
            Catalog::open_single(path.to_str().unwrap(), &cache, &metrics).expect("open single");
        assert!(catalog.get("snapshot").is_some());
        let err = catalog.reload(&cache).expect_err("reload unsupported");
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
        std::fs::remove_dir_all(&dir).ok();
    }
}
