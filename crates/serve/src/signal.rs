//! Minimal signal plumbing over raw Linux syscalls.
//!
//! The workspace has no `libc`-style dependency, so the primitives the
//! serve binary needs — block a small signal set for the whole process,
//! then wait for one — are issued directly via `rt_sigprocmask(2)` and
//! `rt_sigtimedwait(2)`. Two signals matter to the server: SIGINT
//! triggers a graceful drain, and SIGHUP triggers a catalog rescan
//! (see [`crate::catalog`]). Supported on Linux x86_64/aarch64;
//! elsewhere the functions degrade to no-ops (`block_signals` reports
//! failure, so callers can fall back to running until killed).

/// Whether this build can actually block and wait for signals.
pub const SUPPORTED: bool = cfg!(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

/// A signal the serve binary reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// SIGINT: begin a graceful drain and exit.
    Interrupt,
    /// SIGHUP: rescan the snapshot catalog without restarting.
    Hangup,
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use std::arch::asm;

    const SIGHUP: usize = 1;
    const SIGINT: usize = 2;
    // Signal-mask bit for signal N is (N - 1).
    const SIGINT_MASK: u64 = 1 << (SIGINT - 1);
    const SIGHUP_MASK: u64 = 1 << (SIGHUP - 1);
    const SIG_BLOCK: usize = 0;
    // The kernel expects sigsetsize = 8 (64-bit mask) for rt_* signal calls.
    const SIGSET_BYTES: usize = 8;

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const RT_SIGACTION: usize = 13;
        pub const RT_SIGPROCMASK: usize = 14;
        pub const RT_SIGTIMEDWAIT: usize = 128;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const RT_SIGACTION: usize = 134;
        pub const RT_SIGPROCMASK: usize = 135;
        pub const RT_SIGTIMEDWAIT: usize = 137;
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall4(nr: usize, a: usize, b: usize, c: usize, d: usize) -> isize {
        let ret: isize;
        asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall4(nr: usize, a: usize, b: usize, c: usize, d: usize) -> isize {
        let ret: isize;
        asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            options(nostack),
        );
        ret
    }

    fn blockable_mask(with_hangup: bool) -> u64 {
        if with_hangup {
            SIGINT_MASK | SIGHUP_MASK
        } else {
            SIGINT_MASK
        }
    }

    pub fn block(with_hangup: bool) -> bool {
        // Reset each signal's disposition to SIG_DFL first. Non-interactive
        // shells (CI steps, `cmd &` in scripts) start background jobs with
        // SIGINT *ignored*, and the kernel discards an ignored signal even
        // while it is blocked — sigtimedwait would never see it. With the
        // default disposition a blocked signal stays pending instead. The
        // zeroed buffer covers both kernel sigaction layouts: x86_64
        // {handler, flags, restorer, mask} and aarch64 {handler, flags,
        // mask}; all-zero means SIG_DFL, no flags, empty mask.
        let act = [0u64; 4];
        let signals: &[usize] = if with_hangup {
            &[SIGINT, SIGHUP]
        } else {
            &[SIGINT]
        };
        for &sig in signals {
            unsafe {
                syscall4(
                    nr::RT_SIGACTION,
                    sig,
                    act.as_ptr() as usize,
                    0,
                    SIGSET_BYTES,
                )
            };
        }
        let mask: u64 = blockable_mask(with_hangup);
        let ret = unsafe {
            syscall4(
                nr::RT_SIGPROCMASK,
                SIG_BLOCK,
                std::ptr::addr_of!(mask) as usize,
                0,
                SIGSET_BYTES,
            )
        };
        ret == 0
    }

    pub fn wait(timeout_ms: u64, with_hangup: bool) -> Option<super::Signal> {
        let mask: u64 = blockable_mask(with_hangup);
        let ts = Timespec {
            tv_sec: (timeout_ms / 1000) as i64,
            tv_nsec: ((timeout_ms % 1000) * 1_000_000) as i64,
        };
        let ret = unsafe {
            syscall4(
                nr::RT_SIGTIMEDWAIT,
                std::ptr::addr_of!(mask) as usize,
                0, // no siginfo wanted
                std::ptr::addr_of!(ts) as usize,
                SIGSET_BYTES,
            )
        };
        match ret as usize {
            SIGINT => Some(super::Signal::Interrupt),
            SIGHUP => Some(super::Signal::Hangup),
            _ => None,
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    pub fn block(_with_hangup: bool) -> bool {
        false
    }

    pub fn wait(timeout_ms: u64, _with_hangup: bool) -> Option<super::Signal> {
        // Preserve the polling cadence so callers' loops behave the same.
        std::thread::sleep(std::time::Duration::from_millis(timeout_ms));
        None
    }
}

/// Blocks SIGINT for the calling thread (and, when called before spawning,
/// for every thread it later creates — masks are inherited). Returns
/// `false` if the platform has no supported implementation.
pub fn block_sigint() -> bool {
    imp::block(false)
}

/// Blocks SIGINT *and* SIGHUP — the serve binary's set: drain on
/// interrupt, catalog reload on hangup. Same inheritance rules as
/// [`block_sigint`]. Returns `false` on unsupported platforms.
pub fn block_signals() -> bool {
    imp::block(true)
}

/// Waits up to `timeout_ms` for a blocked SIGINT; `true` when one arrived.
/// On unsupported platforms this sleeps for the timeout and returns
/// `false`.
pub fn wait_sigint(timeout_ms: u64) -> bool {
    imp::wait(timeout_ms, false) == Some(Signal::Interrupt)
}

/// Waits up to `timeout_ms` for a blocked SIGINT or SIGHUP, reporting
/// which one arrived. On unsupported platforms this sleeps for the
/// timeout and returns `None`.
pub fn wait_signal(timeout_ms: u64) -> Option<Signal> {
    imp::wait(timeout_ms, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_times_out_without_a_signal() {
        // Regardless of platform support, an un-signalled wait must return
        // false after roughly the timeout.
        let start = std::time::Instant::now();
        assert!(!wait_sigint(30));
        assert!(start.elapsed() >= std::time::Duration::from_millis(20));
    }

    #[test]
    fn wait_signal_times_out_without_a_signal() {
        assert_eq!(wait_signal(10), None);
    }
}
