//! The response cache: one entry per `(scenario-hash, seed, engine_threads)`
//! run, LRU-bounded, with single-flight computation.
//!
//! Runs are pure functions of their key (see `dcf-sim`'s determinism
//! contract), so a cached artifact never goes stale — the only reason to
//! evict is memory. Each entry owns a `OnceLock`: the first request
//! computes while concurrent requests for the same key block on the lock
//! and then read the same artifact, so repeated queries never recompute
//! and cached section bodies are byte-identical by construction.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

use dcf_core::{FailureStudy, StudyOptions, StudyReport};
use dcf_sim::SimConfig;
use dcf_trace::Trace;

/// Cache key: scenario-hash (seed/threads zeroed out of the config),
/// seed, and the engine thread override.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-1a over the scenario config with `seed`/`engine_threads` zeroed.
    pub scenario_hash: u64,
    /// RNG seed of the run.
    pub seed: u64,
    /// Engine worker-thread override (`0` = engine default).
    pub threads: usize,
}

/// FNV-1a over arbitrary bytes — the same construction `dcf_trace::io`
/// uses for trace digests.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

/// Hashes a scenario config into the cache key's scenario component:
/// `seed` and `engine_threads` are zeroed first because they are separate
/// key fields (seed) or pure execution knobs (threads).
pub fn scenario_hash(config: &SimConfig) -> u64 {
    let mut config = config.clone();
    config.seed = 0;
    config.engine_threads = 0;
    fnv1a(format!("{config:?}").as_bytes())
}

/// The computed artifacts of one simulation run.
#[derive(Debug)]
pub struct RunArtifacts {
    /// The simulated trace.
    pub trace: Trace,
    /// 16-hex FNV-1a digest of the trace's CSV form.
    pub digest: String,
    report: OnceLock<StudyReport>,
    replay: OnceLock<Arc<dcf_core::replay::ReplayOutcome>>,
}

impl RunArtifacts {
    /// Wraps a freshly simulated trace.
    pub fn new(trace: Trace) -> Self {
        let digest = format!("{:016x}", dcf_trace::io::fots_digest(trace.fots()));
        Self {
            trace,
            digest,
            report: OnceLock::new(),
            replay: OnceLock::new(),
        }
    }

    /// The study report over the trace, computed once on first use
    /// (concurrent callers block on the same computation).
    pub fn report(&self, options: &StudyOptions) -> &StudyReport {
        self.report
            .get_or_init(|| FailureStudy::new(&self.trace).analyze(options))
    }

    /// The replay event stream over the trace (default detector config),
    /// built once on first use — every `/v1/replay` of the same run
    /// streams the same precomputed event sequence, so byte identity
    /// across speeds is structural.
    pub fn replay(
        &self,
        build: impl FnOnce() -> dcf_core::replay::ReplayOutcome,
    ) -> &Arc<dcf_core::replay::ReplayOutcome> {
        self.replay.get_or_init(|| Arc::new(build()))
    }
}

/// One cache slot: identity plus lazily computed artifacts.
#[derive(Debug)]
pub struct RunEntry {
    /// Scenario name (`small` / `medium` / `paper`).
    pub scenario: String,
    /// RNG seed.
    pub seed: u64,
    /// Engine worker-thread override (`0` = engine default).
    pub threads: usize,
    /// Single-flight simulation result: the trace and digest, or the
    /// simulation error message.
    pub run: OnceLock<Result<Arc<RunArtifacts>, String>>,
    /// Rendered section bodies, cached verbatim so every cache hit is
    /// byte-identical to the first computation.
    pub sections: Mutex<HashMap<&'static str, Arc<str>>>,
    /// Gzip-compressed renders of the same section bodies, cached on
    /// first `Accept-Encoding: gzip` request. The encoder is
    /// deterministic, so these too are byte-identical across hits (and
    /// across event loops sharing the entry).
    pub gzip_sections: Mutex<HashMap<&'static str, Arc<[u8]>>>,
}

impl RunEntry {
    fn new(scenario: &str, key: CacheKey) -> Self {
        Self {
            scenario: scenario.to_string(),
            seed: key.seed,
            threads: key.threads,
            run: OnceLock::new(),
            sections: Mutex::new(HashMap::new()),
            gzip_sections: Mutex::new(HashMap::new()),
        }
    }

    /// An entry whose artifacts are already computed — used for traces
    /// preloaded from a binary snapshot rather than simulated on demand.
    pub fn preloaded(scenario: &str, artifacts: Arc<RunArtifacts>) -> Self {
        let entry = Self::new(
            scenario,
            CacheKey {
                scenario_hash: fnv1a(artifacts.digest.as_bytes()),
                seed: 0,
                threads: 0,
            },
        );
        entry
            .run
            .set(Ok(artifacts))
            .expect("fresh entry is uninitialized");
        entry
    }
}

struct CacheInner {
    map: HashMap<CacheKey, Arc<RunEntry>>,
    /// Keys from least- to most-recently used.
    order: VecDeque<CacheKey>,
    by_digest: HashMap<String, CacheKey>,
    /// Digest-addressed entries outside the LRU (preloaded snapshots);
    /// never evicted.
    pinned: HashMap<String, Arc<RunEntry>>,
}

/// LRU cache of run entries plus a digest-addressed side index.
pub struct ResponseCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl std::fmt::Debug for ResponseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseCache")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl ResponseCache {
    /// Creates a cache bounded to `capacity` run entries (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                by_digest: HashMap::new(),
                pinned: HashMap::new(),
            }),
        }
    }

    /// Looks up or inserts the entry for `key`, refreshing its LRU slot.
    /// Inserting may evict the least-recently-used entry (in-flight users
    /// keep it alive through their `Arc`).
    pub fn entry(&self, scenario: &str, key: CacheKey) -> Arc<RunEntry> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if let Some(entry) = inner.map.get(&key).cloned() {
            inner.order.retain(|k| *k != key);
            inner.order.push_back(key);
            return entry;
        }
        let entry = Arc::new(RunEntry::new(scenario, key));
        inner.map.insert(key, Arc::clone(&entry));
        inner.order.push_back(key);
        while inner.map.len() > self.capacity {
            let Some(victim) = inner.order.pop_front() else {
                break;
            };
            if let Some(evicted) = inner.map.remove(&victim) {
                if let Some(Ok(artifacts)) = evicted.run.get() {
                    inner.by_digest.remove(&artifacts.digest);
                }
            }
        }
        entry
    }

    /// Registers a computed trace digest for `/trace/{digest}` lookups.
    pub fn register_digest(&self, digest: &str, key: CacheKey) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if inner.map.contains_key(&key) {
            inner.by_digest.insert(digest.to_string(), key);
        }
    }

    /// Pins a preloaded entry under its digest, outside the LRU budget.
    pub fn pin(&self, digest: &str, entry: Arc<RunEntry>) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.pinned.insert(digest.to_string(), entry);
    }

    /// Removes a pinned entry (catalog reload dropped its file). In-flight
    /// requests keep the entry alive through their `Arc`; only the
    /// digest address disappears.
    pub fn unpin(&self, digest: &str) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.pinned.remove(digest);
    }

    /// Resolves a digest to its cached run entry, refreshing the LRU slot.
    pub fn lookup_digest(&self, digest: &str) -> Option<Arc<RunEntry>> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if let Some(entry) = inner.pinned.get(digest) {
            return Some(Arc::clone(entry));
        }
        let key = *inner.by_digest.get(digest)?;
        let entry = inner.map.get(&key).cloned()?;
        inner.order.retain(|k| *k != key);
        inner.order.push_back(key);
        Some(entry)
    }

    /// Number of cached run entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> CacheKey {
        CacheKey {
            scenario_hash: 1,
            seed,
            threads: 0,
        }
    }

    #[test]
    fn entry_is_stable_for_a_key() {
        let cache = ResponseCache::new(4);
        let a = cache.entry("small", key(1));
        let b = cache.entry("small", key(1));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest_untouched_entry() {
        let cache = ResponseCache::new(2);
        let a = cache.entry("small", key(1));
        let _b = cache.entry("small", key(2));
        let _ = cache.entry("small", key(1)); // refresh 1 → 2 is now LRU
        let _c = cache.entry("small", key(3)); // evicts 2
        assert_eq!(cache.len(), 2);
        assert!(Arc::ptr_eq(&a, &cache.entry("small", key(1))));
        // Key 2 was evicted: a fresh entry object is created.
        let b2 = cache.entry("small", key(2));
        assert!(b2.run.get().is_none());
    }

    #[test]
    fn digest_lookup_follows_eviction() {
        let cache = ResponseCache::new(1);
        let k = key(5);
        let _e = cache.entry("small", k);
        cache.register_digest("00ff", k);
        assert!(cache.lookup_digest("00ff").is_some());
        let _ = cache.entry("small", key(6)); // evicts seed-5 entry
        assert!(cache.lookup_digest("00ff").is_none());
    }

    #[test]
    fn pinned_entries_ignore_lru_until_unpinned() {
        let cache = ResponseCache::new(1);
        let trace = dcf_sim::Scenario::small()
            .seed(3)
            .simulate(&dcf_sim::RunOptions::new())
            .expect("small scenario simulates");
        let pinned = Arc::new(RunEntry::preloaded(
            "snapshot",
            Arc::new(RunArtifacts::new(trace)),
        ));
        cache.pin("feedc0de00000000", Arc::clone(&pinned));
        // Churn the LRU well past capacity; the pin must survive.
        for seed in 0..5 {
            let _ = cache.entry("small", key(seed));
        }
        assert!(cache.lookup_digest("feedc0de00000000").is_some());
        cache.unpin("feedc0de00000000");
        assert!(cache.lookup_digest("feedc0de00000000").is_none());
    }

    #[test]
    fn scenario_hash_ignores_seed_and_threads() {
        let a = dcf_sim::Scenario::small().seed(1).config;
        let b = dcf_sim::Scenario::small().seed(9).engine_threads(8).config;
        assert_eq!(scenario_hash(&a), scenario_hash(&b));
        let c = dcf_sim::Scenario::medium().seed(1).config;
        assert_ne!(scenario_hash(&a), scenario_hash(&c));
    }
}
