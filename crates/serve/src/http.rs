//! A deliberately small HTTP/1.1 subset: enough to parse one request per
//! connection and write one JSON response. No keep-alive, no chunked
//! bodies, no TLS — the service model is connection-per-request, which
//! keeps the worker pool and the shutdown drain trivially correct.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
const MAX_BODY_BYTES: usize = 64 * 1024;

/// A parsed request: method, decoded path segments, query pairs, body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// The path without the query string, e.g. `/report/overview`.
    pub path: String,
    /// Query parameters in order of appearance (no percent-decoding; the
    /// API's values are all alphanumeric by construction).
    pub query: Vec<(String, String)>,
    /// Raw request body (empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Request parse failure, mapped to a `400 Bad Request` by the server.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (includes read timeouts).
    Io(std::io::Error),
    /// The bytes were not a parsable HTTP/1.1 request.
    Malformed(&'static str),
    /// Head or body exceeded the hard size limits.
    TooLarge,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge => write!(f, "request exceeds size limits"),
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// [`HttpError`] on socket failures (including read timeouts), malformed
/// request heads, or over-limit sizes.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    read_line_limited(&mut reader, &mut line)?;
    let request_line = line.trim_end().to_string();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("missing request target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        line.clear();
        read_line_limited(&mut reader, &mut line)?;
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let query = query_str
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();

    Ok(Request {
        method,
        path: path.to_string(),
        query,
        body,
    })
}

fn read_line_limited(
    reader: &mut BufReader<&mut TcpStream>,
    line: &mut String,
) -> Result<(), HttpError> {
    // read_line on a malicious peer could grow unboundedly; BufReader's
    // internal buffer plus the running head_bytes check in the caller keep
    // each line bounded, but cap a single line here too.
    let n = reader.read_line(line)?;
    if n == 0 {
        return Err(HttpError::Malformed("connection closed mid-request"));
    }
    if line.len() > MAX_HEAD_BYTES {
        return Err(HttpError::TooLarge);
    }
    Ok(())
}

/// A response ready to serialize: status, optional Retry-After, JSON body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Retry-After` seconds, sent on overload responses.
    pub retry_after: Option<u32>,
    /// JSON body.
    pub body: String,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn ok(body: String) -> Self {
        Self {
            status: 200,
            retry_after: None,
            body,
        }
    }

    /// An error response with a `{"error": ...}` JSON body.
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\":");
        dcf_obs::json::write_string(&mut body, message);
        body.push('}');
        Self {
            status,
            retry_after: None,
            body,
        }
    }

    /// A `503 Service Unavailable` with a `Retry-After` header.
    pub fn overloaded(message: &str, retry_after_secs: u32) -> Self {
        let mut r = Self::error(503, message);
        r.retry_after = Some(retry_after_secs);
        r
    }

    /// Writes the response to `stream` (`Connection: close` always).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        };
        let mut head = format!(
            "HTTP/1.1 {} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            self.body.len()
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("retry-after: {secs}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side)
    }

    #[test]
    fn parses_get_with_query() {
        let req =
            round_trip(b"GET /report/overview?seed=7&scenario=small HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/report/overview");
        assert_eq!(req.query_value("seed"), Some("7"));
        assert_eq!(req.query_value("scenario"), Some("small"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            round_trip(b"POST /simulate HTTP/1.1\r\nContent-Length: 13\r\n\r\n{\"seed\":3}  \n")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body.len(), 13);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            round_trip(b"not-http\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn response_serializes_with_retry_after() {
        let r = Response::overloaded("busy", 2);
        assert_eq!(r.status, 503);
        assert_eq!(r.retry_after, Some(2));
        assert!(r.body.contains("busy"));
    }
}
