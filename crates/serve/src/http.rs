//! A deliberately small HTTP/1.1 subset, parsed incrementally.
//!
//! The event loop accumulates raw bytes per connection and calls
//! [`parse_request`] after every read: the parser either consumes one
//! complete request from the front of the buffer (several may be queued —
//! that is pipelining), reports that more bytes are needed, or rejects
//! the prefix as malformed/oversized. No chunked bodies, no TLS;
//! `Content-Length` is the only framing. Keep-alive follows HTTP/1.1
//! defaults: persistent unless the request says `Connection: close`
//! (HTTP/1.0 is the inverse), and the server echoes its decision in the
//! response's `connection` header so clients never have to guess.

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A parsed request: method, decoded path segments, query pairs, body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// The path without the query string, e.g. `/report/overview`.
    pub path: String,
    /// Query parameters in order of appearance (no percent-decoding; the
    /// API's values are all alphanumeric by construction).
    pub query: Vec<(String, String)>,
    /// Raw request body (empty when absent).
    pub body: Vec<u8>,
    /// Whether the client's `Accept-Encoding` admits gzip (a `gzip` or
    /// `*` token without `q=0`). Handlers may then answer with a
    /// gzip-encoded body; identity stays the default.
    pub accept_gzip: bool,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One successfully parsed request plus its framing metadata.
#[derive(Debug)]
pub struct ParsedRequest {
    /// The request itself.
    pub request: Request,
    /// Bytes consumed from the front of the buffer (head + body); the
    /// caller drains exactly this many before parsing the next pipelined
    /// request.
    pub consumed: usize,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default, overridden by a `Connection: close` header).
    pub keep_alive: bool,
}

/// Request parse failure, mapped to a `400 Bad Request` + close by the
/// server.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes were not a parsable HTTP/1.x request.
    Malformed(&'static str),
    /// Head or body exceeded the hard size limits.
    TooLarge,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge => write!(f, "request exceeds size limits"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Locates the head/body boundary: the index one past the blank line.
/// Accepts both `\r\n\r\n` and bare `\n\n` terminators.
fn head_end(buf: &[u8]) -> Option<usize> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4);
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Tries to parse one complete request from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer holds only a prefix (read more and
/// retry), `Ok(Some(_))` with the consumed byte count on success.
///
/// # Errors
///
/// [`HttpError::Malformed`] when the prefix can never become a valid
/// request, [`HttpError::TooLarge`] when the head or declared body
/// exceeds the hard limits — both terminal for the connection.
pub fn parse_request(buf: &[u8]) -> Result<Option<ParsedRequest>, HttpError> {
    let Some(head_len) = head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        return Ok(None);
    };
    if head_len > MAX_HEAD_BYTES {
        return Err(HttpError::TooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| HttpError::Malformed("head not UTF-8"))?;
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_alphabetic()))
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    let target = parts
        .next()
        .filter(|t| !t.is_empty())
        .ok_or(HttpError::Malformed("missing request target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    let http_10 = version == "HTTP/1.0";

    let mut content_length = 0usize;
    let mut keep_alive = !http_10;
    let mut accept_gzip = false;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header without a colon"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            // Token list; `close` and `keep-alive` are the ones we honour.
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        } else if name.eq_ignore_ascii_case("accept-encoding") {
            // Coding list with optional q-values; gzip is acceptable
            // when named (or wildcarded) with a non-zero weight.
            for coding in value.split(',') {
                let mut parts = coding.split(';');
                let token = parts.next().unwrap_or_default().trim();
                if !token.eq_ignore_ascii_case("gzip") && token != "*" {
                    continue;
                }
                let refused = parts.any(|p| {
                    let p = p.trim();
                    p.strip_prefix("q=")
                        .or_else(|| p.strip_prefix("Q="))
                        .is_some_and(|q| q.trim().parse::<f64>() == Ok(0.0))
                });
                if !refused {
                    accept_gzip = true;
                }
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let total = head_len + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let body = buf[head_len..total].to_vec();

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let query = query_str
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();

    Ok(Some(ParsedRequest {
        request: Request {
            method,
            path: path.to_string(),
            query,
            body,
            accept_gzip,
        },
        consumed: total,
        keep_alive,
    }))
}

/// The body of a chunked streaming response, pumped by the event loop
/// under the per-connection backpressure cap.
#[derive(Debug, Clone)]
pub enum StreamBody {
    /// Newline-delimited JSON events as `(due_ms, payload)` in
    /// non-decreasing `due_ms` order. `due_ms` is wall milliseconds
    /// after the response head is written; the payload is one NDJSON
    /// line (trailing `\n` included) sent as one chunked-transfer
    /// chunk. At speed 0 every `due_ms` is 0.
    Paced(Vec<(u64, String)>),
    /// One large pre-rendered body, spilled onto the chunked path so a
    /// slow client never pins a multi-MB write buffer: the loop slices
    /// off chunks only as the socket drains them. `gzip` records whether
    /// the bytes are gzip-encoded (the head still needs its
    /// `content-encoding` header after the payload moved here).
    Bulk {
        /// The complete body bytes, sliced into chunks by the pump.
        bytes: Vec<u8>,
        /// Whether `bytes` are gzip-encoded.
        gzip: bool,
    },
}

impl Default for StreamBody {
    fn default() -> Self {
        StreamBody::Paced(Vec::new())
    }
}

/// Encodes one chunked-transfer chunk: hex size, CRLF, data, CRLF.
pub fn encode_chunk(payload: &[u8]) -> Vec<u8> {
    let mut out = format!("{:x}\r\n", payload.len()).into_bytes();
    out.extend_from_slice(payload);
    out.extend_from_slice(b"\r\n");
    out
}

/// The terminal zero-length chunk ending a chunked response.
pub const LAST_CHUNK: &[u8] = b"0\r\n\r\n";

/// Writes one complete response head: status line, the caller's framing
/// and identity headers, and the `connection` decision, ending with the
/// blank line. Every head the server emits — content-length responses,
/// chunked streams, error paths that used to be hand-built — goes
/// through here, so framing headers can't drift apart per call site and
/// keep-alive clients always see a correctly framed body.
///
/// `headers` are `(name, value)` pairs appended verbatim (lowercase
/// names by convention).
pub fn write_head(status: u16, reason: &str, keep_alive: bool, headers: &[(&str, &str)]) -> String {
    let mut head = format!("HTTP/1.1 {status} {reason}\r\n");
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("connection: ");
    head.push_str(if keep_alive { "keep-alive" } else { "close" });
    head.push_str("\r\n\r\n");
    head
}

/// A response ready to serialize: status, optional Retry-After /
/// Location headers, and either a JSON body (content-length framing,
/// optionally gzip-encoded) or a chunked stream.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Retry-After` seconds, sent on overload responses.
    pub retry_after: Option<u32>,
    /// `Location` header, sent on redirects.
    pub location: Option<String>,
    /// JSON body (ignored for streaming or encoded responses).
    pub body: String,
    /// Gzip-encoded body; `Some` sends these bytes with
    /// `content-encoding: gzip` instead of `body`.
    pub encoded: Option<Vec<u8>>,
    /// Chunked streaming body; `Some` makes this a
    /// `Transfer-Encoding: chunked` response driven by the event loop,
    /// and `body` is not sent.
    pub stream: Option<StreamBody>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn ok(body: String) -> Self {
        Self {
            status: 200,
            retry_after: None,
            location: None,
            body,
            encoded: None,
            stream: None,
        }
    }

    /// A `200 OK` response whose body is already gzip-encoded; sent
    /// with `content-encoding: gzip`.
    pub fn ok_gzip(encoded: Vec<u8>) -> Self {
        Self {
            status: 200,
            retry_after: None,
            location: None,
            body: String::new(),
            encoded: Some(encoded),
            stream: None,
        }
    }

    /// An error response with a `{"error": ...}` JSON body.
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\":");
        dcf_obs::json::write_string(&mut body, message);
        body.push('}');
        Self {
            status,
            retry_after: None,
            location: None,
            body,
            encoded: None,
            stream: None,
        }
    }

    /// A `503 Service Unavailable` with a `Retry-After` header.
    pub fn overloaded(message: &str, retry_after_secs: u32) -> Self {
        let mut r = Self::error(503, message);
        r.retry_after = Some(retry_after_secs);
        r
    }

    /// A `308 Permanent Redirect` to `location` — method and body are
    /// preserved by compliant clients, so it works for `POST /simulate`
    /// as well as the `GET` routes.
    pub fn redirect(location: &str) -> Self {
        let mut body = String::from("{\"moved_permanently\":");
        dcf_obs::json::write_string(&mut body, location);
        body.push('}');
        Self {
            status: 308,
            retry_after: None,
            location: Some(location.to_string()),
            body,
            encoded: None,
            stream: None,
        }
    }

    /// A `200 OK` chunked stream.
    pub fn stream(stream: StreamBody) -> Self {
        Self {
            status: 200,
            retry_after: None,
            location: None,
            body: String::new(),
            encoded: None,
            stream: Some(stream),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            308 => "Permanent Redirect",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Content Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }

    /// The bytes the content-length framing will send: the encoded body
    /// when present, the JSON text otherwise.
    pub fn payload(&self) -> &[u8] {
        match &self.encoded {
            Some(bytes) => bytes,
            None => self.body.as_bytes(),
        }
    }

    /// Moves an oversized content-length payload onto the chunked path:
    /// the body becomes a [`StreamBody::Bulk`] and the response
    /// serializes with `transfer-encoding: chunked` instead of an
    /// enormous `content-length`. Gzip payloads keep their
    /// `content-encoding` header. No-op semantics are the caller's
    /// concern: only call on a response without a stream.
    pub fn spill_to_stream(&mut self) {
        debug_assert!(self.stream.is_none(), "response already streams");
        let (bytes, gzip) = match self.encoded.take() {
            Some(bytes) => (bytes, true),
            None => (std::mem::take(&mut self.body).into_bytes(), false),
        };
        self.stream = Some(StreamBody::Bulk { bytes, gzip });
    }

    /// Serializes the full content-length-framed response. `keep_alive`
    /// selects the `connection` header: `keep-alive` leaves the
    /// connection open for the next pipelined request, `close` announces
    /// the server will half-close after the body.
    pub fn serialize(&self, keep_alive: bool) -> Vec<u8> {
        let length = self.payload().len().to_string();
        let retry = self.retry_after.map(|secs| secs.to_string());
        let mut headers: Vec<(&str, &str)> = vec![
            ("content-type", "application/json"),
            ("content-length", &length),
        ];
        if self.encoded.is_some() {
            headers.push(("content-encoding", "gzip"));
        }
        if let Some(retry) = &retry {
            headers.push(("retry-after", retry));
        }
        if let Some(location) = &self.location {
            headers.push(("location", location));
        }
        let mut out = write_head(self.status, self.reason(), keep_alive, &headers).into_bytes();
        out.extend_from_slice(self.payload());
        out
    }

    /// Serializes the head of a chunked streaming response; the event
    /// loop follows with [`encode_chunk`]-framed payloads —
    /// virtual-time-paced NDJSON lines for [`StreamBody::Paced`],
    /// backpressured body slices for [`StreamBody::Bulk`] — and
    /// [`LAST_CHUNK`] at end of stream.
    pub fn serialize_stream_head(&self, keep_alive: bool) -> Vec<u8> {
        let paced = matches!(self.stream, Some(StreamBody::Paced(_)));
        let gzip = self.encoded.is_some()
            || matches!(self.stream, Some(StreamBody::Bulk { gzip: true, .. }));
        let retry = self.retry_after.map(|secs| secs.to_string());
        let mut headers: Vec<(&str, &str)> = vec![
            (
                "content-type",
                if paced {
                    "application/x-ndjson"
                } else {
                    "application/json"
                },
            ),
            ("transfer-encoding", "chunked"),
        ];
        if gzip {
            headers.push(("content-encoding", "gzip"));
        }
        if let Some(retry) = &retry {
            headers.push(("retry-after", retry));
        }
        if let Some(location) = &self.location {
            headers.push(("location", location));
        }
        write_head(self.status, self.reason(), keep_alive, &headers).into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(raw: &[u8]) -> ParsedRequest {
        parse_request(raw)
            .expect("parsable")
            .expect("complete request")
    }

    #[test]
    fn parses_get_with_query() {
        let parsed = complete(b"GET /report/overview?seed=7&scenario=small HTTP/1.1\r\n\r\n");
        assert_eq!(parsed.request.method, "GET");
        assert_eq!(parsed.request.path, "/report/overview");
        assert_eq!(parsed.request.query_value("seed"), Some("7"));
        assert_eq!(parsed.request.query_value("scenario"), Some("small"));
        assert!(parsed.request.body.is_empty());
        assert!(parsed.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(parsed.consumed, 55);
    }

    #[test]
    fn parses_post_with_body() {
        let parsed =
            complete(b"POST /simulate HTTP/1.1\r\nContent-Length: 13\r\n\r\n{\"seed\":3}  \n");
        assert_eq!(parsed.request.method, "POST");
        assert_eq!(parsed.request.body.len(), 13);
    }

    #[test]
    fn incomplete_prefixes_ask_for_more_bytes() {
        assert!(parse_request(b"GET /healthz HT").unwrap().is_none());
        assert!(
            parse_request(b"POST /x HTTP/1.1\r\ncontent-length: 5\r\n\r\nab")
                .unwrap()
                .is_none()
        );
        assert!(parse_request(b"").unwrap().is_none());
    }

    #[test]
    fn pipelined_requests_consume_one_at_a_time() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let first = complete(raw);
        assert_eq!(first.request.path, "/healthz");
        let second = complete(&raw[first.consumed..]);
        assert_eq!(second.request.path, "/metrics");
        assert_eq!(first.consumed + second.consumed, raw.len());
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let parsed = complete(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!parsed.keep_alive);
        // HTTP/1.0 defaults to close unless keep-alive is requested.
        assert!(!complete(b"GET / HTTP/1.0\r\n\r\n").keep_alive);
        assert!(complete(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").keep_alive);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse_request(b"not-http\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_request(b"GET /x HTTP/2\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_heads_and_bodies_are_rejected() {
        let mut huge = b"GET /".to_vec();
        huge.resize(huge.len() + MAX_HEAD_BYTES + 10, b'a');
        assert!(matches!(parse_request(&huge), Err(HttpError::TooLarge)));
        let declared = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse_request(declared.as_bytes()),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn response_serializes_with_retry_after_and_connection_header() {
        let r = Response::overloaded("busy", 2);
        assert_eq!(r.status, 503);
        let bytes = String::from_utf8(r.serialize(false)).unwrap();
        assert!(bytes.contains("retry-after: 2\r\n"));
        assert!(bytes.contains("connection: close\r\n"));
        assert!(bytes.contains("busy"));
        let alive = String::from_utf8(Response::ok("{}".into()).serialize(true)).unwrap();
        assert!(alive.contains("connection: keep-alive\r\n"));
    }
}
