//! Zero-dependency gzip: an RFC 1951 DEFLATE encoder (fixed-Huffman +
//! stored blocks, lazy hash-chain LZ77) wrapped in RFC 1952 framing,
//! plus a minimal inflate checker for the same two block types.
//!
//! The encoder exists to shrink the multi-MB paper-scale section bodies
//! on the wire (`Accept-Encoding: gzip` on `/v1/report/*` and
//! `/v1/trace/{digest}/fots`), so it optimizes for the service's actual
//! payloads — repetitive JSON and markdown — where LZ77 back-references
//! dominate and the fixed Huffman table costs little versus dynamic
//! codes. Output is fully deterministic (no timestamps: MTIME is zero,
//! OS byte 255), which is what lets compressed section bodies be cached
//! per run entry and stay byte-identical across event loops.
//!
//! The decoder ([`gunzip`]) handles exactly what the encoder emits —
//! stored and fixed-Huffman blocks, FLG=0 headers — and verifies both
//! the CRC32 and ISIZE trailers. It exists so tests (including the
//! round-trip property suite) can check the encoder against an
//! independent in-crate implementation, and so CI can decode gzip'd
//! bodies without external tooling.

/// Window size a DEFLATE back-reference may span.
const WINDOW: usize = 32 * 1024;
/// Shortest encodable match.
const MIN_MATCH: usize = 3;
/// Longest encodable match.
const MAX_MATCH: usize = 258;
/// Hash-table bits for the 3-byte match heads.
const HASH_BITS: u32 = 15;
/// Longest hash chain walked per position; bounds worst-case encode time
/// on highly repetitive input at a negligible ratio cost.
const MAX_CHAIN: usize = 64;
/// Largest payload of one stored (BTYPE=00) block.
const STORED_MAX: usize = 65_535;

/// `(base length, extra bits)` for length codes 257..=285 (RFC 1951 §3.2.5).
const LENGTH_TABLE: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// `(base distance, extra bits)` for distance codes 0..=29.
const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

/// The standard IEEE CRC32 table (polynomial `0xEDB88320`), built at
/// compile time so the crate stays free of lazy-init machinery.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
};

/// IEEE CRC32 over `bytes` — the checksum gzip trailers carry.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// LSB-first bit accumulator (DEFLATE's bit order).
struct BitWriter {
    out: Vec<u8>,
    bit_buf: u64,
    bit_count: u32,
}

impl BitWriter {
    fn new() -> Self {
        Self {
            out: Vec::new(),
            bit_buf: 0,
            bit_count: 0,
        }
    }

    /// Writes `count` bits of `value`, LSB first.
    fn write_bits(&mut self, value: u32, count: u32) {
        self.bit_buf |= u64::from(value) << self.bit_count;
        self.bit_count += count;
        while self.bit_count >= 8 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Writes a Huffman code: codes are defined MSB-first, so reverse the
    /// bits before the LSB-first write.
    fn write_code(&mut self, code: u32, len: u32) {
        let mut rev = 0u32;
        for i in 0..len {
            rev |= ((code >> i) & 1) << (len - 1 - i);
        }
        self.write_bits(rev, len);
    }

    /// Pads to the next byte boundary with zero bits.
    fn align(&mut self) {
        if self.bit_count > 0 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf = 0;
            self.bit_count = 0;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        self.align();
        self.out
    }
}

/// Fixed-Huffman code for literal/length symbol `sym` (RFC 1951 §3.2.6).
fn fixed_litlen_code(sym: u16) -> (u32, u32) {
    match sym {
        0..=143 => (0b0011_0000 + u32::from(sym), 8),
        144..=255 => (0b1_1001_0000 + u32::from(sym - 144), 9),
        256..=279 => (u32::from(sym - 256), 7),
        _ => (0b1100_0000 + u32::from(sym - 280), 8),
    }
}

/// Emits a length/distance pair with the fixed tables.
fn write_match(bw: &mut BitWriter, len: usize, dist: usize) {
    let lcode = LENGTH_TABLE
        .iter()
        .rposition(|&(base, _)| usize::from(base) <= len)
        .expect("len >= 3");
    // Code 284 tops out at 257; 258 is exactly code 285.
    let lcode = if len == MAX_MATCH { 28 } else { lcode.min(27) };
    let (lbase, lextra) = LENGTH_TABLE[lcode];
    let (code, bits) = fixed_litlen_code(257 + lcode as u16);
    bw.write_code(code, bits);
    if lextra > 0 {
        bw.write_bits((len - usize::from(lbase)) as u32, u32::from(lextra));
    }
    let dcode = DIST_TABLE
        .iter()
        .rposition(|&(base, _)| usize::from(base) <= dist)
        .expect("dist >= 1");
    let (dbase, dextra) = DIST_TABLE[dcode];
    bw.write_code(dcode as u32, 5);
    if dextra > 0 {
        bw.write_bits((dist - usize::from(dbase)) as u32, u32::from(dextra));
    }
}

fn hash3(data: &[u8], i: usize) -> usize {
    let h = (u32::from(data[i]) << 16) | (u32::from(data[i + 1]) << 8) | u32::from(data[i + 2]);
    (h.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Hash-chain LZ77 state over one input buffer.
struct Matcher<'a> {
    data: &'a [u8],
    head: Vec<usize>,
    prev: Vec<usize>,
}

impl<'a> Matcher<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            head: vec![usize::MAX; 1 << HASH_BITS],
            prev: vec![usize::MAX; data.len()],
        }
    }

    /// Longest `(len, dist)` match for position `i` among the chained
    /// earlier occurrences of its 3-byte head; `(0, 0)` when none
    /// reaches [`MIN_MATCH`]. Does not index `i` — see [`Self::insert`].
    fn find(&self, i: usize) -> (usize, usize) {
        let data = self.data;
        if i + MIN_MATCH > data.len() {
            return (0, 0);
        }
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut cand = self.head[hash3(data, i)];
        let floor = i.saturating_sub(WINDOW);
        let mut chain = 0;
        while cand != usize::MAX && cand >= floor && chain < MAX_CHAIN {
            let limit = (data.len() - i).min(MAX_MATCH);
            let mut l = 0;
            while l < limit && data[cand + l] == data[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = i - cand;
                if l == MAX_MATCH {
                    break;
                }
            }
            cand = self.prev[cand];
            chain += 1;
        }
        if best_len >= MIN_MATCH {
            (best_len, best_dist)
        } else {
            (0, 0)
        }
    }

    /// Indexes position `i` as a future match candidate.
    fn insert(&mut self, i: usize) {
        if i + MIN_MATCH <= self.data.len() {
            let h = hash3(self.data, i);
            self.prev[i] = self.head[h];
            self.head[h] = i;
        }
    }
}

/// One final fixed-Huffman block encoding all of `data`, with zlib-style
/// lazy matching: before committing to a match at `i`, peek at `i + 1`
/// — if the next position matches longer, emit `data[i]` as a literal
/// and let the longer match win. On the service's JSON bodies this
/// recovers most of the ratio a greedy parse leaves behind.
fn deflate_fixed(data: &[u8]) -> Vec<u8> {
    let mut bw = BitWriter::new();
    bw.write_bits(1, 1); // BFINAL
    bw.write_bits(1, 2); // BTYPE = 01 (fixed Huffman)
    let mut m = Matcher::new(data);
    let mut i = 0;
    while i < data.len() {
        let (len, dist) = m.find(i);
        m.insert(i);
        if len == 0 {
            let (code, bits) = fixed_litlen_code(u16::from(data[i]));
            bw.write_code(code, bits);
            i += 1;
            continue;
        }
        if len < MAX_MATCH && i + 1 + MIN_MATCH <= data.len() {
            let (next_len, _) = m.find(i + 1);
            if next_len > len {
                // Defer: the literal costs ~8 bits but the longer match
                // at i + 1 more than pays for it.
                let (code, bits) = fixed_litlen_code(u16::from(data[i]));
                bw.write_code(code, bits);
                i += 1;
                continue;
            }
        }
        write_match(&mut bw, len, dist);
        for j in i + 1..i + len {
            m.insert(j);
        }
        i += len;
    }
    let (code, bits) = fixed_litlen_code(256); // end of block
    bw.write_code(code, bits);
    bw.finish()
}

/// `data` as a run of stored (BTYPE=00) blocks — the incompressible-input
/// fallback, and the trivial encoding the checker must also accept.
fn deflate_stored(data: &[u8]) -> Vec<u8> {
    let mut bw = BitWriter::new();
    let mut chunks = data.chunks(STORED_MAX).peekable();
    loop {
        let chunk: &[u8] = chunks.next().unwrap_or(b"");
        let last = chunks.peek().is_none();
        bw.write_bits(u32::from(last), 1);
        bw.write_bits(0, 2); // BTYPE = 00 (stored)
        bw.align();
        let len = chunk.len() as u16;
        bw.out.extend_from_slice(&len.to_le_bytes());
        bw.out.extend_from_slice(&(!len).to_le_bytes());
        bw.out.extend_from_slice(chunk);
        if last {
            break;
        }
    }
    bw.finish()
}

/// Compresses `data` into a complete gzip member (RFC 1952). Picks the
/// fixed-Huffman encoding unless stored blocks come out smaller
/// (incompressible input). Deterministic: MTIME is zero.
pub fn gzip(data: &[u8]) -> Vec<u8> {
    let deflated = deflate_fixed(data);
    let deflated = if deflated.len() > data.len() + 5 * data.len().div_ceil(STORED_MAX).max(1) {
        deflate_stored(data)
    } else {
        deflated
    };
    let mut out = Vec::with_capacity(deflated.len() + 18);
    out.extend_from_slice(&[0x1F, 0x8B, 8, 0, 0, 0, 0, 0, 0, 255]);
    out.extend_from_slice(&deflated);
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// LSB-first bit reader over a DEFLATE stream.
struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bit_buf: u64,
    bit_count: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            bit_buf: 0,
            bit_count: 0,
        }
    }

    fn read_bits(&mut self, count: u32) -> Result<u32, String> {
        while self.bit_count < count {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or_else(|| "deflate stream truncated".to_string())?;
            self.bit_buf |= u64::from(byte) << self.bit_count;
            self.bit_count += 8;
            self.pos += 1;
        }
        let v = (self.bit_buf & ((1u64 << count) - 1)) as u32;
        self.bit_buf >>= count;
        self.bit_count -= count;
        Ok(v)
    }

    /// Reads one Huffman-coded symbol bit by bit, MSB-accumulating.
    fn read_code_bit(&mut self, code: &mut u32) -> Result<(), String> {
        *code = (*code << 1) | self.read_bits(1)?;
        Ok(())
    }

    fn align(&mut self) {
        self.bit_buf = 0;
        self.bit_count = 0;
    }
}

/// Decodes one fixed-Huffman literal/length symbol.
fn read_fixed_litlen(br: &mut BitReader) -> Result<u16, String> {
    let mut code = 0u32;
    for _ in 0..7 {
        br.read_code_bit(&mut code)?;
    }
    if code <= 0b001_0111 {
        return Ok(256 + code as u16); // 7-bit codes: 256..=279
    }
    br.read_code_bit(&mut code)?;
    if (0b0011_0000..=0b1011_1111).contains(&code) {
        return Ok((code - 0b0011_0000) as u16); // 8-bit: 0..=143
    }
    if (0b1100_0000..=0b1100_0111).contains(&code) {
        return Ok(280 + (code - 0b1100_0000) as u16); // 8-bit: 280..=287
    }
    br.read_code_bit(&mut code)?;
    if (0b1_1001_0000..=0b1_1111_1111).contains(&code) {
        return Ok(144 + (code - 0b1_1001_0000) as u16); // 9-bit: 144..=255
    }
    Err(format!("invalid fixed-Huffman code {code:#b}"))
}

/// Inflates a DEFLATE stream of stored and/or fixed-Huffman blocks.
fn inflate(br: &mut BitReader) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    loop {
        let bfinal = br.read_bits(1)?;
        match br.read_bits(2)? {
            0 => {
                br.align();
                if br.pos + 4 > br.data.len() {
                    return Err("stored block header truncated".into());
                }
                let len = u16::from_le_bytes([br.data[br.pos], br.data[br.pos + 1]]);
                let nlen = u16::from_le_bytes([br.data[br.pos + 2], br.data[br.pos + 3]]);
                if len != !nlen {
                    return Err("stored block LEN/NLEN mismatch".into());
                }
                br.pos += 4;
                let end = br.pos + usize::from(len);
                if end > br.data.len() {
                    return Err("stored block body truncated".into());
                }
                out.extend_from_slice(&br.data[br.pos..end]);
                br.pos = end;
            }
            1 => loop {
                let sym = read_fixed_litlen(br)?;
                match sym {
                    0..=255 => out.push(sym as u8),
                    256 => break,
                    257..=285 => {
                        let (base, extra) = LENGTH_TABLE[usize::from(sym - 257)];
                        let len = usize::from(base) + br.read_bits(u32::from(extra))? as usize;
                        let mut dcode = 0u32;
                        for _ in 0..5 {
                            br.read_code_bit(&mut dcode)?;
                        }
                        let (dbase, dextra) = *DIST_TABLE
                            .get(dcode as usize)
                            .ok_or_else(|| format!("invalid distance code {dcode}"))?;
                        let dist = usize::from(dbase) + br.read_bits(u32::from(dextra))? as usize;
                        if dist == 0 || dist > out.len() {
                            return Err(format!("distance {dist} outside window"));
                        }
                        for _ in 0..len {
                            out.push(out[out.len() - dist]);
                        }
                    }
                    _ => return Err(format!("invalid literal/length symbol {sym}")),
                }
            },
            btype => return Err(format!("unsupported deflate block type {btype}")),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

/// Decompresses a gzip member produced by [`gzip`] (FLG=0; stored and
/// fixed-Huffman blocks), verifying the CRC32 and ISIZE trailers.
///
/// # Errors
///
/// Any framing, Huffman, window, or checksum violation returns a
/// description of the first problem found.
pub fn gunzip(bytes: &[u8]) -> Result<Vec<u8>, String> {
    if bytes.len() < 18 {
        return Err("gzip member shorter than header + trailer".into());
    }
    if bytes[0] != 0x1F || bytes[1] != 0x8B {
        return Err("bad gzip magic".into());
    }
    if bytes[2] != 8 {
        return Err(format!("unsupported compression method {}", bytes[2]));
    }
    if bytes[3] != 0 {
        return Err(format!("unsupported gzip flags {:#04x}", bytes[3]));
    }
    let body = &bytes[10..bytes.len() - 8];
    let mut br = BitReader::new(body);
    let out = inflate(&mut br)?;
    let trailer = &bytes[bytes.len() - 8..];
    let want_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let want_len = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
    if crc32(&out) != want_crc {
        return Err("gzip CRC32 mismatch".into());
    }
    if out.len() as u32 != want_len {
        return Err("gzip ISIZE mismatch".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> Vec<u8> {
        gunzip(&gzip(data)).expect("round trip")
    }

    #[test]
    fn empty_input_round_trips() {
        assert_eq!(round_trip(b""), b"");
    }

    #[test]
    fn short_literals_round_trip() {
        assert_eq!(round_trip(b"a"), b"a");
        assert_eq!(round_trip(b"abc"), b"abc");
        assert_eq!(
            round_trip(&[0, 128, 255, 144, 200]),
            [0, 128, 255, 144, 200]
        );
    }

    #[test]
    fn repetitive_input_compresses_and_round_trips() {
        let data: Vec<u8> = b"{\"class\":\"hdd\",\"count\":81}\n".repeat(4096);
        let z = gzip(&data);
        assert!(
            z.len() * 10 < data.len(),
            "repetitive JSON should compress >10x, got {} -> {}",
            data.len(),
            z.len()
        );
        assert_eq!(gunzip(&z).expect("round trip"), data);
    }

    #[test]
    fn incompressible_input_falls_back_near_stored_size() {
        // A pseudo-random byte soup: xorshift so no external RNG is needed.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect();
        let z = gzip(&data);
        assert!(
            z.len() < data.len() + 64,
            "incompressible input must not blow up: {} -> {}",
            data.len(),
            z.len()
        );
        assert_eq!(gunzip(&z).expect("round trip"), data);
    }

    #[test]
    fn max_length_matches_round_trip() {
        // A single byte repeated far beyond MAX_MATCH exercises the
        // length-258 (code 285) path and overlapping copies.
        let data = vec![b'x'; 10_000];
        assert_eq!(round_trip(&data), data);
    }

    #[test]
    fn boundary_literal_values_round_trip() {
        // 143/144 and 255 straddle the 8-bit/9-bit fixed-code boundary.
        let data: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        assert_eq!(round_trip(&data), data);
    }

    #[test]
    fn stored_encoding_is_decodable() {
        let data = b"stored block payload".repeat(10);
        let mut framed = Vec::new();
        framed.extend_from_slice(&[0x1F, 0x8B, 8, 0, 0, 0, 0, 0, 0, 255]);
        framed.extend_from_slice(&deflate_stored(&data));
        framed.extend_from_slice(&crc32(&data).to_le_bytes());
        framed.extend_from_slice(&(data.len() as u32).to_le_bytes());
        assert_eq!(gunzip(&framed).expect("stored decode"), data);
    }

    #[test]
    fn corrupt_member_is_rejected() {
        let mut z = gzip(b"hello hello hello hello");
        assert!(gunzip(&z[..5]).is_err(), "truncation must fail");
        let last = z.len() - 1;
        z[last] ^= 0x01; // ISIZE corruption
        assert!(gunzip(&z).is_err(), "trailer corruption must fail");
        z[last] ^= 0x01;
        z[0] = 0x00;
        assert!(gunzip(&z).is_err(), "magic corruption must fail");
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn output_is_deterministic() {
        let data = b"determinism across loops".repeat(100);
        assert_eq!(gzip(&data), gzip(&data));
    }
}
