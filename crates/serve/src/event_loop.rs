//! The readiness-driven connection engine: one thread per loop, each
//! owning its own sockets.
//!
//! This is the epoll core the service runs on. Each event-loop thread
//! owns its listener (its `SO_REUSEPORT` share of the address, or — in
//! handoff mode — only loop 0 has one), the [`Waker`] receive half, and
//! every connection it accepted or adopted; it never blocks on any one
//! socket. Workers never touch sockets at all — they pop [`Job`]s from
//! the bounded queue, compute a [`Response`], push it onto the owning
//! loop's completion list, and ring that loop's waker so it wakes up
//! and writes the bytes out. In handoff mode loop 0 additionally
//! round-robins accepted sockets to its peers through per-loop inboxes,
//! using the same waker.
//!
//! Each connection is a small state machine:
//!
//! ```text
//!             ┌──────────┐ parsed a request, queue accepted
//!   accept ──▶│ Reading  │──────────────────────────────┐
//!             └──────────┘                               ▼
//!                  ▲   ▲                           ┌──────────┐
//!   response fully │   │ queue full → 503 + close  │ InFlight │
//!   flushed,       │   │ (pipelined tail dropped)  └──────────┘
//!   keep-alive     │   │                                 │ worker pushed
//!                  │   ▼                                 ▼ the completion
//!             ┌──────────┐  close_after_write      ┌──────────┐
//!             │ Draining │◀─────────────────────── │ Writing  │
//!             └──────────┘  (half-close + drain)   └──────────┘
//!                  │ peer EOF or grace expired
//!                  ▼
//!                drop
//! ```
//!
//! Exactly one request per connection is in flight at a time, so
//! pipelined responses come back in request order with no sequencing
//! bookkeeping. Keep-alive connections loop `Reading → InFlight →
//! Writing → Reading`; a `Connection: close` request, a shed, a parse
//! error, or shutdown sets `close_after_write`, which routes the
//! connection through `Draining`: the response is flushed, the write
//! side is shut down (an abrupt close with unread client bytes would RST
//! and could destroy the response in the peer's receive buffer), and
//! reads are discarded until the peer hangs up or a short grace expires.
//!
//! Timeouts are enforced by a periodic sweep: connections idle in
//! `Reading` longer than the configured idle timeout are closed
//! (`serve.idle_closed`), stalled writes are reaped, and `Draining`
//! connections are dropped at their grace deadline. `InFlight`
//! connections are bounded by the worker-side request deadline instead.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::http::{self, Response, StreamBody};
use crate::poller::{raw_fd, Event, Interest, Poller, RawFd, Waker};
use crate::queue::{BoundedQueue, PushError};
use crate::server::{Job, Shared, RETRY_AFTER_SECS};

/// Poller token of the accept listener.
pub(crate) const LISTENER_TOKEN: u64 = 0;
/// Poller token of the waker's receive half.
pub(crate) const WAKER_TOKEN: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 2;
/// Upper bound on one `Poller::wait`; also the shutdown-observation latency.
const POLL_TIMEOUT: Duration = Duration::from_millis(25);
/// How often the timeout sweep runs.
const SWEEP_INTERVAL: Duration = Duration::from_millis(100);
/// How long a half-closed (`Draining`) connection waits for the peer's EOF.
const DRAIN_GRACE: Duration = Duration::from_millis(500);
/// How long a partially written response may stall before the connection
/// is reaped.
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(10);
/// Per-read chunk size.
const READ_CHUNK: usize = 8 * 1024;
/// Hard cap on buffered request bytes per connection (one max-size
/// request plus pipelined slack).
const MAX_BUFFERED: usize = http::MAX_HEAD_BYTES + http::MAX_BODY_BYTES + 4096;
/// A stream stops framing new chunks while this many response bytes are
/// still unflushed — a slow reader rebuffers in the stream's source
/// (chunk list or bulk body), not in the socket write buffer.
const STREAM_BACKPRESSURE_BYTES: usize = 64 * 1024;
/// Chunk size a spilled bulk body is sliced into.
const BULK_CHUNK: usize = 16 * 1024;

/// No read or write interest: parked while a worker computes (the poller
/// still reports hang-ups, which carry no interest bit).
const PARKED: Interest = Interest {
    read: false,
    write: false,
};
/// Write-only interest while flushing a response.
const WRITE_ONLY: Interest = Interest {
    read: false,
    write: true,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Accumulating request bytes; parse attempted after every read.
    Reading,
    /// One request handed to the worker pool; awaiting its completion.
    InFlight,
    /// Flushing response bytes.
    Writing,
    /// Final response flushed, write side shut down; discarding reads
    /// until peer EOF or the drain grace expires.
    Draining,
}

/// An in-progress chunked streaming response. The connection stays in
/// `Writing` for the stream's whole lifetime; the per-iteration pump
/// appends paced chunks once their virtual-time due offset has elapsed
/// (or bulk-body slices as fast as backpressure allows), and the
/// terminal chunk once all are sent.
struct StreamState {
    /// What's left to frame: paced `(due_ms, payload)` chunks in
    /// non-decreasing due order, or one spilled bulk body.
    source: StreamBody,
    /// Next paced chunk index / next bulk byte offset not yet framed.
    next: usize,
    /// When the stream head was queued; due offsets are relative to this.
    started: Instant,
    /// Terminal chunk framed — `finish_write` may run once the buffer
    /// drains.
    finished: bool,
}

struct Connection {
    stream: TcpStream,
    fd: RawFd,
    state: ConnState,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// After the current response flushes, half-close instead of reading
    /// the next request.
    close_after_write: bool,
    /// Responses completed on this connection (`>0` ⇒ keep-alive reuse).
    served: u64,
    last_activity: Instant,
    drain_deadline: Option<Instant>,
    interest: Interest,
    /// Active chunked stream: a paced replay or a spilled bulk body.
    replay: Option<StreamState>,
}

impl Connection {
    fn new(stream: TcpStream, fd: RawFd) -> Connection {
        Connection {
            stream,
            fd,
            state: ConnState::Reading,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            close_after_write: false,
            served: 0,
            last_activity: Instant::now(),
            drain_deadline: None,
            interest: Interest::READ,
            replay: None,
        }
    }

    /// True while a chunked stream still has frames to emit.
    fn streaming(&self) -> bool {
        self.replay.as_ref().is_some_and(|s| !s.finished)
    }

    /// True while a *paced* stream is live — mid-stream client
    /// disconnects count as replay disconnects only for paced replays,
    /// not for bulk body spills.
    fn streaming_paced(&self) -> bool {
        self.replay
            .as_ref()
            .is_some_and(|s| !s.finished && matches!(s.source, StreamBody::Paced(_)))
    }
}

/// One event loop; built by [`crate::server::Server::start`] and run to
/// completion on the supervisor thread (loop 0) or a scoped peer thread.
pub(crate) struct EventLoop {
    /// Index into `shared.loops`: which completion list, waker, and
    /// inbox are this loop's.
    loop_id: usize,
    /// Handoff round-robin width: `0` when every accepted socket is
    /// served locally (single loop, or per-loop `SO_REUSEPORT`
    /// listeners); `> 0` when loop 0's accepts are spread across this
    /// many loops through their inboxes.
    fanout: usize,
    /// Next round-robin handoff target.
    next_loop: usize,
    poller: Poller,
    /// This loop's listener: its `SO_REUSEPORT` share, the sole
    /// listener (single loop / handoff loop 0), or `None` for handoff
    /// peers, which only adopt from their inbox.
    listener: Option<TcpListener>,
    waker_rx: TcpStream,
    conns: HashMap<u64, Connection>,
    next_token: u64,
    queue: Arc<BoundedQueue<Job>>,
    shared: Arc<Shared>,
    max_connections: usize,
    idle_timeout: Duration,
    /// Set once the stop flag is observed: listener gone, every response
    /// goes out `Connection: close`, loop exits when the map empties.
    draining: bool,
    /// Pre-formatted per-loop metric names, so hot paths don't format.
    metric_accepted: String,
    metric_requests: String,
    metric_conns: String,
}

impl EventLoop {
    /// Builds the loop and registers the listener (when this loop has
    /// one) + waker, so registration failures surface to the caller
    /// synchronously.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        loop_id: usize,
        fanout: usize,
        mut poller: Poller,
        listener: Option<TcpListener>,
        waker_rx: TcpStream,
        queue: Arc<BoundedQueue<Job>>,
        shared: Arc<Shared>,
        max_connections: usize,
        idle_timeout: Duration,
    ) -> std::io::Result<EventLoop> {
        if let Some(listener) = &listener {
            poller.register(raw_fd(listener), LISTENER_TOKEN, Interest::READ)?;
        }
        poller.register(raw_fd(&waker_rx), WAKER_TOKEN, Interest::READ)?;
        Ok(EventLoop {
            loop_id,
            fanout,
            next_loop: 0,
            poller,
            listener,
            waker_rx,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            queue,
            shared,
            max_connections,
            idle_timeout,
            draining: false,
            metric_accepted: format!("serve.loop.{loop_id}.accepted"),
            metric_requests: format!("serve.loop.{loop_id}.requests"),
            metric_conns: format!("serve.loop.{loop_id}.conns"),
        })
    }

    /// Runs until shutdown: the stop flag is set *and* every in-flight
    /// response has been flushed (the graceful-drain contract — every
    /// request the queue accepted gets its response).
    pub(crate) fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut last_sweep = Instant::now();
        loop {
            if let Err(_e) = self.poller.wait(&mut events, POLL_TIMEOUT) {
                // Wait failures are programming errors (bad fd); don't
                // hot-spin on them.
                self.shared.metrics.add("serve.io_errors", 1);
                std::thread::sleep(POLL_TIMEOUT);
            }
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                match ev.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => Waker::drain(&mut self.waker_rx),
                    token => self.conn_event(token, ev),
                }
            }
            events = batch;
            // Completions and inbox handoffs are checked every iteration:
            // the waker byte may have been consumed by an earlier drain in
            // the same batch.
            self.deliver_completions();
            self.adopt_inbox();
            // Paced streams ride the poll cadence: every iteration, frame
            // whatever chunks have come due.
            self.pump_streams();

            if !self.draining && self.shared.stop.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            if self.draining && self.conns.is_empty() {
                break;
            }
            let now = Instant::now();
            if now.duration_since(last_sweep) >= SWEEP_INTERVAL {
                self.sweep(now);
                last_sweep = now;
            }
        }
        for (_, conn) in self.conns.drain() {
            self.poller.deregister(conn.fd);
        }
    }

    /// Stop observed: close the listener, drop connections with no
    /// pending response. What remains is `InFlight`/`Writing`; their
    /// responses are flushed `Connection: close` and then dropped.
    fn begin_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            self.poller.deregister(raw_fd(&listener));
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| matches!(c.state, ConnState::Reading | ConnState::Draining))
            .map(|(t, _)| *t)
            .collect();
        for token in idle {
            self.drop_conn(token);
        }
    }

    fn drop_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.deregister(conn.fd);
            self.shared
                .metrics
                .set_gauge(&self.metric_conns, self.conns.len() as f64);
        }
    }

    fn set_interest(&mut self, token: u64, interest: Interest) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.interest != interest && self.poller.modify(conn.fd, token, interest).is_ok() {
            conn.interest = interest;
        }
    }

    /// Accepts every pending connection (level-triggered: stop at
    /// `WouldBlock`). In handoff mode the accepted socket is round-robined
    /// across all loops: peers get it through their inbox + waker, the
    /// local share is adopted directly.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if self.fanout > 1 {
                        let target = self.next_loop;
                        self.next_loop = (self.next_loop + 1) % self.fanout;
                        if target != self.loop_id {
                            let lane = &self.shared.loops[target];
                            lane.inbox.lock().expect("inbox poisoned").push(stream);
                            lane.waker.wake();
                            continue;
                        }
                    }
                    self.adopt_stream(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.shared.metrics.add("serve.io_errors", 1);
                    return;
                }
            }
        }
    }

    /// Registers one accepted (or handed-off) socket as a connection.
    /// Beyond `max_connections` — this loop's share of the budget — the
    /// connection is answered `503` + `Retry-After` and closed rather
    /// than left unserved.
    fn adopt_stream(&mut self, stream: TcpStream) {
        let _ = stream.set_nonblocking(true);
        let _ = stream.set_nodelay(true);
        let fd = raw_fd(&stream);
        let token = self.next_token;
        self.next_token += 1;
        let over_capacity = self.conns.len() >= self.max_connections;
        let mut conn = Connection::new(stream, fd);
        let interest = if over_capacity {
            self.shared.metrics.add("serve.rejected", 1);
            let resp = Response::overloaded("connection limit reached", RETRY_AFTER_SECS);
            conn.write_buf = resp.serialize(false);
            conn.state = ConnState::Writing;
            conn.close_after_write = true;
            WRITE_ONLY
        } else {
            self.shared.metrics.add("serve.accepted", 1);
            self.shared.metrics.add(&self.metric_accepted, 1);
            Interest::READ
        };
        conn.interest = interest;
        if self.poller.register(fd, token, interest).is_ok() {
            self.conns.insert(token, conn);
            self.shared
                .metrics
                .set_gauge(&self.metric_conns, self.conns.len() as f64);
            if over_capacity {
                self.flush(token);
            }
        } else {
            self.shared.metrics.add("serve.io_errors", 1);
        }
    }

    /// Adopts sockets the accepting loop handed to this loop's inbox
    /// (handoff mode only). During drain handed-off sockets are simply
    /// closed — the peer sees a connection reset instead of waiting on a
    /// loop that will never serve it.
    fn adopt_inbox(&mut self) {
        if self.fanout == 0 {
            return;
        }
        let handed: Vec<TcpStream> = {
            let mut inbox = self.shared.loops[self.loop_id]
                .inbox
                .lock()
                .expect("inbox poisoned");
            std::mem::take(&mut *inbox)
        };
        for stream in handed {
            if self.draining {
                drop(stream);
                continue;
            }
            self.adopt_stream(stream);
        }
    }

    fn conn_event(&mut self, token: u64, ev: &Event) {
        if !self.conns.contains_key(&token) {
            return; // late event for an already-dropped connection
        }
        if ev.writable {
            self.flush(token);
        }
        if ev.readable || ev.closed {
            self.read_ready(token);
        }
    }

    /// Drains the socket's readable bytes into the connection buffer
    /// (discarding them in `Draining`), then attempts a parse.
    fn read_ready(&mut self, token: u64) {
        let mut scratch = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    // Peer EOF. A connection between requests or mid-read
                    // is simply gone; one with a response still pending
                    // finishes the write first, then closes — except a
                    // live stream, whose remaining chunks have no reader.
                    match conn.state {
                        ConnState::Reading | ConnState::Draining => self.drop_conn(token),
                        ConnState::Writing if conn.streaming() => {
                            if conn.streaming_paced() {
                                self.shared.metrics.add("serve.replay.disconnects", 1);
                            }
                            self.drop_conn(token);
                        }
                        ConnState::InFlight | ConnState::Writing => {
                            conn.close_after_write = true;
                        }
                    }
                    return;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    if conn.state == ConnState::Draining {
                        continue; // discarding until EOF
                    }
                    conn.read_buf.extend_from_slice(&scratch[..n]);
                    if conn.read_buf.len() > MAX_BUFFERED {
                        self.respond(
                            token,
                            Response::error(413, "request exceeds size limits"),
                            false,
                        );
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.shared.metrics.add("serve.io_errors", 1);
                    self.drop_conn(token);
                    return;
                }
            }
        }
        self.try_dispatch(token);
    }

    /// Parses at most one request off the buffer and hands it to the
    /// worker pool. A full queue is the load-shed path: `503` +
    /// `Retry-After` with `Connection: close`, and any pipelined tail
    /// already buffered is dropped — the close announcement is what makes
    /// that correct (the client knows nothing after the 503 was looked at).
    fn try_dispatch(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.state != ConnState::Reading {
            return;
        }
        match http::parse_request(&conn.read_buf) {
            Ok(None) => {}
            Err(err) => {
                // `413` for size-limit violations, `400` for everything
                // else — both framed with a correct `content-length`, so
                // a keep-alive client that sent garbage never desyncs.
                let status = match err {
                    http::HttpError::TooLarge => 413,
                    http::HttpError::Malformed(_) => 400,
                };
                let message = err.to_string();
                self.respond(token, Response::error(status, &message), false);
            }
            Ok(Some(parsed)) => {
                conn.read_buf.drain(..parsed.consumed);
                self.shared.metrics.add("serve.requests", 1);
                self.shared.metrics.add(&self.metric_requests, 1);
                if conn.served > 0 {
                    self.shared.metrics.add("serve.keepalive.reused", 1);
                }
                let keep_alive = parsed.keep_alive && !self.draining;
                let job = Job {
                    loop_id: self.loop_id,
                    token,
                    request: parsed.request,
                    received_at: Instant::now(),
                    keep_alive,
                };
                match self.queue.try_push(job) {
                    Ok(()) => {
                        if let Some(conn) = self.conns.get_mut(&token) {
                            conn.state = ConnState::InFlight;
                        }
                        self.set_interest(token, PARKED);
                    }
                    Err((_, PushError::Full)) => {
                        self.shared.metrics.add("serve.rejected", 1);
                        if let Some(conn) = self.conns.get_mut(&token) {
                            conn.read_buf.clear();
                        }
                        self.respond(
                            token,
                            Response::overloaded("accept queue full", RETRY_AFTER_SECS),
                            false,
                        );
                    }
                    Err((_, PushError::Closed)) => {
                        self.respond(
                            token,
                            Response::overloaded("service shutting down", RETRY_AFTER_SECS),
                            false,
                        );
                    }
                }
            }
        }
    }

    /// Queues response bytes on the connection and starts flushing. A
    /// streaming response queues only the chunked head; its body frames
    /// are appended by [`EventLoop::pump_streams`] as they come due. A
    /// plain response whose body exceeds the spill threshold is moved
    /// onto the same chunked path first, so a slow client backpressures
    /// against the stream pump instead of pinning the whole body in the
    /// write buffer.
    fn respond(&mut self, token: u64, mut response: Response, keep_alive: bool) {
        if response.stream.is_none() && response.payload().len() > self.shared.spill_threshold {
            self.shared.metrics.add("serve.spilled", 1);
            response.spill_to_stream();
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let keep_alive = keep_alive && !conn.close_after_write;
        if response.stream.is_some() {
            // Head first: content-type and content-encoding are derived
            // from the stream body, so serialize before taking it.
            conn.write_buf = response.serialize_stream_head(keep_alive);
            conn.replay = Some(StreamState {
                source: response.stream.take().expect("stream checked above"),
                next: 0,
                started: Instant::now(),
                finished: false,
            });
        } else {
            conn.write_buf = response.serialize(keep_alive);
            conn.replay = None;
        }
        conn.write_pos = 0;
        conn.close_after_write = !keep_alive;
        conn.state = ConnState::Writing;
        self.set_interest(token, WRITE_ONLY);
        self.pump_streams();
        self.flush(token);
    }

    /// Frames every due chunk of every live stream into its connection's
    /// write buffer, plus the terminal chunk once a stream is exhausted.
    /// Paced chunks come due on their virtual-time offsets (at speed 0
    /// all offsets are 0 and the whole body is framed on the first
    /// visit); bulk bodies are always due and are sliced off only up to
    /// the backpressure cap.
    fn pump_streams(&mut self) {
        let streaming: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.state == ConnState::Writing && c.streaming())
            .map(|(&t, _)| t)
            .collect();
        if streaming.is_empty() {
            return;
        }
        let now = Instant::now();
        for token in streaming {
            let appended = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue;
                };
                let Some(stream) = conn.replay.as_mut() else {
                    continue;
                };
                if conn.write_buf.len() - conn.write_pos >= STREAM_BACKPRESSURE_BYTES {
                    continue; // slow reader: let the socket drain first
                }
                if conn.write_pos >= conn.write_buf.len() && conn.write_pos > 0 {
                    conn.write_buf.clear();
                    conn.write_pos = 0;
                }
                let mut appended = false;
                match &stream.source {
                    StreamBody::Paced(chunks) => {
                        let elapsed_ms = now.duration_since(stream.started).as_millis() as u64;
                        while stream.next < chunks.len() && chunks[stream.next].0 <= elapsed_ms {
                            let (_, payload) = &chunks[stream.next];
                            conn.write_buf
                                .extend_from_slice(&http::encode_chunk(payload.as_bytes()));
                            stream.next += 1;
                            appended = true;
                        }
                        if stream.next >= chunks.len() {
                            conn.write_buf.extend_from_slice(http::LAST_CHUNK);
                            stream.finished = true;
                            appended = true;
                        }
                    }
                    StreamBody::Bulk { bytes, .. } => {
                        while stream.next < bytes.len()
                            && conn.write_buf.len() - conn.write_pos < STREAM_BACKPRESSURE_BYTES
                        {
                            let end = (stream.next + BULK_CHUNK).min(bytes.len());
                            conn.write_buf
                                .extend_from_slice(&http::encode_chunk(&bytes[stream.next..end]));
                            stream.next = end;
                            appended = true;
                        }
                        if stream.next >= bytes.len() {
                            conn.write_buf.extend_from_slice(http::LAST_CHUNK);
                            stream.finished = true;
                            appended = true;
                        }
                    }
                }
                if !appended && conn.write_pos >= conn.write_buf.len() {
                    // Idle between due chunks is pacing, not a stalled
                    // write — keep the stall sweep off this connection.
                    conn.last_activity = now;
                }
                appended
            };
            if appended {
                self.flush(token);
            }
        }
    }

    /// Writes as much of the pending response as the socket accepts.
    fn flush(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.state != ConnState::Writing {
                return;
            }
            if conn.write_pos >= conn.write_buf.len() {
                if conn.streaming() {
                    // Buffer drained but the stream has chunks still to
                    // come due; park with read interest so a peer EOF
                    // (client walked away mid-stream) is noticed.
                    self.set_interest(token, Interest::READ);
                    return;
                }
                self.finish_write(token);
                return;
            }
            let pos = conn.write_pos;
            match conn.stream.write(&conn.write_buf[pos..]) {
                Ok(0) => {
                    self.fail_write(token);
                    return;
                }
                Ok(n) => {
                    conn.write_pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.set_interest(token, WRITE_ONLY);
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.fail_write(token);
                    return;
                }
            }
        }
    }

    /// Write failed (reset, broken pipe, or a zero-length write): record
    /// it — as a mid-stream disconnect too, if a replay was live — and
    /// drop the connection.
    fn fail_write(&mut self, token: u64) {
        if self.conns.get(&token).is_some_and(|c| c.streaming_paced()) {
            self.shared.metrics.add("serve.replay.disconnects", 1);
        }
        self.shared.metrics.add("serve.io_errors", 1);
        self.drop_conn(token);
    }

    /// Response fully flushed: either loop back to `Reading` (keep-alive,
    /// possibly with the next pipelined request already buffered) or
    /// half-close and drain.
    fn finish_write(&mut self, token: u64) {
        let close_after = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.write_buf = Vec::new();
            conn.write_pos = 0;
            conn.replay = None;
            conn.served += 1;
            conn.last_activity = Instant::now();
            conn.close_after_write
        };
        if close_after {
            if self.draining {
                self.drop_conn(token);
                return;
            }
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.state = ConnState::Draining;
                conn.read_buf = Vec::new();
                conn.drain_deadline = Some(Instant::now() + DRAIN_GRACE);
                // Half-close: the peer sees EOF after the response; an
                // abrupt close with unread client bytes would RST and
                // could destroy the response in the peer's receive buffer.
                let _ = conn.stream.shutdown(Shutdown::Write);
            }
            self.set_interest(token, Interest::READ);
        } else {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.state = ConnState::Reading;
            }
            self.set_interest(token, Interest::READ);
            self.try_dispatch(token);
        }
    }

    /// Hands each completed response back to its connection. Completions
    /// for connections that died while the worker computed are discarded.
    fn deliver_completions(&mut self) {
        let completions = {
            let mut guard = self.shared.loops[self.loop_id]
                .completions
                .lock()
                .expect("completions poisoned");
            std::mem::take(&mut *guard)
        };
        for c in completions {
            let Some(conn) = self.conns.get(&c.token) else {
                continue;
            };
            debug_assert_eq!(conn.state, ConnState::InFlight);
            let keep_alive = c.keep_alive && !self.draining;
            self.respond(c.token, c.response, keep_alive);
        }
    }

    /// Periodic timeout pass; see the module docs for which states are
    /// covered here versus by the worker deadline.
    fn sweep(&mut self, now: Instant) {
        let victims: Vec<(u64, bool)> = self
            .conns
            .iter()
            .filter_map(|(&token, conn)| match conn.state {
                ConnState::Reading => (now.duration_since(conn.last_activity) > self.idle_timeout)
                    .then_some((token, true)),
                ConnState::Writing => (now.duration_since(conn.last_activity)
                    > WRITE_STALL_TIMEOUT)
                    .then_some((token, false)),
                ConnState::Draining => conn
                    .drain_deadline
                    .is_some_and(|d| now >= d)
                    .then_some((token, false)),
                ConnState::InFlight => None,
            })
            .collect();
        for (token, idle) in victims {
            if idle {
                self.shared.metrics.add("serve.idle_closed", 1);
            }
            self.drop_conn(token);
        }
    }
}
