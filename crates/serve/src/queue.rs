//! A bounded MPMC queue on `Mutex<VecDeque>` + `Condvar`.
//!
//! The accept loop pushes connections, the worker pool pops them. The
//! queue is deliberately tiny and dependency-free: `try_push` never
//! blocks (full ⇒ the caller sheds load with `503`), `pop` blocks until
//! an item arrives or the queue is closed *and* drained — which is
//! exactly the graceful-shutdown contract: close, then let workers finish
//! whatever was already accepted.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Error returned by [`BoundedQueue::try_push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should shed load.
    Full,
    /// The queue was closed; no further items are accepted.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer queue with explicit close.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    available: Condvar,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            available: Condvar::new(),
        }
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; either way the rejected item is handed
    /// back to the caller alongside the error.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err((item, PushError::Closed));
        }
        if state.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue poisoned");
        }
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: future pushes fail, and `pop` returns `None`
    /// once the backlog is drained.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (item, err) = q.try_push(3).unwrap_err();
        assert_eq!((item, err), (3, PushError::Full));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8).unwrap_err().1, PushError::Closed);
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }
}
