//! The service itself: configuration, worker pool, endpoint dispatch,
//! and lifecycle around the event loop.
//!
//! Threading model: [`Server::start`] binds the listeners, opens one
//! [`Poller`] per event loop, loads the snapshot catalog, and spawns one
//! supervisor thread that owns a `crossbeam::thread::scope`. Inside the
//! scope, `workers` scoped threads pop jobs from a [`BoundedQueue`] and
//! compute responses (simulate, render, page), while `loops` scoped
//! threads each run an independent readiness event loop with its own
//! poller and connection table (the supervisor thread runs loop 0
//! itself). With `SO_REUSEPORT` support every loop accepts from its own
//! kernel-balanced listener on the shared address; otherwise loop 0 owns
//! the sole listener and round-robins accepted sockets to its peers
//! through per-loop inboxes. The run cache, single-flight map, and
//! snapshot catalog are shared behind one `Arc`, so cached bodies are
//! byte-identical regardless of which loop serves them. A full queue is
//! the load-shed signal: the event loop answers `503` + `Retry-After`
//! with `Connection: close` instead of queueing unboundedly.
//!
//! Shutdown flips the shared stop flag and rings every loop's waker:
//! each loop stops accepting, flushes every in-flight response
//! (`Connection: close`), and exits; the queue is closed, workers drain,
//! the scope joins, and the final metrics report is returned.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dcf_core::StudyOptions;
use dcf_obs::{MetricsRegistry, RunReport};
use dcf_sim::{RunOptions, Scenario};

use crate::cache::{scenario_hash, CacheKey, ResponseCache, RunArtifacts, RunEntry};
use crate::catalog::{Catalog, ReloadSummary};
use crate::event_loop::EventLoop;
use crate::gzip;
use crate::http::{Request, Response, StreamBody};
use crate::poller::{self, Poller, Waker};
use crate::queue::BoundedQueue;
use crate::sections::{self, Obj, RunIdentity};

/// Default `Retry-After` seconds on overload responses.
pub(crate) const RETRY_AFTER_SECS: u32 = 1;
/// Cap on `limit` for paged ticket reads.
const MAX_PAGE: usize = 1000;
/// Default page size for `/trace/{digest}/fots`.
const DEFAULT_PAGE: usize = 100;

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8620` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads computing responses.
    pub workers: usize,
    /// LRU response-cache capacity in run entries.
    pub cache_entries: usize,
    /// Bounded request-queue depth; requests beyond it are shed with
    /// `503` + `Retry-After` and `Connection: close`.
    pub queue_depth: usize,
    /// Per-request deadline, measured from parse. Requests still queued
    /// past the deadline are answered `503` without being served.
    pub request_deadline: Duration,
    /// Test hook: artificial delay inserted into each simulation compute,
    /// used by the integration suite to saturate the queue deterministically.
    pub compute_delay: Duration,
    /// Metrics sink for request counters and spans.
    pub metrics: MetricsRegistry,
    /// Optional single binary trace snapshot, served under the scenario
    /// name `snapshot` (legacy sugar for a one-entry catalog).
    pub snapshot: Option<String>,
    /// Optional catalog directory of `.dcfsnap` files, each served under
    /// its file stem (see [`crate::catalog`]). Takes precedence over
    /// `snapshot`.
    pub catalog: Option<String>,
    /// Maximum concurrently open connections; beyond it new connections
    /// are answered `503` and closed.
    pub max_connections: usize,
    /// Keep-alive idle timeout: connections with no request activity for
    /// this long are closed by the sweep.
    pub idle_timeout: Duration,
    /// Poller backend preference (`"epoll"`, `"poll"`, `"scan"`); `None`
    /// picks the best supported backend.
    pub poller_backend: Option<String>,
    /// Event-loop (poller thread) count; `0` = one per available core.
    pub loops: usize,
    /// Whether a multi-loop server may use `SO_REUSEPORT` listeners.
    /// `false` forces the portable handoff path (loop 0 accepts and
    /// round-robins), which tests use for deterministic placement.
    pub reuseport: bool,
    /// Bodies larger than this many bytes are spilled onto the chunked
    /// transfer path instead of being framed with `content-length`, so a
    /// slow client backpressures instead of pinning a multi-MB buffer.
    pub spill_threshold: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8620".to_string(),
            workers: 4,
            cache_entries: 8,
            queue_depth: 64,
            request_deadline: Duration::from_secs(30),
            compute_delay: Duration::ZERO,
            metrics: MetricsRegistry::disabled(),
            snapshot: None,
            catalog: None,
            max_connections: 12_000,
            idle_timeout: Duration::from_secs(10),
            poller_backend: None,
            loops: 1,
            reuseport: true,
            spill_threshold: 256 * 1024,
        }
    }
}

impl ServeConfig {
    /// Sets the bind address.
    #[must_use]
    pub fn addr(mut self, addr: &str) -> Self {
        self.addr = addr.to_string();
        self
    }

    /// Sets the worker-thread count (min 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the response-cache capacity (min 1 run entry).
    #[must_use]
    pub fn cache_entries(mut self, entries: usize) -> Self {
        self.cache_entries = entries.max(1);
        self
    }

    /// Sets the request-queue depth (min 1).
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the per-request deadline.
    #[must_use]
    pub fn request_deadline(mut self, deadline: Duration) -> Self {
        self.request_deadline = deadline;
        self
    }

    /// Sets the metrics sink.
    #[must_use]
    pub fn metrics(mut self, metrics: &MetricsRegistry) -> Self {
        self.metrics = metrics.clone();
        self
    }

    /// Preloads a binary trace snapshot (see `dcf_trace::io::snapshot`)
    /// served under the `snapshot` scenario name.
    #[must_use]
    pub fn snapshot(mut self, path: &str) -> Self {
        self.snapshot = Some(path.to_string());
        self
    }

    /// Serves a catalog directory of `.dcfsnap` files (see
    /// [`crate::catalog`]).
    #[must_use]
    pub fn catalog(mut self, dir: &str) -> Self {
        self.catalog = Some(dir.to_string());
        self
    }

    /// Sets the concurrent-connection cap (min 8).
    #[must_use]
    pub fn max_connections(mut self, max: usize) -> Self {
        self.max_connections = max.max(8);
        self
    }

    /// Sets the keep-alive idle timeout.
    #[must_use]
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Forces a poller backend (`"epoll"`, `"poll"`, `"scan"`).
    #[must_use]
    pub fn poller_backend(mut self, backend: &str) -> Self {
        self.poller_backend = Some(backend.to_string());
        self
    }

    /// Sets the event-loop count (`0` = one per available core).
    #[must_use]
    pub fn loops(mut self, loops: usize) -> Self {
        self.loops = loops;
        self
    }

    /// Allows or forbids `SO_REUSEPORT` accept sharding (forbidding it
    /// selects the portable handoff path even when the kernel supports
    /// shared listeners).
    #[must_use]
    pub fn reuseport(mut self, allowed: bool) -> Self {
        self.reuseport = allowed;
        self
    }

    /// Sets the body size above which responses spill onto the chunked
    /// transfer path.
    #[must_use]
    pub fn spill_threshold(mut self, bytes: usize) -> Self {
        self.spill_threshold = bytes;
        self
    }
}

/// One parsed request handed from an event loop to the worker pool.
#[derive(Debug)]
pub(crate) struct Job {
    /// Event loop owning the connection; the completion routes back to
    /// this loop's completion list and waker.
    pub(crate) loop_id: usize,
    /// Connection token the response routes back to.
    pub(crate) token: u64,
    /// The parsed request.
    pub(crate) request: Request,
    /// When the request was parsed; the deadline is measured from here.
    pub(crate) received_at: Instant,
    /// Whether the client asked to keep the connection open.
    pub(crate) keep_alive: bool,
}

/// One computed response on its way back to the event loop.
#[derive(Debug)]
pub(crate) struct Completion {
    pub(crate) token: u64,
    pub(crate) response: Response,
    pub(crate) keep_alive: bool,
}

/// Per-event-loop mailboxes: the lanes through which workers (and, in
/// handoff mode, the accepting loop) reach one specific loop.
pub(crate) struct LoopShared {
    /// Responses computed by workers, drained by this loop.
    pub(crate) completions: Mutex<Vec<Completion>>,
    /// Rings this loop out of its wait (completion ready, inbox handoff,
    /// shutdown).
    pub(crate) waker: Waker,
    /// Accepted sockets handed off by the fallback acceptor (loop 0)
    /// when `SO_REUSEPORT` isn't in play; the loop adopts them on wake.
    pub(crate) inbox: Mutex<Vec<TcpStream>>,
}

/// State shared between the event loops, the worker pool, and the
/// [`Server`] handle.
pub(crate) struct Shared {
    pub(crate) cache: ResponseCache,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) deadline: Duration,
    pub(crate) compute_delay: Duration,
    /// Bodies above this many bytes go out chunked instead of
    /// content-length framed.
    pub(crate) spill_threshold: usize,
    /// Name-addressed pinned snapshot entries (`--catalog` / `--snapshot`).
    pub(crate) catalog: Option<Catalog>,
    /// One mailbox set per event loop, indexed by `Job::loop_id`.
    pub(crate) loops: Vec<LoopShared>,
    /// Graceful-shutdown flag.
    pub(crate) stop: AtomicBool,
}

/// A running query service. Dropping without [`Server::shutdown`] still
/// drains gracefully (the drop handler joins the supervisor); call
/// `shutdown` to also receive the final metrics report.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    metrics: MetricsRegistry,
    backend: &'static str,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("backend", &self.backend)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener, loads the catalog, and spawns the supervisor
    /// (event loop) + worker threads.
    ///
    /// # Errors
    ///
    /// Propagates bind/poller failures from the OS and catalog load
    /// failures (a corrupt snapshot fails startup; see
    /// [`Catalog::open`]).
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let loops = match config.loops {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        };
        let metrics = config.metrics.clone();

        // Listener plan: a single loop keeps the classic one-listener
        // setup; multiple loops prefer a SO_REUSEPORT group (each loop
        // accepts its own kernel-balanced share of the address) and fall
        // back to loop 0 owning the sole listener and handing accepted
        // sockets to its peers round-robin.
        let mut listeners: Vec<Option<TcpListener>> = Vec::new();
        let mut accept_mode = "reuseport";
        if loops > 1 && config.reuseport && poller::REUSEPORT_SUPPORTED {
            if let Some(group) = reuseport_group(&config.addr, loops) {
                listeners = group.into_iter().map(Some).collect();
            }
        }
        if listeners.is_empty() {
            accept_mode = if loops > 1 { "handoff" } else { "single" };
            let listener = TcpListener::bind(&config.addr)?;
            listener.set_nonblocking(true)?;
            listeners.push(Some(listener));
            listeners.resize_with(loops, || None);
        }
        let addr = listeners[0]
            .as_ref()
            .expect("loop 0 always has a listener")
            .local_addr()?;

        let cache = ResponseCache::new(config.cache_entries);
        let catalog = match (&config.catalog, &config.snapshot) {
            (Some(dir), _) => Some(Catalog::open(dir, &cache, &config.metrics)?),
            (None, Some(path)) => Some(Catalog::open_single(path, &cache, &config.metrics)?),
            (None, None) => None,
        };

        let mut backend = "";
        let mut lanes = Vec::with_capacity(loops);
        let mut loop_parts = Vec::with_capacity(loops);
        for _ in 0..loops {
            let poller = Poller::new(config.poller_backend.as_deref())?;
            backend = poller.backend_name();
            let (waker, waker_rx) = Waker::pair()?;
            lanes.push(LoopShared {
                completions: Mutex::new(Vec::new()),
                waker,
                inbox: Mutex::new(Vec::new()),
            });
            loop_parts.push((poller, waker_rx));
        }

        let shared = Arc::new(Shared {
            cache,
            metrics: config.metrics.clone(),
            deadline: config.request_deadline,
            compute_delay: config.compute_delay,
            spill_threshold: config.spill_threshold,
            catalog,
            loops: lanes,
            stop: AtomicBool::new(false),
        });
        metrics.set_gauge("serve.loops", loops as f64);
        let queue = Arc::new(BoundedQueue::<Job>::new(config.queue_depth));
        let workers = config.workers.max(1);
        // Each loop polices its share of the connection budget.
        let per_loop_conns = config.max_connections.max(8).div_ceil(loops);
        let idle_timeout = config.idle_timeout;
        // Round-robin fanout is only live in handoff mode; REUSEPORT
        // loops (and a single loop) serve everything they accept.
        let fanout = if accept_mode == "handoff" { loops } else { 0 };

        let mut event_loops = Vec::with_capacity(loops);
        for (loop_id, ((poller, waker_rx), listener)) in
            loop_parts.into_iter().zip(listeners).enumerate()
        {
            event_loops.push(EventLoop::new(
                loop_id,
                fanout,
                poller,
                listener,
                waker_rx,
                Arc::clone(&queue),
                Arc::clone(&shared),
                per_loop_conns,
                idle_timeout,
            )?);
        }

        let loop_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("dcf-serve".to_string())
            .spawn(move || {
                crossbeam::thread::scope(|s| {
                    for _ in 0..workers {
                        let queue = Arc::clone(&queue);
                        let shared = Arc::clone(&loop_shared);
                        s.spawn(move |_| worker_loop(&shared, &queue));
                    }
                    let mut event_loops = event_loops;
                    let first = event_loops.remove(0);
                    let peers: Vec<_> = event_loops
                        .into_iter()
                        .map(|event_loop| s.spawn(move |_| event_loop.run()))
                        .collect();
                    first.run();
                    for peer in peers {
                        let _ = peer.join();
                    }
                    // Every loop exited with every accepted request
                    // answered; close the queue so workers drain and join.
                    queue.close();
                })
                .expect("serve scope panicked");
            })?;

        Ok(Server {
            addr,
            shared,
            metrics,
            backend,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with a `:0` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The active poller backend (`"epoll"`, `"poll"`, or `"scan"`).
    pub fn poller_backend(&self) -> &'static str {
        self.backend
    }

    /// Rescans the snapshot catalog (the SIGHUP handler calls this; so
    /// does `POST /catalog/reload`).
    ///
    /// # Errors
    ///
    /// `Unsupported` when the server has no catalog directory; otherwise
    /// propagates scan/decode failures (see [`Catalog::reload`]).
    pub fn reload_catalog(&self) -> std::io::Result<ReloadSummary> {
        match &self.shared.catalog {
            Some(catalog) => catalog.reload(&self.shared.cache),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "no catalog configured (start the service with --catalog DIR)",
            )),
        }
    }

    /// Graceful shutdown: stop accepting, flush every in-flight
    /// response, join all threads, and return the final metrics snapshot.
    pub fn shutdown(mut self) -> RunReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        for lane in &self.shared.loops {
            lane.waker.wake();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        self.metrics.report("dcf-serve")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for lane in &self.shared.loops {
            lane.waker.wake();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `count` `SO_REUSEPORT` listeners on `addr` — the first bind
/// resolves a `:0` port so the rest share it. `None` when the address
/// doesn't resolve to IPv4 or any bind fails; the caller falls back to
/// the single-listener handoff plan.
fn reuseport_group(addr: &str, count: usize) -> Option<Vec<TcpListener>> {
    use std::net::ToSocketAddrs;
    let target = addr.to_socket_addrs().ok()?.find(SocketAddr::is_ipv4)?;
    let first = poller::reuseport_listener(target).ok()?;
    let resolved = first.local_addr().ok()?;
    let mut group = vec![first];
    for _ in 1..count {
        group.push(poller::reuseport_listener(resolved).ok()?);
    }
    Some(group)
}

/// Worker thread body: pop, enforce the queued-time deadline, dispatch,
/// hand the completion back to the owning loop, ring that loop's waker.
fn worker_loop(shared: &Shared, queue: &BoundedQueue<Job>) {
    while let Some(job) = queue.pop() {
        let _span = shared.metrics.worker_phase("serve.request");
        let (response, keep_alive) = if job.received_at.elapsed() > shared.deadline {
            shared.metrics.add("serve.timeouts", 1);
            (
                Response::overloaded("request deadline exceeded while queued", RETRY_AFTER_SECS),
                false,
            )
        } else {
            let response = dispatch(shared, &job.request);
            if response.status >= 500 {
                shared.metrics.add("serve.errors", 1);
            }
            (response, job.keep_alive)
        };
        let lane = &shared.loops[job.loop_id];
        lane.completions
            .lock()
            .expect("completions poisoned")
            .push(Completion {
                token: job.token,
                response,
                keep_alive,
            });
        lane.waker.wake();
    }
}

fn dispatch(shared: &Shared, request: &Request) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        // Liveness and metrics stay unversioned: they describe the
        // process, not the API.
        ("GET", ["healthz"]) => {
            let mut obj = Obj::new();
            obj.str("status", "ok");
            Response::ok(obj.finish())
        }
        ("GET", ["metrics"]) => {
            let _span = shared.metrics.worker_phase("serve.report.metrics");
            Response::ok(shared.metrics.report("dcf-serve").to_json())
        }
        ("GET", ["v1", "catalog"]) => handle_catalog(shared),
        ("POST", ["v1", "catalog", "reload"]) => handle_catalog_reload(shared),
        ("POST", ["v1", "simulate"]) => handle_simulate(shared, request),
        ("GET", ["v1", "report", section]) => handle_report(shared, request, section),
        ("GET", ["v1", "trace", digest, "fots"]) => handle_fots(shared, request, digest),
        ("GET", ["v1", "replay", scenario]) => handle_replay(shared, request, scenario),
        // Pre-versioning paths moved under `/v1` wholesale; `308` (unlike
        // `301`) obliges clients to preserve the method and body, so it
        // covers `POST /simulate` too. The query string rides along.
        (
            "GET" | "POST",
            ["catalog"]
            | ["catalog", "reload"]
            | ["simulate"]
            | ["report", _]
            | ["trace", _, "fots"]
            | ["replay", _],
        ) => {
            shared.metrics.add("serve.redirects", 1);
            Response::redirect(&versioned_location(request))
        }
        ("GET", _) | ("POST", _) => Response::error(404, "unknown endpoint"),
        _ => Response::error(405, "unsupported method"),
    }
}

/// The `/v1` home of a pre-versioning path, query string preserved
/// (query pairs are kept verbatim by the parser, so reassembly is
/// lossless).
fn versioned_location(request: &Request) -> String {
    let mut location = format!("/v1{}", request.path);
    for (i, (key, value)) in request.query.iter().enumerate() {
        location.push(if i == 0 { '?' } else { '&' });
        location.push_str(key);
        location.push('=');
        location.push_str(value);
    }
    location
}

fn handle_catalog(shared: &Shared) -> Response {
    match &shared.catalog {
        Some(catalog) => Response::ok(catalog.render_listing()),
        None => Response::error(
            404,
            "no catalog configured (start the service with --catalog DIR or --snapshot PATH)",
        ),
    }
}

fn handle_catalog_reload(shared: &Shared) -> Response {
    let Some(catalog) = &shared.catalog else {
        return Response::error(
            404,
            "no catalog configured (start the service with --catalog DIR)",
        );
    };
    match catalog.reload(&shared.cache) {
        Ok(summary) => {
            let mut obj = Obj::new();
            obj.uint("added", summary.added as u64)
                .uint("removed", summary.removed as u64)
                .uint("total", summary.total as u64);
            Response::ok(obj.finish())
        }
        Err(e) if e.kind() == std::io::ErrorKind::Unsupported => {
            Response::error(400, &e.to_string())
        }
        Err(e) => Response::error(500, &format!("catalog reload failed: {e}")),
    }
}

/// The raw `(scenario name, seed, threads)` triple of a request, before
/// the scenario is resolved (catalog snapshot names address preloaded
/// traces and never simulate).
struct RawParams {
    scenario: String,
    seed: u64,
    threads: usize,
}

impl RawParams {
    fn from_body(body: &[u8]) -> Result<Self, Response> {
        if body.is_empty() {
            return Ok(Self {
                scenario: "small".into(),
                seed: 0,
                threads: 0,
            });
        }
        let text =
            std::str::from_utf8(body).map_err(|_| Response::error(400, "body is not UTF-8"))?;
        let value = dcf_obs::json::parse(text)
            .map_err(|e| Response::error(400, &format!("invalid JSON body: {e}")))?;
        let scenario = value
            .get("scenario")
            .and_then(|v| v.as_str())
            .unwrap_or("small")
            .to_string();
        let seed = value.get("seed").and_then(|v| v.as_u64()).unwrap_or(0);
        let threads = value.get("threads").and_then(|v| v.as_u64()).unwrap_or(0) as usize;
        Ok(Self {
            scenario,
            seed,
            threads,
        })
    }

    fn from_query(request: &Request) -> Result<Self, Response> {
        let scenario = request
            .query_value("scenario")
            .unwrap_or("small")
            .to_string();
        let seed = match request.query_value("seed") {
            None => 0,
            Some(raw) => raw
                .parse()
                .map_err(|_| Response::error(400, "seed must be an unsigned integer"))?,
        };
        let threads = match request.query_value("threads") {
            None => 0,
            Some(raw) => raw
                .parse()
                .map_err(|_| Response::error(400, "threads must be an unsigned integer"))?,
        };
        Ok(Self {
            scenario,
            seed,
            threads,
        })
    }
}

/// The `(scenario, seed, threads)` triple addressed by a request.
struct RunParams {
    scenario: Scenario,
    seed: u64,
    threads: usize,
}

impl RunParams {
    fn resolve(scenario: &str, seed: u64, threads: usize) -> Result<Self, Response> {
        let scenario = match scenario {
            "small" => Scenario::small(),
            "medium" => Scenario::medium(),
            "paper" => Scenario::paper(),
            other => {
                return Err(Response::error(
                    400,
                    &format!(
                        "unknown scenario {other:?} (expected small|medium|paper or a catalog snapshot name)"
                    ),
                ))
            }
        };
        Ok(Self {
            scenario: scenario.seed(seed),
            seed,
            threads,
        })
    }

    fn cache_key(&self) -> CacheKey {
        CacheKey {
            scenario_hash: scenario_hash(&self.scenario.config),
            seed: self.seed,
            threads: self.threads,
        }
    }
}

/// Resolves a raw request triple to its run entry: a pinned catalog
/// snapshot when the name matches one (always a cache hit), a cached or
/// freshly computed simulation otherwise.
fn run_entry_for(shared: &Shared, raw: &RawParams) -> Result<(Arc<RunEntry>, bool), Response> {
    if let Some(catalog) = &shared.catalog {
        if let Some(entry) = catalog.get(&raw.scenario) {
            shared.metrics.add("serve.cache.hits", 1);
            return Ok((entry, true));
        }
    }
    if raw.scenario == "snapshot" {
        return Err(Response::error(
            404,
            "no snapshot preloaded (start the service with --snapshot PATH or --catalog DIR)",
        ));
    }
    let params = RunParams::resolve(&raw.scenario, raw.seed, raw.threads)?;
    run_entry(shared, &params)
}

/// Looks up (or computes, single-flight) the run for `params`.
fn run_entry(shared: &Shared, params: &RunParams) -> Result<(Arc<RunEntry>, bool), Response> {
    let key = params.cache_key();
    let entry = shared.cache.entry(params.scenario.name, key);
    let hit = entry.run.get().is_some();
    shared.metrics.add(
        if hit {
            "serve.cache.hits"
        } else {
            "serve.cache.misses"
        },
        1,
    );
    let result = entry.run.get_or_init(|| {
        let _span = shared.metrics.worker_phase("serve.simulate");
        if !shared.compute_delay.is_zero() {
            std::thread::sleep(shared.compute_delay);
        }
        let options = RunOptions::new()
            .metrics(&shared.metrics)
            .threads(params.threads);
        params
            .scenario
            .simulate(&options)
            .map(|trace| Arc::new(RunArtifacts::new(trace)))
            .map_err(|e| e.to_string())
    });
    match result {
        Ok(artifacts) => {
            shared.cache.register_digest(&artifacts.digest, key);
            Ok((Arc::clone(&entry), hit))
        }
        Err(message) => Err(Response::error(500, message)),
    }
}

fn handle_simulate(shared: &Shared, request: &Request) -> Response {
    let params = match RawParams::from_body(&request.body) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let (entry, hit) = match run_entry_for(shared, &params) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let artifacts = match entry.run.get() {
        Some(Ok(a)) => a,
        _ => return Response::error(500, "run entry lost"),
    };
    let mut obj = Obj::new();
    obj.str("scenario", &entry.scenario)
        .uint("seed", entry.seed)
        .uint("threads", entry.threads as u64)
        .str("digest", &artifacts.digest)
        .uint("total_fots", artifacts.trace.len() as u64)
        .str("cache", if hit { "hit" } else { "miss" });
    Response::ok(obj.finish())
}

fn handle_report(shared: &Shared, request: &Request, section: &str) -> Response {
    let Some(&section) = sections::SECTIONS.iter().find(|&&s| s == section) else {
        return Response::error(
            404,
            &format!(
                "unknown report section {section:?} (expected one of {})",
                sections::SECTIONS.join("|")
            ),
        );
    };
    let params = match RawParams::from_query(request) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let (entry, _hit) = match run_entry_for(shared, &params) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let cached_body = entry
        .sections
        .lock()
        .expect("sections poisoned")
        .get(section)
        .cloned();
    if let Some(body) = cached_body {
        shared.metrics.add("serve.section.cached", 1);
        return section_response(shared, &entry, section, &body, request.accept_gzip);
    }
    let artifacts = match entry.run.get() {
        Some(Ok(a)) => Arc::clone(a),
        _ => return Response::error(500, "run entry lost"),
    };
    let _span = shared
        .metrics
        .worker_phase(&format!("serve.report.{section}"));
    let study_threads = entry.threads.max(1);
    let report =
        artifacts.report(&StudyOptions::with_threads(study_threads).metrics(&shared.metrics));
    let id = RunIdentity {
        scenario: &entry.scenario,
        seed: entry.seed,
        threads: entry.threads,
        digest: &artifacts.digest,
    };
    let body = sections::render(section, id, report).expect("section name pre-validated");
    let body: Arc<str> = entry
        .sections
        .lock()
        .expect("sections poisoned")
        .entry(section)
        .or_insert_with(|| Arc::from(body.as_str()))
        .clone();
    section_response(shared, &entry, section, &body, request.accept_gzip)
}

/// Wraps a rendered section body for the wire: identity by default, the
/// entry's cached gzip render when the client accepts it (compressed
/// once per section per run, then shared by every loop).
fn section_response(
    shared: &Shared,
    entry: &RunEntry,
    section: &'static str,
    body: &str,
    accept_gzip: bool,
) -> Response {
    if !accept_gzip {
        return Response::ok(body.to_string());
    }
    let cached = entry
        .gzip_sections
        .lock()
        .expect("gzip sections poisoned")
        .get(section)
        .cloned();
    let bytes = match cached {
        Some(bytes) => bytes,
        None => {
            let _span = shared.metrics.worker_phase("serve.gzip.encode");
            let encoded: Arc<[u8]> = gzip::gzip(body.as_bytes()).into();
            entry
                .gzip_sections
                .lock()
                .expect("gzip sections poisoned")
                .entry(section)
                .or_insert_with(|| Arc::clone(&encoded))
                .clone()
        }
    };
    if bytes.len() >= body.len() {
        // Tiny aggregates can come out larger framed than plain; the
        // cache still remembers the render so the size check is cheap.
        return Response::ok(body.to_string());
    }
    shared.metrics.add("serve.gzip.responses", 1);
    Response::ok_gzip(bytes.to_vec())
}

fn handle_fots(shared: &Shared, request: &Request, digest: &str) -> Response {
    let Some(entry) = shared.cache.lookup_digest(digest) else {
        return Response::error(404, "unknown trace digest (run /v1/simulate first)");
    };
    let artifacts = match entry.run.get() {
        Some(Ok(a)) => Arc::clone(a),
        _ => return Response::error(500, "run entry lost"),
    };
    let offset = match request.query_value("offset") {
        None => 0usize,
        Some(raw) => match raw.parse() {
            Ok(n) => n,
            Err(_) => return Response::error(400, "offset must be an unsigned integer"),
        },
    };
    let limit = match request.query_value("limit") {
        None => DEFAULT_PAGE,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n.min(MAX_PAGE),
            Err(_) => return Response::error(400, "limit must be an unsigned integer"),
        },
    };
    let trace = &artifacts.trace;
    let total = trace.len();
    let start = offset.min(total);
    let end = start.saturating_add(limit).min(total);

    let mut body = String::from("{");
    dcf_obs::json::write_string(&mut body, "digest");
    body.push(':');
    dcf_obs::json::write_string(&mut body, digest);
    body.push_str(&format!(
        ",\"offset\":{start},\"limit\":{limit},\"total\":{total},\"fots\":["
    ));
    match trace.columns() {
        // Columnar render: the page gathers straight from the typed
        // columns (positions equal row indices), reconstructing the same
        // names/paths the row structs would produce — the body is
        // byte-identical to the row path below.
        Some(cols) => {
            use dcf_trace::{ComponentClass, FailureType, FotCategory};
            for (i, row_idx) in (start..end).enumerate() {
                if i > 0 {
                    body.push(',');
                }
                let class = ComponentClass::ALL[cols.classes()[row_idx] as usize];
                let mut row = Obj::new();
                row.uint("id", cols.ids()[row_idx])
                    .uint("server", cols.servers()[row_idx] as u64)
                    .uint("data_center", cols.data_centers()[row_idx] as u64)
                    .uint("product_line", cols.product_lines()[row_idx] as u64)
                    .str("device", class.name())
                    .str(
                        "device_path",
                        &dcf_trace::device_path_for(class, cols.device_slots()[row_idx]),
                    )
                    .str(
                        "failure_type",
                        FailureType::ALL[cols.failure_types()[row_idx] as usize].name(),
                    )
                    .uint("error_time_secs", cols.error_secs(row_idx))
                    .str(
                        "category",
                        FotCategory::ALL[cols.categories()[row_idx] as usize].name(),
                    );
                body.push_str(&row.finish());
            }
        }
        None => {
            for (i, fot) in trace.fots()[start..end].iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                let mut row = Obj::new();
                row.uint("id", fot.id.index() as u64)
                    .uint("server", fot.server.index() as u64)
                    .uint("data_center", fot.data_center.index() as u64)
                    .uint("product_line", fot.product_line.index() as u64)
                    .str("device", fot.device.name())
                    .str("device_path", &fot.device_path())
                    .str("failure_type", fot.failure_type.name())
                    .uint("error_time_secs", fot.error_time.as_secs())
                    .str("category", fot.category.name());
                body.push_str(&row.finish());
            }
        }
    }
    body.push_str("]}");
    if request.accept_gzip {
        // Pages are query-dependent, so they compress per request
        // instead of landing in the per-section cache.
        let _span = shared.metrics.worker_phase("serve.gzip.encode");
        let encoded = gzip::gzip(body.as_bytes());
        if encoded.len() < body.len() {
            shared.metrics.add("serve.gzip.responses", 1);
            return Response::ok_gzip(encoded);
        }
    }
    Response::ok(body)
}

/// `GET /v1/replay/{scenario}?speed=N[&seed=..&threads=..]` — streams
/// the run's replay feed (FOT tickets, inline online detections, final
/// summary) as chunked NDJSON. `speed` is simulated days per wall
/// second; `0` (the default) streams with no pacing. The event sequence
/// is precomputed and cached per run, so the bytes on the wire are
/// identical at every speed.
fn handle_replay(shared: &Shared, request: &Request, scenario: &str) -> Response {
    let speed = match request.query_value("speed") {
        None => 0.0,
        Some(raw) => match raw.parse::<f64>() {
            Ok(s) if s.is_finite() && s >= 0.0 => s,
            _ => {
                return Response::error(
                    400,
                    "speed must be a finite non-negative number (simulated days per wall second; 0 = no pacing)",
                )
            }
        },
    };
    let mut raw = match RawParams::from_query(request) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    raw.scenario = scenario.to_string();
    let (entry, _hit) = match run_entry_for(shared, &raw) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let artifacts = match entry.run.get() {
        Some(Ok(a)) => Arc::clone(a),
        _ => return Response::error(500, "run entry lost"),
    };
    let outcome = artifacts.replay(|| {
        let _span = shared.metrics.worker_phase("serve.replay.build");
        dcf_core::replay::replay(&artifacts.trace, &dcf_core::replay::ReplayConfig::default())
    });
    shared.metrics.add("serve.replay.streams", 1);
    shared
        .metrics
        .add("serve.replay.events", outcome.events.len() as u64 + 1);
    let ms_per_sim_sec = if speed > 0.0 {
        1000.0 / (speed * dcf_trace::SECS_PER_DAY as f64)
    } else {
        0.0
    };
    let mut chunks = Vec::with_capacity(outcome.events.len() + 1);
    let mut last_due = 0u64;
    for event in &outcome.events {
        let due = (event.offset_secs as f64 * ms_per_sim_sec) as u64;
        last_due = due;
        chunks.push((due, format!("{}\n", event.line)));
    }
    chunks.push((last_due, format!("{}\n", outcome.summary_line)));
    Response::stream(StreamBody::Paced(chunks))
}
