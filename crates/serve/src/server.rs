//! The service itself: listener, bounded accept queue, worker pool,
//! endpoint dispatch, and graceful drain.
//!
//! Threading model: [`Server::start`] spawns one supervisor thread that
//! owns a `crossbeam::thread::scope`. Inside the scope, the supervisor
//! runs a non-blocking accept loop pushing connections into a
//! [`BoundedQueue`], while `workers` scoped threads pop and serve them.
//! Shutdown flips an `AtomicBool`: the accept loop stops, the queue is
//! closed, workers drain the backlog (every accepted request still gets a
//! response), the scope joins, and the final metrics report is returned.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dcf_core::StudyOptions;
use dcf_obs::{MetricsRegistry, RunReport};
use dcf_sim::{RunOptions, Scenario};

use crate::cache::{scenario_hash, CacheKey, ResponseCache, RunArtifacts, RunEntry};
use crate::http::{read_request, HttpError, Request, Response};
use crate::queue::{BoundedQueue, PushError};
use crate::sections::{self, Obj, RunIdentity};

/// Default `Retry-After` seconds on overload responses.
const RETRY_AFTER_SECS: u32 = 1;
/// Accept-loop poll interval while the listener has no pending connection.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Cap on `limit` for paged ticket reads.
const MAX_PAGE: usize = 1000;
/// Default page size for `/trace/{digest}/fots`.
const DEFAULT_PAGE: usize = 100;

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8620` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads serving requests.
    pub workers: usize,
    /// LRU response-cache capacity in run entries.
    pub cache_entries: usize,
    /// Bounded accept-queue depth; connections beyond it get `503`.
    pub queue_depth: usize,
    /// Per-request deadline, measured from accept. Requests still queued
    /// past the deadline are answered `503` without being served.
    pub request_deadline: Duration,
    /// Test hook: artificial delay inserted into each simulation compute,
    /// used by the integration suite to saturate the queue deterministically.
    pub compute_delay: Duration,
    /// Metrics sink for request counters and spans.
    pub metrics: MetricsRegistry,
    /// Optional binary trace snapshot to preload and serve under the
    /// `snapshot` scenario name (and its digest).
    pub snapshot: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8620".to_string(),
            workers: 4,
            cache_entries: 8,
            queue_depth: 64,
            request_deadline: Duration::from_secs(30),
            compute_delay: Duration::ZERO,
            metrics: MetricsRegistry::disabled(),
            snapshot: None,
        }
    }
}

impl ServeConfig {
    /// Sets the bind address.
    #[must_use]
    pub fn addr(mut self, addr: &str) -> Self {
        self.addr = addr.to_string();
        self
    }

    /// Sets the worker-thread count (min 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the response-cache capacity (min 1 run entry).
    #[must_use]
    pub fn cache_entries(mut self, entries: usize) -> Self {
        self.cache_entries = entries.max(1);
        self
    }

    /// Sets the accept-queue depth (min 1).
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the per-request deadline.
    #[must_use]
    pub fn request_deadline(mut self, deadline: Duration) -> Self {
        self.request_deadline = deadline;
        self
    }

    /// Sets the metrics sink.
    #[must_use]
    pub fn metrics(mut self, metrics: &MetricsRegistry) -> Self {
        self.metrics = metrics.clone();
        self
    }

    /// Preloads a binary trace snapshot (see `dcf_trace::io::snapshot`)
    /// served under the `snapshot` scenario name.
    #[must_use]
    pub fn snapshot(mut self, path: &str) -> Self {
        self.snapshot = Some(path.to_string());
        self
    }
}

/// An accepted connection waiting for a worker.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    accepted_at: Instant,
}

struct Shared {
    cache: ResponseCache,
    metrics: MetricsRegistry,
    deadline: Duration,
    compute_delay: Duration,
    /// Preloaded snapshot trace, addressed as scenario `snapshot`.
    snapshot: Option<Arc<RunEntry>>,
}

/// A running query service. Dropping without [`Server::shutdown`] aborts
/// the supervisor thread detached; call `shutdown` for a graceful drain.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    metrics: MetricsRegistry,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the supervisor + worker threads.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures from the OS.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = config.metrics.clone();

        let snapshot = match &config.snapshot {
            None => None,
            Some(path) => {
                let span = config.metrics.phase("trace.snapshot_load");
                let trace = dcf_trace::io::snapshot::read_snapshot(path)
                    .map_err(|e| std::io::Error::other(format!("snapshot {path}: {e}")))?;
                drop(span);
                let artifacts = Arc::new(RunArtifacts::new(trace));
                Some(Arc::new(RunEntry::preloaded("snapshot", artifacts)))
            }
        };

        let shared = Arc::new(Shared {
            cache: ResponseCache::new(config.cache_entries),
            metrics: config.metrics.clone(),
            deadline: config.request_deadline,
            compute_delay: config.compute_delay,
            snapshot,
        });
        if let Some(entry) = &shared.snapshot {
            if let Some(Ok(artifacts)) = entry.run.get() {
                shared.cache.pin(&artifacts.digest, Arc::clone(entry));
            }
        }
        let queue = Arc::new(BoundedQueue::<Conn>::new(config.queue_depth));
        let workers = config.workers.max(1);
        let stop_flag = Arc::clone(&stop);

        let handle = std::thread::Builder::new()
            .name("dcf-serve".to_string())
            .spawn(move || {
                crossbeam::thread::scope(|s| {
                    for _ in 0..workers {
                        let queue = Arc::clone(&queue);
                        let shared = Arc::clone(&shared);
                        s.spawn(move |_| {
                            while let Some(conn) = queue.pop() {
                                serve_connection(&shared, conn);
                            }
                        });
                    }

                    // Accept loop: non-blocking so shutdown is observed
                    // within one poll interval.
                    while !stop_flag.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                shared.metrics.add("serve.accepted", 1);
                                let conn = Conn {
                                    stream,
                                    accepted_at: Instant::now(),
                                };
                                if let Err((conn, err)) = queue.try_push(conn) {
                                    debug_assert!(matches!(err, PushError::Full));
                                    shared.metrics.add("serve.rejected", 1);
                                    reject(conn.stream, "accept queue full");
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(ACCEPT_POLL);
                            }
                            Err(_) => std::thread::sleep(ACCEPT_POLL),
                        }
                    }
                    // Graceful drain: no new connections, but everything
                    // already accepted is still served.
                    queue.close();
                })
                .expect("serve scope panicked");
            })?;

        Ok(Server {
            addr,
            stop,
            metrics,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with a `:0` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, serve every queued request,
    /// join all threads, and return the final metrics snapshot.
    pub fn shutdown(mut self) -> RunReport {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        self.metrics.report("dcf-serve")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Best-effort overload response on a connection we will not serve.
///
/// The client's request bytes are intentionally left unread; closing with
/// unread data would RST the connection and can destroy the 503 in the
/// client's receive buffer, so after writing the response we half-close
/// and drain until the peer hangs up (bounded by a short read timeout).
fn reject(mut stream: TcpStream, message: &str) {
    use std::io::Read;

    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = Response::overloaded(message, RETRY_AFTER_SECS).write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut scratch = [0u8; 1024];
    while let Ok(n) = stream.read(&mut scratch) {
        if n == 0 {
            break;
        }
    }
}

fn serve_connection(shared: &Shared, conn: Conn) {
    let _span = shared.metrics.worker_phase("serve.request");
    let waited = conn.accepted_at.elapsed();
    if waited > shared.deadline {
        shared.metrics.add("serve.timeouts", 1);
        reject(conn.stream, "request deadline exceeded while queued");
        return;
    }
    let mut stream = conn.stream;
    let _ = stream.set_nonblocking(false);
    let remaining = shared.deadline - waited;
    let _ = stream.set_read_timeout(Some(remaining.max(Duration::from_millis(10))));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));

    let response = match read_request(&mut stream) {
        Ok(request) => {
            shared.metrics.add("serve.requests", 1);
            dispatch(shared, &request)
        }
        Err(HttpError::Io(_)) => {
            shared.metrics.add("serve.io_errors", 1);
            return; // peer gone or unreadable; nothing to answer
        }
        Err(HttpError::Malformed(what)) => Response::error(400, what),
        Err(HttpError::TooLarge) => Response::error(400, "request exceeds size limits"),
    };
    if response.status >= 500 {
        shared.metrics.add("serve.errors", 1);
    }
    let _ = response.write_to(&mut stream);
}

fn dispatch(shared: &Shared, request: &Request) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let mut obj = Obj::new();
            obj.str("status", "ok");
            Response::ok(obj.finish())
        }
        ("GET", ["metrics"]) => {
            let _span = shared.metrics.worker_phase("serve.report.metrics");
            Response::ok(shared.metrics.report("dcf-serve").to_json())
        }
        ("POST", ["simulate"]) => handle_simulate(shared, request),
        ("GET", ["report", section]) => handle_report(shared, request, section),
        ("GET", ["trace", digest, "fots"]) => handle_fots(shared, request, digest),
        ("GET", _) | ("POST", _) => Response::error(404, "unknown endpoint"),
        _ => Response::error(405, "unsupported method"),
    }
}

/// The raw `(scenario name, seed, threads)` triple of a request, before
/// the scenario is resolved (the `snapshot` pseudo-scenario addresses the
/// preloaded trace and never simulates).
struct RawParams {
    scenario: String,
    seed: u64,
    threads: usize,
}

impl RawParams {
    fn from_body(body: &[u8]) -> Result<Self, Response> {
        if body.is_empty() {
            return Ok(Self {
                scenario: "small".into(),
                seed: 0,
                threads: 0,
            });
        }
        let text =
            std::str::from_utf8(body).map_err(|_| Response::error(400, "body is not UTF-8"))?;
        let value = dcf_obs::json::parse(text)
            .map_err(|e| Response::error(400, &format!("invalid JSON body: {e}")))?;
        let scenario = value
            .get("scenario")
            .and_then(|v| v.as_str())
            .unwrap_or("small")
            .to_string();
        let seed = value.get("seed").and_then(|v| v.as_u64()).unwrap_or(0);
        let threads = value.get("threads").and_then(|v| v.as_u64()).unwrap_or(0) as usize;
        Ok(Self {
            scenario,
            seed,
            threads,
        })
    }

    fn from_query(request: &Request) -> Result<Self, Response> {
        let scenario = request
            .query_value("scenario")
            .unwrap_or("small")
            .to_string();
        let seed = match request.query_value("seed") {
            None => 0,
            Some(raw) => raw
                .parse()
                .map_err(|_| Response::error(400, "seed must be an unsigned integer"))?,
        };
        let threads = match request.query_value("threads") {
            None => 0,
            Some(raw) => raw
                .parse()
                .map_err(|_| Response::error(400, "threads must be an unsigned integer"))?,
        };
        Ok(Self {
            scenario,
            seed,
            threads,
        })
    }
}

/// The `(scenario, seed, threads)` triple addressed by a request.
struct RunParams {
    scenario: Scenario,
    seed: u64,
    threads: usize,
}

impl RunParams {
    fn resolve(scenario: &str, seed: u64, threads: usize) -> Result<Self, Response> {
        let scenario = match scenario {
            "small" => Scenario::small(),
            "medium" => Scenario::medium(),
            "paper" => Scenario::paper(),
            other => {
                return Err(Response::error(
                    400,
                    &format!("unknown scenario {other:?} (expected small|medium|paper|snapshot)"),
                ))
            }
        };
        Ok(Self {
            scenario: scenario.seed(seed),
            seed,
            threads,
        })
    }

    fn cache_key(&self) -> CacheKey {
        CacheKey {
            scenario_hash: scenario_hash(&self.scenario.config),
            seed: self.seed,
            threads: self.threads,
        }
    }
}

/// Resolves a raw request triple to its run entry: the preloaded snapshot
/// for the `snapshot` pseudo-scenario (always a cache hit), a cached or
/// freshly computed simulation otherwise.
fn run_entry_for(shared: &Shared, raw: &RawParams) -> Result<(Arc<RunEntry>, bool), Response> {
    if raw.scenario == "snapshot" {
        let entry = shared.snapshot.clone().ok_or_else(|| {
            Response::error(
                404,
                "no snapshot preloaded (start the service with --snapshot PATH)",
            )
        })?;
        shared.metrics.add("serve.cache.hits", 1);
        return Ok((entry, true));
    }
    let params = RunParams::resolve(&raw.scenario, raw.seed, raw.threads)?;
    run_entry(shared, &params)
}

/// Looks up (or computes, single-flight) the run for `params`.
fn run_entry(shared: &Shared, params: &RunParams) -> Result<(Arc<RunEntry>, bool), Response> {
    let key = params.cache_key();
    let entry = shared.cache.entry(params.scenario.name, key);
    let hit = entry.run.get().is_some();
    shared.metrics.add(
        if hit {
            "serve.cache.hits"
        } else {
            "serve.cache.misses"
        },
        1,
    );
    let result = entry.run.get_or_init(|| {
        let _span = shared.metrics.worker_phase("serve.simulate");
        if !shared.compute_delay.is_zero() {
            std::thread::sleep(shared.compute_delay);
        }
        let options = RunOptions::new()
            .metrics(&shared.metrics)
            .threads(params.threads);
        params
            .scenario
            .simulate(&options)
            .map(|trace| Arc::new(RunArtifacts::new(trace)))
            .map_err(|e| e.to_string())
    });
    match result {
        Ok(artifacts) => {
            shared.cache.register_digest(&artifacts.digest, key);
            Ok((Arc::clone(&entry), hit))
        }
        Err(message) => Err(Response::error(500, message)),
    }
}

fn handle_simulate(shared: &Shared, request: &Request) -> Response {
    let params = match RawParams::from_body(&request.body) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let (entry, hit) = match run_entry_for(shared, &params) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let artifacts = match entry.run.get() {
        Some(Ok(a)) => a,
        _ => return Response::error(500, "run entry lost"),
    };
    let mut obj = Obj::new();
    obj.str("scenario", &entry.scenario)
        .uint("seed", entry.seed)
        .uint("threads", entry.threads as u64)
        .str("digest", &artifacts.digest)
        .uint("total_fots", artifacts.trace.len() as u64)
        .str("cache", if hit { "hit" } else { "miss" });
    Response::ok(obj.finish())
}

fn handle_report(shared: &Shared, request: &Request, section: &str) -> Response {
    let Some(&section) = sections::SECTIONS.iter().find(|&&s| s == section) else {
        return Response::error(
            404,
            &format!(
                "unknown report section {section:?} (expected one of {})",
                sections::SECTIONS.join("|")
            ),
        );
    };
    let params = match RawParams::from_query(request) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let (entry, _hit) = match run_entry_for(shared, &params) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    if let Some(body) = entry
        .sections
        .lock()
        .expect("sections poisoned")
        .get(section)
    {
        shared.metrics.add("serve.section.cached", 1);
        return Response::ok(body.to_string());
    }
    let artifacts = match entry.run.get() {
        Some(Ok(a)) => Arc::clone(a),
        _ => return Response::error(500, "run entry lost"),
    };
    let _span = shared
        .metrics
        .worker_phase(&format!("serve.report.{section}"));
    let study_threads = entry.threads.max(1);
    let report =
        artifacts.report(&StudyOptions::with_threads(study_threads).metrics(&shared.metrics));
    let id = RunIdentity {
        scenario: &entry.scenario,
        seed: entry.seed,
        threads: entry.threads,
        digest: &artifacts.digest,
    };
    let body = sections::render(section, id, report).expect("section name pre-validated");
    let mut cached = entry.sections.lock().expect("sections poisoned");
    let body: Arc<str> = cached
        .entry(section)
        .or_insert_with(|| Arc::from(body.as_str()))
        .clone();
    Response::ok(body.to_string())
}

fn handle_fots(shared: &Shared, request: &Request, digest: &str) -> Response {
    let Some(entry) = shared.cache.lookup_digest(digest) else {
        return Response::error(404, "unknown trace digest (run /simulate first)");
    };
    let artifacts = match entry.run.get() {
        Some(Ok(a)) => Arc::clone(a),
        _ => return Response::error(500, "run entry lost"),
    };
    let offset = match request.query_value("offset") {
        None => 0usize,
        Some(raw) => match raw.parse() {
            Ok(n) => n,
            Err(_) => return Response::error(400, "offset must be an unsigned integer"),
        },
    };
    let limit = match request.query_value("limit") {
        None => DEFAULT_PAGE,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n.min(MAX_PAGE),
            Err(_) => return Response::error(400, "limit must be an unsigned integer"),
        },
    };
    let trace = &artifacts.trace;
    let total = trace.len();
    let start = offset.min(total);
    let end = start.saturating_add(limit).min(total);

    let mut body = String::from("{");
    dcf_obs::json::write_string(&mut body, "digest");
    body.push(':');
    dcf_obs::json::write_string(&mut body, digest);
    body.push_str(&format!(
        ",\"offset\":{start},\"limit\":{limit},\"total\":{total},\"fots\":["
    ));
    match trace.columns() {
        // Columnar render: the page gathers straight from the typed
        // columns (positions equal row indices), reconstructing the same
        // names/paths the row structs would produce — the body is
        // byte-identical to the row path below.
        Some(cols) => {
            use dcf_trace::{ComponentClass, FailureType, FotCategory};
            for (i, row_idx) in (start..end).enumerate() {
                if i > 0 {
                    body.push(',');
                }
                let class = ComponentClass::ALL[cols.classes()[row_idx] as usize];
                let mut row = Obj::new();
                row.uint("id", cols.ids()[row_idx])
                    .uint("server", cols.servers()[row_idx] as u64)
                    .uint("data_center", cols.data_centers()[row_idx] as u64)
                    .uint("product_line", cols.product_lines()[row_idx] as u64)
                    .str("device", class.name())
                    .str(
                        "device_path",
                        &dcf_trace::device_path_for(class, cols.device_slots()[row_idx]),
                    )
                    .str(
                        "failure_type",
                        FailureType::ALL[cols.failure_types()[row_idx] as usize].name(),
                    )
                    .uint("error_time_secs", cols.error_secs(row_idx))
                    .str(
                        "category",
                        FotCategory::ALL[cols.categories()[row_idx] as usize].name(),
                    );
                body.push_str(&row.finish());
            }
        }
        None => {
            for (i, fot) in trace.fots()[start..end].iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                let mut row = Obj::new();
                row.uint("id", fot.id.index() as u64)
                    .uint("server", fot.server.index() as u64)
                    .uint("data_center", fot.data_center.index() as u64)
                    .uint("product_line", fot.product_line.index() as u64)
                    .str("device", fot.device.name())
                    .str("device_path", &fot.device_path())
                    .str("failure_type", fot.failure_type.name())
                    .uint("error_time_secs", fot.error_time.as_secs())
                    .str("category", fot.category.name());
                body.push_str(&row.finish());
            }
        }
    }
    body.push_str("]}");
    Response::ok(body)
}
