//! `dcf-serve` — a long-lived HTTP query service over the dcfail
//! simulation + study pipeline.
//!
//! The service turns the batch pipeline (`dcf-sim` → `dcf-core`) into an
//! interactive one: clients `POST /simulate` a `(scenario, seed, threads)`
//! triple and then read study sections and paged tickets back without
//! recomputing anything. Endpoints:
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /simulate` | Run (or fetch cached) scenario → trace digest + summary |
//! | `GET /report/{section}` | One of the six study sections over the cached trace |
//! | `GET /trace/{digest}/fots?offset&limit` | Paged ticket reads |
//! | `GET /catalog` | List the pinned snapshot catalog entries |
//! | `POST /catalog/reload` | Rescan the catalog directory (also SIGHUP) |
//! | `GET /healthz` | Liveness probe |
//! | `GET /metrics` | `dcf-obs` run-report snapshot |
//!
//! Architecture (documented in depth in the repository's `SERVING.md`):
//! one event-loop thread owns every socket on a raw-syscall epoll
//! [`poller`] (with `poll(2)` and portable scan fallbacks) and speaks
//! pipelined HTTP/1.1 keep-alive with per-connection buffers and idle
//! timeouts; a bounded queue feeds a worker pool that computes responses
//! and hands them back through a completion list + [`poller::Waker`].
//! Snapshots are served from a [`catalog`] of mmap-backed `.dcfsnap`
//! files, pinned and reloadable at runtime (SIGHUP or
//! `POST /catalog/reload`).
//!
//! Design constraints carried over from the rest of the workspace: no
//! heavyweight dependencies (std sockets + raw syscalls + `crossbeam`
//! scoped threads + the `dcf-obs` JSON module), determinism as the
//! caching contract (runs are pure functions of `(scenario-hash, seed)`,
//! so the LRU [`ResponseCache`] never revalidates), and explicit
//! overload behaviour (bounded request queue ⇒ `503` + `Retry-After` +
//! `Connection: close`, per-request deadlines, graceful drain on
//! shutdown).

#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
mod event_loop;
pub mod http;
pub mod mmap;
pub mod poller;
pub mod queue;
pub mod sections;
pub mod server;
pub mod signal;

pub use cache::{CacheKey, ResponseCache};
pub use catalog::{Catalog, CatalogEntryInfo, ReloadSummary};
pub use http::{Request, Response};
pub use poller::{Interest, Poller, Waker};
pub use queue::BoundedQueue;
pub use sections::SECTIONS;
pub use server::{ServeConfig, Server};
