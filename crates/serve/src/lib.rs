//! `dcf-serve` — a long-lived HTTP query service over the dcfail
//! simulation + study pipeline.
//!
//! The service turns the batch pipeline (`dcf-sim` → `dcf-core`) into an
//! interactive one: clients `POST /v1/simulate` a `(scenario, seed,
//! threads)` triple and then read study sections and paged tickets back
//! without recomputing anything. The API lives under `/v1/`; the
//! pre-versioning paths answer `308 Permanent Redirect` to their `/v1`
//! home (method and body preserved, query string carried along).
//! Endpoints:
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /v1/simulate` | Run (or fetch cached) scenario → trace digest + summary |
//! | `GET /v1/report/{section}` | One of the six study sections over the cached trace |
//! | `GET /v1/trace/{digest}/fots?offset&limit` | Paged ticket reads |
//! | `GET /v1/replay/{scenario}?speed=N` | Chunked NDJSON replay stream with online detections |
//! | `GET /v1/catalog` | List the pinned snapshot catalog entries |
//! | `POST /v1/catalog/reload` | Rescan the catalog directory (also SIGHUP) |
//! | `GET /healthz` | Liveness probe (unversioned) |
//! | `GET /metrics` | `dcf-obs` run-report snapshot (unversioned) |
//!
//! `/v1/replay` is the service's one streaming endpoint: the response is
//! `Transfer-Encoding: chunked`, one NDJSON line per chunk — every FOT
//! of the replayed trace in virtual-time order, detection events from
//! the three online detectors inline, and a final summary line with the
//! event digest and precision/recall scores. `speed` is simulated days
//! per wall second (`0` = no pacing); pacing happens on the event loop,
//! so a paced stream never holds a worker thread.
//!
//! Architecture (documented in depth in the repository's `SERVING.md`):
//! `--loops L` sharded event-loop threads each own a disjoint slice of
//! the sockets on their own raw-syscall epoll [`poller`] instance (with
//! `poll(2)` and portable scan fallbacks) and speak pipelined HTTP/1.1
//! keep-alive with per-connection buffers and idle timeouts. Accepts
//! spread over the loops via a group of `SO_REUSEPORT` listeners where
//! the platform supports it, or a round-robin handoff from loop 0
//! otherwise; a connection never migrates after adoption. A bounded
//! queue feeds a shared worker pool that computes responses and hands
//! them back through per-loop completion lists + [`poller::Waker`]s.
//! The run cache, gzip section cache, and snapshot [`catalog`] are
//! shared behind `Arc`, so responses are byte-identical whichever loop
//! serves them. Large bodies spill onto the chunked-transfer path and
//! `Accept-Encoding: gzip` is honored on report/fots routes with an
//! in-crate DEFLATE encoder ([`gzip`]). Snapshots are served from a
//! [`catalog`] of mmap-backed `.dcfsnap` files, pinned and reloadable
//! at runtime (SIGHUP or `POST /catalog/reload`).
//!
//! Design constraints carried over from the rest of the workspace: no
//! heavyweight dependencies (std sockets + raw syscalls + `crossbeam`
//! scoped threads + the `dcf-obs` JSON module), determinism as the
//! caching contract (runs are pure functions of `(scenario-hash, seed)`,
//! so the LRU [`ResponseCache`] never revalidates), and explicit
//! overload behaviour (bounded request queue ⇒ `503` + `Retry-After` +
//! `Connection: close`, per-request deadlines, graceful drain on
//! shutdown).

#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
mod event_loop;
pub mod gzip;
pub mod http;
pub mod mmap;
pub mod poller;
pub mod queue;
pub mod sections;
pub mod server;
pub mod signal;

pub use cache::{CacheKey, ResponseCache};
pub use catalog::{Catalog, CatalogEntryInfo, ReloadSummary};
pub use http::{Request, Response, StreamBody};
pub use poller::{Interest, Poller, Waker};
pub use queue::BoundedQueue;
pub use sections::SECTIONS;
pub use server::{ServeConfig, Server};
