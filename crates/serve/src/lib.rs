//! `dcf-serve` — a long-lived HTTP query service over the dcfail
//! simulation + study pipeline.
//!
//! The service turns the batch pipeline (`dcf-sim` → `dcf-core`) into an
//! interactive one: clients `POST /simulate` a `(scenario, seed, threads)`
//! triple and then read study sections and paged tickets back without
//! recomputing anything. Endpoints:
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /simulate` | Run (or fetch cached) scenario → trace digest + summary |
//! | `GET /report/{section}` | One of the six study sections over the cached trace |
//! | `GET /trace/{digest}/fots?offset&limit` | Paged ticket reads |
//! | `GET /healthz` | Liveness probe |
//! | `GET /metrics` | `dcf-obs` run-report snapshot |
//!
//! Design constraints carried over from the rest of the workspace: no
//! heavyweight dependencies (std `TcpListener` + `crossbeam` scoped
//! threads + the `dcf-obs` JSON module), determinism as the caching
//! contract (runs are pure functions of `(scenario-hash, seed)`, so the
//! LRU [`ResponseCache`] never revalidates), and explicit overload
//! behaviour (bounded accept queue ⇒ `503` + `Retry-After`, per-request
//! deadlines, graceful drain on shutdown).

#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod queue;
pub mod sections;
pub mod server;
pub mod signal;

pub use cache::{CacheKey, ResponseCache};
pub use http::{Request, Response};
pub use queue::BoundedQueue;
pub use sections::SECTIONS;
pub use server::{ServeConfig, Server};
