//! Readiness polling over raw syscalls: the event loop's `epoll` core.
//!
//! The workspace is zero-dependency, so — like [`crate::signal`] — the
//! three primitives the event loop needs are issued directly as Linux
//! syscalls: `epoll_create1(2)` / `epoll_ctl(2)` / `epoll_pwait(2)`. A
//! `poll(2)`-style backend (via `ppoll(2)`, rebuilt from the registration
//! table on every wait) ships alongside it so the readiness semantics can
//! be cross-checked without epoll, and on platforms with no raw-syscall
//! support at all the poller degrades to a timed readiness *scan*: every
//! registered token is reported ready after a short sleep, which is
//! correct — just not cheap — because every consumer of readiness in
//! [`crate::server`] treats `WouldBlock` as "not actually ready" (the
//! level-triggered contract).
//!
//! All registrations carry a caller-chosen `u64` token; the poller never
//! owns or closes the file descriptors it watches (except its own epoll
//! fd). [`Waker`] is the cross-thread wake-up primitive: a nonblocking
//! loopback TCP pair whose read end lives in the poller set, so worker
//! threads can interrupt an `epoll_pwait` by writing one byte.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

/// Whether this build has the raw-syscall backends (`epoll` + `poll`).
pub const SYSCALL_SUPPORTED: bool = cfg!(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

/// A raw file descriptor as the poller sees it.
#[cfg(unix)]
pub type RawFd = std::os::unix::io::RawFd;
/// A raw file descriptor as the poller sees it (dummy off Unix — the scan
/// backend never dereferences it).
#[cfg(not(unix))]
pub type RawFd = i32;

/// Extracts the raw fd of a socket for registration.
#[cfg(unix)]
pub fn raw_fd<T: std::os::unix::io::AsRawFd>(socket: &T) -> RawFd {
    socket.as_raw_fd()
}

/// Extracts the raw fd of a socket for registration (placeholder off
/// Unix; the scan backend keys purely on tokens).
#[cfg(not(unix))]
pub fn raw_fd<T>(_socket: &T) -> RawFd {
    0
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the file descriptor was registered under.
    pub token: u64,
    /// Readable (or a pending accept on a listener).
    pub readable: bool,
    /// Writable without blocking.
    pub writable: bool,
    /// Peer hang-up or error condition; the owner should reap the
    /// connection after draining what is still readable.
    pub closed: bool,
}

/// Read/write interest for a registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake on readability.
    pub read: bool,
    /// Wake on writability.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        read: true,
        write: true,
    };
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub(crate) mod sys {
    use std::arch::asm;

    #[cfg(target_arch = "x86_64")]
    pub mod nr {
        pub const CLOSE: usize = 3;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_CREATE1: usize = 291;
        pub const EPOLL_PWAIT: usize = 281;
        pub const PPOLL: usize = 271;
        pub const MMAP: usize = 9;
        pub const MUNMAP: usize = 11;
        pub const SOCKET: usize = 41;
        pub const BIND: usize = 49;
        pub const LISTEN: usize = 50;
        pub const SETSOCKOPT: usize = 54;
    }
    #[cfg(target_arch = "aarch64")]
    pub mod nr {
        pub const CLOSE: usize = 57;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_PWAIT: usize = 22;
        pub const PPOLL: usize = 73;
        pub const MMAP: usize = 222;
        pub const MUNMAP: usize = 215;
        pub const SOCKET: usize = 198;
        pub const BIND: usize = 200;
        pub const LISTEN: usize = 201;
        pub const SETSOCKOPT: usize = 208;
    }

    #[repr(C)]
    pub struct Timespec {
        pub tv_sec: i64,
        pub tv_nsec: i64,
    }

    #[cfg(target_arch = "x86_64")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
        ret
    }

    pub fn check(ret: isize) -> std::io::Result<usize> {
        if ret < 0 {
            Err(std::io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod epoll_imp {
    use super::sys::{check, nr, syscall6, Timespec};
    use super::{Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    const EPOLL_CLOEXEC: usize = 0x8_0000;
    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// The kernel's `struct epoll_event`: packed on x86_64, naturally
    /// aligned (16 bytes) elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    pub struct Epoll {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            let epfd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
            Ok(Epoll {
                epfd: epfd as RawFd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&self, op: usize, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut mask = EPOLLRDHUP;
            if interest.read {
                mask |= EPOLLIN;
            }
            if interest.write {
                mask |= EPOLLOUT;
            }
            let event = EpollEvent {
                events: mask,
                data: token,
            };
            check(unsafe {
                syscall6(
                    nr::EPOLL_CTL,
                    self.epfd as usize,
                    op,
                    fd as usize,
                    std::ptr::addr_of!(event) as usize,
                    0,
                    0,
                )
            })
            .map(|_| ())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READ)
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as usize;
            let n = match check(unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    self.epfd as usize,
                    self.buf.as_mut_ptr() as usize,
                    self.buf.len(),
                    timeout_ms,
                    0, // no sigmask: plain epoll_wait semantics
                    8,
                )
            }) {
                Ok(n) => n,
                // A signal interrupting the wait is a spurious (empty) wake.
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for raw in &self.buf[..n] {
                let mask = raw.events;
                events.push(Event {
                    token: raw.data,
                    readable: mask & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                    writable: mask & EPOLLOUT != 0,
                    closed: mask & (EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            let _ = unsafe { syscall6(nr::CLOSE, self.epfd as usize, 0, 0, 0, 0, 0) };
        }
    }

    // ---------------------------------------------------------- ppoll

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLRDHUP: i16 = 0x2000;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    /// The `poll(2)` fallback: a flat registration table rebuilt into a
    /// `pollfd` array on every wait.
    pub struct Poll {
        registered: Vec<(RawFd, u64, Interest)>,
    }

    impl Poll {
        pub fn new() -> Poll {
            Poll {
                registered: Vec::new(),
            }
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.deregister(fd).ok();
            self.registered.push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.registered.retain(|(f, _, _)| *f != fd);
            Ok(())
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .registered
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: if interest.read { POLLIN | POLLRDHUP } else { 0 }
                        | if interest.write { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let ts = Timespec {
                tv_sec: timeout.as_secs().min(i64::MAX as u64) as i64,
                tv_nsec: i64::from(timeout.subsec_nanos()),
            };
            let n = match check(unsafe {
                syscall6(
                    nr::PPOLL,
                    fds.as_mut_ptr() as usize,
                    fds.len(),
                    std::ptr::addr_of!(ts) as usize,
                    0, // no sigmask
                    8,
                    0,
                )
            }) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            if n > 0 {
                for (raw, &(_, token, _)) in fds.iter().zip(&self.registered) {
                    let mask = raw.revents;
                    if mask == 0 {
                        continue;
                    }
                    events.push(Event {
                        token,
                        readable: mask & (POLLIN | POLLHUP | POLLRDHUP | POLLERR) != 0,
                        writable: mask & POLLOUT != 0,
                        closed: mask & (POLLHUP | POLLRDHUP | POLLERR) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

/// Whether this build can create `SO_REUSEPORT` listener groups (same
/// raw-syscall platforms as the epoll backend).
pub const REUSEPORT_SUPPORTED: bool = SYSCALL_SUPPORTED;

/// Creates a nonblocking IPv4 `TcpListener` bound to `addr` with
/// `SO_REUSEPORT` (and `SO_REUSEADDR`) set before the bind, so several
/// event loops can each own a listener on the same address and let the
/// kernel spread incoming connections across them.
///
/// # Errors
///
/// `Unsupported` on platforms without the raw-syscall backends or for
/// IPv6 addresses (callers fall back to the single-acceptor handoff);
/// otherwise propagates the socket/bind/listen failure.
pub fn reuseport_listener(addr: std::net::SocketAddr) -> io::Result<TcpListener> {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        use std::os::unix::io::FromRawFd;

        const AF_INET: usize = 2;
        const SOCK_STREAM: usize = 1;
        const SOCK_CLOEXEC: usize = 0x8_0000;
        const SOL_SOCKET: usize = 1;
        const SO_REUSEADDR: usize = 2;
        const SO_REUSEPORT: usize = 15;
        const BACKLOG: usize = 1024;

        let std::net::SocketAddr::V4(v4) = addr else {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "SO_REUSEPORT listener groups are IPv4-only here",
            ));
        };
        let fd = sys::check(unsafe {
            sys::syscall6(
                sys::nr::SOCKET,
                AF_INET,
                SOCK_STREAM | SOCK_CLOEXEC,
                0,
                0,
                0,
                0,
            )
        })? as RawFd;
        // From here on the fd must reach TcpListener (which owns closing
        // it) or be closed on the error path.
        let result = (|| {
            let one: i32 = 1;
            for opt in [SO_REUSEADDR, SO_REUSEPORT] {
                sys::check(unsafe {
                    sys::syscall6(
                        sys::nr::SETSOCKOPT,
                        fd as usize,
                        SOL_SOCKET,
                        opt,
                        std::ptr::addr_of!(one) as usize,
                        std::mem::size_of::<i32>(),
                        0,
                    )
                })?;
            }
            // struct sockaddr_in: family, big-endian port, big-endian
            // address, 8 bytes of zero padding.
            let mut sockaddr = [0u8; 16];
            sockaddr[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
            sockaddr[2..4].copy_from_slice(&v4.port().to_be_bytes());
            sockaddr[4..8].copy_from_slice(&v4.ip().octets());
            sys::check(unsafe {
                sys::syscall6(
                    sys::nr::BIND,
                    fd as usize,
                    sockaddr.as_ptr() as usize,
                    sockaddr.len(),
                    0,
                    0,
                    0,
                )
            })?;
            sys::check(unsafe {
                sys::syscall6(sys::nr::LISTEN, fd as usize, BACKLOG, 0, 0, 0, 0)
            })?;
            Ok(())
        })();
        if let Err(e) = result {
            let _ = unsafe { sys::syscall6(sys::nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
            return Err(e);
        }
        let listener = unsafe { TcpListener::from_raw_fd(fd) };
        listener.set_nonblocking(true)?;
        Ok(listener)
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        let _ = addr;
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_REUSEPORT listener groups need the raw-syscall backends",
        ))
    }
}

/// The portable last-resort backend: report every registered token as
/// ready after a short sleep. Correct under the level-triggered contract
/// (consumers retry and treat `WouldBlock` as not-ready), but it burns a
/// wake-up per interval — a functional fallback, not a fast path.
struct Scan {
    registered: Vec<(RawFd, u64, Interest)>,
}

impl Scan {
    const INTERVAL: Duration = Duration::from_millis(2);

    fn new() -> Scan {
        Scan {
            registered: Vec::new(),
        }
    }

    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) {
        self.deregister(fd);
        self.registered.push((fd, token, interest));
    }

    fn deregister(&mut self, fd: RawFd) {
        self.registered.retain(|(f, _, _)| *f != fd);
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) {
        std::thread::sleep(timeout.min(Self::INTERVAL));
        for &(_, token, interest) in &self.registered {
            events.push(Event {
                token,
                readable: interest.read,
                writable: interest.write,
                closed: false,
            });
        }
    }
}

enum BackendImpl {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Epoll(epoll_imp::Epoll),
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Poll(epoll_imp::Poll),
    Scan(Scan),
}

/// A level-triggered readiness poller over one of three backends:
/// `epoll` (default where supported), `poll` (`ppoll(2)`), or the
/// portable `scan` fallback.
pub struct Poller {
    backend: BackendImpl,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend_name())
            .finish()
    }
}

impl Poller {
    /// Opens a poller. `preference` may name a backend (`"epoll"`,
    /// `"poll"`, `"scan"`); `None` picks the best supported one. Asking
    /// for a raw-syscall backend on a platform without one falls back to
    /// `scan` rather than failing, so configs stay portable.
    pub fn new(preference: Option<&str>) -> io::Result<Poller> {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            Ok(match preference {
                Some("scan") => Poller {
                    backend: BackendImpl::Scan(Scan::new()),
                },
                Some("poll") => Poller {
                    backend: BackendImpl::Poll(epoll_imp::Poll::new()),
                },
                _ => Poller {
                    backend: BackendImpl::Epoll(epoll_imp::Epoll::new()?),
                },
            })
        }
        #[cfg(not(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        {
            let _ = preference;
            Ok(Poller {
                backend: BackendImpl::Scan(Scan::new()),
            })
        }
    }

    /// The active backend's name (`"epoll"`, `"poll"`, or `"scan"`).
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            BackendImpl::Epoll(_) => "epoll",
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            BackendImpl::Poll(_) => "poll",
            BackendImpl::Scan(_) => "scan",
        }
    }

    /// Starts watching `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures (bad fd, duplicate registration).
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            BackendImpl::Epoll(e) => e.register(fd, token, interest),
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            BackendImpl::Poll(p) => p.register(fd, token, interest),
            BackendImpl::Scan(s) => {
                s.register(fd, token, interest);
                Ok(())
            }
        }
    }

    /// Updates the interest set of an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures (unknown fd).
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            BackendImpl::Epoll(e) => e.modify(fd, token, interest),
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            BackendImpl::Poll(p) => p.modify(fd, token, interest),
            BackendImpl::Scan(s) => {
                s.register(fd, token, interest);
                Ok(())
            }
        }
    }

    /// Stops watching `fd`. Harmless if it was never registered.
    pub fn deregister(&mut self, fd: RawFd) {
        match &mut self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            BackendImpl::Epoll(e) => {
                let _ = e.deregister(fd);
            }
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            BackendImpl::Poll(p) => {
                let _ = p.deregister(fd);
            }
            BackendImpl::Scan(s) => s.deregister(fd),
        }
    }

    /// Blocks until at least one registered descriptor is ready or
    /// `timeout` elapses, appending readiness reports to `events` (which
    /// is cleared first).
    ///
    /// # Errors
    ///
    /// Propagates wait-syscall failures; signal interruptions surface as
    /// an empty event set, not an error.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        events.clear();
        match &mut self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            BackendImpl::Epoll(e) => e.wait(events, timeout),
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            BackendImpl::Poll(p) => p.wait(events, timeout),
            BackendImpl::Scan(s) => {
                s.wait(events, timeout);
                Ok(())
            }
        }
    }
}

/// Cross-thread wake-up for a blocked [`Poller::wait`]: a nonblocking
/// loopback TCP pair. Workers write a byte into the send half; the
/// receive half sits in the poller set and becomes readable.
///
/// TCP instead of a pipe keeps the primitive dependency-free and
/// portable; `TCP_NODELAY` on the send half makes the wake immediate.
#[derive(Debug)]
pub struct Waker {
    tx: Mutex<TcpStream>,
}

impl Waker {
    /// Builds the pair: the [`Waker`] plus the receive stream to register
    /// in the poller (already nonblocking).
    ///
    /// # Errors
    ///
    /// Propagates loopback socket failures.
    pub fn pair() -> io::Result<(Waker, TcpStream)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        tx.set_nonblocking(true)?;
        tx.set_nodelay(true)?;
        rx.set_nonblocking(true)?;
        Ok((Waker { tx: Mutex::new(tx) }, rx))
    }

    /// Makes the receive half readable. Never blocks; a full socket
    /// buffer means wake-ups are already pending, which is just as good.
    pub fn wake(&self) {
        use std::io::Write;
        if let Ok(mut tx) = self.tx.lock() {
            let _ = tx.write(&[1]);
        }
    }

    /// Drains pending wake bytes from the receive half after it polled
    /// readable.
    pub fn drain(rx: &mut TcpStream) {
        use std::io::Read;
        let mut scratch = [0u8; 256];
        while let Ok(n) = rx.read(&mut scratch) {
            if n == 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    /// Every backend must report a listener readable once a client
    /// connects, and time out quietly when nothing happens.
    fn exercise(preference: Option<&str>) {
        let mut poller = Poller::new(preference).expect("poller opens");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .register(raw_fd(&listener), 7, Interest::READ)
            .expect("register listener");

        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_millis(20))
            .expect("wait");
        // Scan over-reports by design; epoll/poll must be silent.
        if poller.backend_name() != "scan" {
            assert!(events.is_empty(), "no client yet: {events:?}");
        }

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        let mut saw_accept = false;
        while std::time::Instant::now() < deadline {
            poller
                .wait(&mut events, Duration::from_millis(50))
                .expect("wait");
            if events.iter().any(|e| e.token == 7 && e.readable) {
                saw_accept = true;
                break;
            }
        }
        assert!(saw_accept, "listener readiness never reported");
        poller.deregister(raw_fd(&listener));
    }

    #[test]
    fn default_backend_reports_accept_readiness() {
        exercise(None);
    }

    #[test]
    fn poll_backend_reports_accept_readiness() {
        exercise(Some("poll"));
    }

    #[test]
    fn scan_backend_reports_accept_readiness() {
        exercise(Some("scan"));
    }

    #[test]
    fn reuseport_listeners_share_an_address() {
        if !REUSEPORT_SUPPORTED {
            return;
        }
        let first = reuseport_listener("127.0.0.1:0".parse().unwrap()).expect("first listener");
        let addr = first.local_addr().expect("bound address");
        assert_ne!(addr.port(), 0, "bind resolved an ephemeral port");
        let second = reuseport_listener(addr).expect("second listener on the same port");
        let _client = TcpStream::connect(addr).expect("connect into the group");
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        let mut accepted = false;
        while std::time::Instant::now() < deadline && !accepted {
            for listener in [&first, &second] {
                match listener.accept() {
                    Ok(_) => {
                        accepted = true;
                        break;
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("accept failed: {e}"),
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(accepted, "no listener in the group saw the connection");
    }

    #[test]
    fn waker_wakes_a_blocked_wait() {
        let mut poller = Poller::new(None).expect("poller opens");
        let (waker, mut rx) = Waker::pair().expect("waker pair");
        poller
            .register(raw_fd(&rx), 42, Interest::READ)
            .expect("register waker");
        let waker = std::sync::Arc::new(waker);
        let w = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w.wake();
        });
        let start = std::time::Instant::now();
        let mut events = Vec::new();
        let mut woken = false;
        while start.elapsed() < Duration::from_secs(2) {
            poller
                .wait(&mut events, Duration::from_millis(250))
                .expect("wait");
            if events.iter().any(|e| e.token == 42 && e.readable) {
                woken = true;
                break;
            }
        }
        handle.join().unwrap();
        assert!(woken, "wake byte never surfaced");
        Waker::drain(&mut rx);
        // Drained: a subsequent nonblocking read would block again.
        use std::io::Read;
        let mut buf = [0u8; 8];
        assert!(matches!(
            rx.read(&mut buf),
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock
        ));
        drop(waker);
        let _ = writeln!(std::io::sink(), "backend: {}", poller.backend_name());
    }
}
