//! Read-only `mmap(2)` file access for catalog snapshot loading.
//!
//! Loading a `.dcfsnap` file through `std::fs::read` copies the whole
//! file into a heap buffer before the snapshot decoder ever sees it. The
//! catalog instead maps the file read-only and hands the decoder a slice
//! straight over the page cache — the kernel faults pages in as the
//! decoder walks the columns, and no intermediate copy of the file bytes
//! is made. Like [`crate::poller`] and [`crate::signal`], the syscalls
//! are issued raw to keep the crate zero-dependency; platforms without
//! the raw-syscall layer fall back to an ordinary buffered read, which is
//! slower but byte-identical.

use std::fs::File;
use std::io;

/// File bytes, either memory-mapped or (on fallback platforms) heap-read.
///
/// Dropping unmaps. The mapping is private and read-only, so it never
/// writes back; concurrent truncation of the underlying file would fault,
/// which is why the catalog treats snapshot files as immutable once
/// published (see `SERVING.md`).
pub struct MappedBytes {
    data: Data,
}

enum Data {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Heap(Vec<u8>),
}

impl MappedBytes {
    /// The file contents as a slice.
    pub fn bytes(&self) -> &[u8] {
        match &self.data {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Data::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Data::Heap(v) => v,
        }
    }

    /// Whether the bytes come from an actual `mmap` (false on the
    /// buffered-read fallback or for empty files).
    pub fn is_mapped(&self) -> bool {
        match &self.data {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Data::Mapped { .. } => true,
            Data::Heap(_) => false,
        }
    }

    /// Number of bytes in the file.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for MappedBytes {
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Data::Mapped { ptr, len } = self.data {
            use crate::poller::sys;
            let _ = unsafe { sys::syscall6(sys::nr::MUNMAP, ptr as usize, len, 0, 0, 0, 0) };
        }
    }
}

/// Opens `path` read-only as a [`MappedBytes`].
///
/// On Linux x86_64/aarch64 this is a real `mmap(PROT_READ, MAP_PRIVATE)`;
/// elsewhere (and for empty files, which `mmap` rejects) it degrades to a
/// buffered read of the whole file.
///
/// # Errors
///
/// Propagates open/stat/map failures from the OS.
pub fn map_file(path: &str) -> io::Result<MappedBytes> {
    let file = File::open(path)?;
    let len = file.metadata()?.len();
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        use crate::poller::sys;
        use std::os::unix::io::AsRawFd;

        const PROT_READ: usize = 0x1;
        const MAP_PRIVATE: usize = 0x2;

        if len == 0 {
            return Ok(MappedBytes {
                data: Data::Heap(Vec::new()),
            });
        }
        if len > usize::MAX as u64 {
            return Err(io::Error::other("file too large to map"));
        }
        let ptr = sys::check(unsafe {
            sys::syscall6(
                sys::nr::MMAP,
                0,
                len as usize,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd() as usize,
                0,
            )
        })?;
        // `file` may close now: the mapping keeps its own reference.
        Ok(MappedBytes {
            data: Data::Mapped {
                ptr: ptr as *const u8,
                len: len as usize,
            },
        })
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len as usize);
        let mut file = file;
        file.read_to_end(&mut buf)?;
        Ok(MappedBytes {
            data: Data::Heap(buf),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn mapped_bytes_match_file_contents() {
        let dir = std::env::temp_dir().join(format!("dcf-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.bin");
        let payload: Vec<u8> = (0..10_000u32).flat_map(|v| v.to_le_bytes()).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();

        let mapped = map_file(path.to_str().unwrap()).expect("map");
        assert_eq!(mapped.bytes(), &payload[..]);
        assert_eq!(mapped.len(), payload.len());
        if crate::poller::SYSCALL_SUPPORTED {
            assert!(mapped.is_mapped(), "linux build should really mmap");
        }
        drop(mapped);
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(map_file("/nonexistent/definitely/missing.dcfsnap").is_err());
    }
}
