//! End-to-end tests for the query service: cache byte-identity under
//! concurrency, keep-alive pipelining, catalog serving + reload,
//! idle-timeout reaping, bounded-queue backpressure (including the shed ×
//! keep-alive interaction), and graceful drain.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use dcf_obs::MetricsRegistry;
use dcf_serve::{ServeConfig, Server};

/// One full HTTP exchange: status, lowercase header pairs, body.
#[derive(Debug)]
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive client: one connection, many content-length-framed
/// exchanges (the read-to-EOF idiom only works for `Connection: close`).
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, raw: &str) {
        self.stream.write_all(raw.as_bytes()).expect("send request");
    }

    /// Reads exactly one response off the connection (more may follow —
    /// that is pipelining).
    fn read_reply(&mut self) -> Reply {
        let (status, headers, body) = self.read_reply_raw();
        Reply {
            status,
            headers,
            body: String::from_utf8(body).expect("UTF-8 body"),
        }
    }

    /// Like [`Self::read_reply`] but keeps the body as raw bytes —
    /// required for `Content-Encoding: gzip` responses.
    fn read_reply_raw(&mut self) -> (u16, Vec<(String, String)>, Vec<u8>) {
        let head_len = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            self.fill("response head");
        };
        let head = String::from_utf8(self.buf[..head_len].to_vec()).expect("UTF-8 head");
        let content_length: usize = head
            .lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .map(|(_, v)| v.trim().parse().expect("numeric content-length"))
            .expect("response has content-length");
        while self.buf.len() < head_len + content_length {
            self.fill("response body");
        }
        let body = self.buf[head_len..head_len + content_length].to_vec();
        self.buf.drain(..head_len + content_length);

        let (status, headers) = parse_head(&head);
        (status, headers, body)
    }

    /// Reads one `Transfer-Encoding: chunked` response off the
    /// connection, decoding the chunk framing; the returned body is the
    /// reassembled payload bytes.
    fn read_chunked_reply(&mut self) -> Reply {
        let (status, headers, body) = self.read_chunked_raw();
        Reply {
            status,
            headers,
            body: String::from_utf8(body).expect("UTF-8 body"),
        }
    }

    /// Like [`Self::read_chunked_reply`] but keeps the reassembled
    /// payload as raw bytes — required for gzip bodies spilled onto the
    /// chunked path.
    fn read_chunked_raw(&mut self) -> (u16, Vec<(String, String)>, Vec<u8>) {
        let head_len = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            self.fill("response head");
        };
        let head = String::from_utf8(self.buf[..head_len].to_vec()).expect("UTF-8 head");
        self.buf.drain(..head_len);
        let (status, headers) = parse_head(&head);
        assert_eq!(
            headers
                .iter()
                .find(|(k, _)| k == "transfer-encoding")
                .map(|(_, v)| v.as_str()),
            Some("chunked"),
            "streaming response must be chunked: {head}"
        );
        let mut body = Vec::new();
        loop {
            let size_end = loop {
                if let Some(i) = self.buf.windows(2).position(|w| w == b"\r\n") {
                    break i;
                }
                self.fill("chunk size line");
            };
            let size = usize::from_str_radix(
                std::str::from_utf8(&self.buf[..size_end])
                    .expect("UTF-8 size")
                    .trim(),
                16,
            )
            .expect("hex chunk size");
            let frame_len = size_end + 2 + size + 2;
            while self.buf.len() < frame_len {
                self.fill("chunk payload");
            }
            assert_eq!(
                &self.buf[size_end + 2 + size..frame_len],
                b"\r\n",
                "chunk payload must end with CRLF"
            );
            body.extend_from_slice(&self.buf[size_end + 2..size_end + 2 + size]);
            self.buf.drain(..frame_len);
            if size == 0 {
                break;
            }
        }
        (status, headers, body)
    }

    fn fill(&mut self, what: &str) {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk).expect("read");
        assert!(n > 0, "connection closed while waiting for {what}");
        self.buf.extend_from_slice(&chunk[..n]);
    }

    /// True when the server half-closed: the next read yields EOF (after
    /// any buffered bytes, which must be none).
    fn at_eof(&mut self) -> bool {
        assert!(self.buf.is_empty(), "unread bytes: {:?}", self.buf);
        let mut chunk = [0u8; 64];
        matches!(self.stream.read(&mut chunk), Ok(0))
    }
}

/// Splits a response head into (status, lowercase header pairs).
fn parse_head(head: &str) -> (u16, Vec<(String, String)>) {
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers)
}

/// One-shot exchange with `Connection: close` (read to EOF).
fn exchange(addr: std::net::SocketAddr, raw: &str) -> Reply {
    let mut client = Client::connect(addr);
    client.send(raw);
    let reply = client.read_reply();
    assert_eq!(reply.header("connection"), Some("close"));
    reply
}

fn get(addr: std::net::SocketAddr, path: &str) -> Reply {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"),
    )
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> Reply {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get_keep_alive(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n")
}

fn post_keep_alive(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Simulates a small-scenario trace and writes it as a `.dcfsnap` file.
fn write_snapshot(path: &std::path::Path, seed: u64) -> String {
    use dcf_sim::{RunOptions, Scenario};
    let trace = Scenario::small()
        .seed(seed)
        .simulate(&RunOptions::default())
        .expect("scenario simulates");
    dcf_trace::io::snapshot::write_snapshot(&trace, path).expect("snapshot writes");
    format!("{:016x}", dcf_trace::io::fots_digest(trace.fots()))
}

#[test]
fn healthz_and_metrics_respond() {
    let metrics = MetricsRegistry::new();
    let server = Server::start(ServeConfig::default().addr("127.0.0.1:0").metrics(&metrics))
        .expect("server starts");
    let addr = server.local_addr();

    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"ok\""));

    let metrics_reply = get(addr, "/metrics");
    assert_eq!(metrics_reply.status, 200);
    assert!(metrics_reply.body.contains("dcf-serve"));

    let report = server.shutdown();
    assert!(report.counter("serve.requests").unwrap_or(0) >= 2);
}

#[test]
fn concurrent_clients_get_byte_identical_cached_sections() {
    let metrics = MetricsRegistry::new();
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(4)
            .metrics(&metrics),
    )
    .expect("server starts");
    let addr = server.local_addr();

    // Prime the run, then hit the same section from several threads at once.
    let primed = post(addr, "/v1/simulate", r#"{"scenario":"small","seed":5}"#);
    assert_eq!(primed.status, 200, "simulate failed: {}", primed.body);
    assert!(primed.body.contains("\"cache\":\"miss\""));

    let path = "/v1/report/overview?scenario=small&seed=5";
    let bodies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(move || {
                    let reply = get(addr, path);
                    assert_eq!(reply.status, 200, "section failed: {}", reply.body);
                    reply.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for body in &bodies[1..] {
        assert_eq!(
            body, &bodies[0],
            "cached section bodies must be byte-identical"
        );
    }
    // The digest in the section matches the one /simulate reported.
    let section = dcf_obs::json::parse(&bodies[0]).expect("section is valid JSON");
    let sim = dcf_obs::json::parse(&primed.body).expect("simulate is valid JSON");
    assert_eq!(
        section.get("digest").and_then(|v| v.as_str()),
        sim.get("digest").and_then(|v| v.as_str())
    );

    // Re-running /simulate for the same triple is now a cache hit.
    let again = post(addr, "/v1/simulate", r#"{"scenario":"small","seed":5}"#);
    assert!(again.body.contains("\"cache\":\"hit\""));
    assert_eq!(again.body, primed.body.replace("miss", "hit"));

    // Paged ticket reads work against the reported digest.
    let digest = sim.get("digest").and_then(|v| v.as_str()).unwrap();
    let page = get(addr, &format!("/v1/trace/{digest}/fots?offset=0&limit=3"));
    assert_eq!(page.status, 200);
    let parsed = dcf_obs::json::parse(&page.body).expect("page is valid JSON");
    assert_eq!(
        parsed
            .get("fots")
            .and_then(|v| v.as_array())
            .map(<[_]>::len),
        Some(3)
    );

    let report = server.shutdown();
    assert!(report.counter("serve.cache.hits").unwrap_or(0) >= 4);
    assert_eq!(report.counter("serve.cache.misses"), Some(1));
}

#[test]
fn keep_alive_pipelining_yields_byte_identical_sections() {
    let metrics = MetricsRegistry::new();
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(2)
            .metrics(&metrics),
    )
    .expect("server starts");
    let addr = server.local_addr();

    // Prime the run so the pipelined reads are all cache hits.
    let primed = post(addr, "/v1/simulate", r#"{"scenario":"small","seed":9}"#);
    assert_eq!(primed.status, 200, "simulate failed: {}", primed.body);
    let reference = get(addr, "/v1/report/overview?scenario=small&seed=9").body;

    // One connection, four pipelined requests written back-to-back in a
    // single burst; responses must come back in order, each keep-alive.
    const PIPELINED: usize = 4;
    let mut client = Client::connect(addr);
    let burst = get_keep_alive("/v1/report/overview?scenario=small&seed=9").repeat(PIPELINED);
    client.send(&burst);
    let mut bodies = Vec::new();
    for i in 0..PIPELINED {
        let reply = client.read_reply();
        assert_eq!(reply.status, 200, "pipelined reply {i}: {}", reply.body);
        assert_eq!(
            reply.header("connection"),
            Some("keep-alive"),
            "pipelined reply {i} must keep the connection open"
        );
        bodies.push(reply.body);
    }
    for (i, body) in bodies.iter().enumerate() {
        assert_eq!(
            body, &reference,
            "pipelined section {i} must be byte-identical to the one-shot read"
        );
    }

    // A final Connection: close request ends the session cleanly.
    client.send(&get_keep_alive("/healthz").replace("host: t", "host: t\r\nconnection: close"));
    let last = client.read_reply();
    assert_eq!(last.status, 200);
    assert_eq!(last.header("connection"), Some("close"));
    assert!(
        client.at_eof(),
        "server must half-close after a close request"
    );

    let report = server.shutdown();
    assert!(
        report.counter("serve.keepalive.reused").unwrap_or(0) >= (PIPELINED as u64 - 1),
        "pipelined requests after the first must count as keep-alive reuse"
    );
}

#[test]
fn catalog_serves_reloads_and_404s() {
    let dir = std::env::temp_dir().join(format!("dcf-serve-catalog-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let alpha_digest = write_snapshot(&dir.join("alpha.dcfsnap"), 21);

    let metrics = MetricsRegistry::new();
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(2)
            .metrics(&metrics)
            .catalog(dir.to_str().expect("temp path is UTF-8")),
    )
    .expect("server starts with a catalog");
    let addr = server.local_addr();

    // The listing names the entry with its digest.
    let listing = get(addr, "/v1/catalog");
    assert_eq!(listing.status, 200, "listing failed: {}", listing.body);
    assert!(listing.body.contains("\"alpha\""), "{}", listing.body);
    assert!(listing.body.contains(&alpha_digest));
    assert!(listing.body.contains("\"total\":1"));

    // Catalog entries are scenarios: always cache hits, correct digest.
    let sim = post(addr, "/v1/simulate", r#"{"scenario":"alpha"}"#);
    assert_eq!(sim.status, 200, "simulate failed: {}", sim.body);
    assert!(sim.body.contains("\"cache\":\"hit\""));
    assert!(sim.body.contains(&alpha_digest));

    // Unknown names 404/400 rather than silently simulating.
    let missing = post(addr, "/v1/simulate", r#"{"scenario":"snapshot"}"#);
    assert_eq!(missing.status, 404, "expected 404: {}", missing.body);
    assert!(missing.body.contains("no snapshot preloaded"));
    let unknown = post(addr, "/v1/simulate", r#"{"scenario":"beta"}"#);
    assert_eq!(unknown.status, 400, "expected 400: {}", unknown.body);
    assert!(unknown.body.contains("catalog snapshot name"));

    // Drop a new snapshot in and reload through the admin endpoint.
    let beta_digest = write_snapshot(&dir.join("beta.dcfsnap"), 22);
    let reload = post(addr, "/v1/catalog/reload", "");
    assert_eq!(reload.status, 200, "reload failed: {}", reload.body);
    assert!(reload.body.contains("\"added\":1"), "{}", reload.body);
    assert!(reload.body.contains("\"total\":2"), "{}", reload.body);
    let beta = get(addr, "/v1/report/overview?scenario=beta");
    assert_eq!(beta.status, 200, "beta section failed: {}", beta.body);
    assert!(beta.body.contains(&beta_digest));

    // Removing the file unpins it on the next reload: name and digest 404.
    std::fs::remove_file(dir.join("alpha.dcfsnap")).unwrap();
    let reload = post(addr, "/v1/catalog/reload", "");
    assert_eq!(reload.status, 200, "reload failed: {}", reload.body);
    assert!(reload.body.contains("\"removed\":1"), "{}", reload.body);
    let gone = get(addr, &format!("/v1/trace/{alpha_digest}/fots"));
    assert_eq!(gone.status, 404, "expected 404: {}", gone.body);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn idle_keep_alive_connections_are_reaped() {
    let metrics = MetricsRegistry::new();
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .metrics(&metrics)
            .idle_timeout(Duration::from_millis(300)),
    )
    .expect("server starts");
    let addr = server.local_addr();

    // A served keep-alive connection that then goes quiet is closed by
    // the sweep once the idle timeout passes.
    let mut client = Client::connect(addr);
    client.send(&get_keep_alive("/healthz"));
    let reply = client.read_reply();
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("connection"), Some("keep-alive"));
    let start = std::time::Instant::now();
    assert!(
        client.at_eof(),
        "idle connection must be closed by the server"
    );
    let waited = start.elapsed();
    assert!(
        waited >= Duration::from_millis(200),
        "closed too eagerly: {waited:?}"
    );

    let report = server.shutdown();
    assert!(report.counter("serve.idle_closed").unwrap_or(0) >= 1);
}

#[test]
fn saturated_queue_sheds_load_with_retry_after() {
    let metrics = MetricsRegistry::new();
    let mut config = ServeConfig::default()
        .addr("127.0.0.1:0")
        .workers(1)
        .queue_depth(1)
        .metrics(&metrics);
    config.compute_delay = Duration::from_millis(400);
    let server = Server::start(config).expect("server starts");
    let addr = server.local_addr();

    // Six distinct seeds, fired concurrently at a single worker with a
    // one-deep queue: one computes, one queues, the rest must be shed.
    let replies: Vec<Reply> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|seed| {
                s.spawn(move || {
                    post(
                        addr,
                        "/v1/simulate",
                        &format!("{{\"scenario\":\"small\",\"seed\":{seed}}}"),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok = replies.iter().filter(|r| r.status == 200).count();
    let shed: Vec<&Reply> = replies.iter().filter(|r| r.status == 503).collect();
    assert_eq!(
        ok + shed.len(),
        replies.len(),
        "only 200s and 503s expected"
    );
    assert!(ok >= 1, "at least one request must be served");
    assert!(
        !shed.is_empty(),
        "a saturated one-deep queue must shed load"
    );
    for reply in &shed {
        assert!(
            reply.header("retry-after").is_some(),
            "503 responses must carry Retry-After"
        );
        assert!(reply.body.contains("error"));
    }

    let report = server.shutdown();
    assert!(report.counter("serve.rejected").unwrap_or(0) >= 1);
}

#[test]
fn shed_on_a_pipelined_connection_closes_instead_of_dangling() {
    let metrics = MetricsRegistry::new();
    let mut config = ServeConfig::default()
        .addr("127.0.0.1:0")
        .workers(1)
        .queue_depth(1)
        .metrics(&metrics);
    config.compute_delay = Duration::from_millis(600);
    let server = Server::start(config).expect("server starts");
    let addr = server.local_addr();

    // Saturate: one request computing (popped immediately), one queued.
    let mut busy = Client::connect(addr);
    busy.send(&post_keep_alive(
        "/v1/simulate",
        r#"{"scenario":"small","seed":100}"#,
    ));
    std::thread::sleep(Duration::from_millis(150));
    let mut queued = Client::connect(addr);
    queued.send(&post_keep_alive(
        "/v1/simulate",
        r#"{"scenario":"small","seed":101}"#,
    ));
    std::thread::sleep(Duration::from_millis(150));

    // A keep-alive client pipelines three requests into the full queue.
    // The first is shed: the 503 must announce Connection: close and the
    // pipelined tail must be dropped with a half-close — not left
    // dangling awaiting responses that will never come.
    let mut pipeliner = Client::connect(addr);
    let burst: String = (102..105)
        .map(|seed| {
            post_keep_alive(
                "/v1/simulate",
                &format!("{{\"scenario\":\"small\",\"seed\":{seed}}}"),
            )
        })
        .collect();
    pipeliner.send(&burst);
    let shed = pipeliner.read_reply();
    assert_eq!(shed.status, 503, "expected a shed: {}", shed.body);
    assert!(shed.header("retry-after").is_some());
    assert_eq!(
        shed.header("connection"),
        Some("close"),
        "a shed on a pipelined connection must announce close"
    );
    assert!(
        pipeliner.at_eof(),
        "server must half-close after the shed, not serve the pipelined tail"
    );

    // The saturating clients still get real answers.
    assert_eq!(busy.read_reply().status, 200);
    assert_eq!(queued.read_reply().status, 200);

    let report = server.shutdown();
    assert!(report.counter("serve.rejected").unwrap_or(0) >= 1);
}

#[test]
fn preloaded_snapshot_serves_without_simulating() {
    use dcf_sim::{RunOptions, Scenario};

    // Persist a simulated trace as a binary snapshot on disk.
    let trace = Scenario::small()
        .seed(5)
        .simulate(&RunOptions::default())
        .expect("scenario simulates");
    let path = std::env::temp_dir().join(format!("dcf-serve-snap-{}.dcfsnap", std::process::id()));
    dcf_trace::io::snapshot::write_snapshot(&trace, &path).expect("snapshot writes");
    let expected_digest = format!("{:016x}", dcf_trace::io::fots_digest(trace.fots()));

    let metrics = MetricsRegistry::new();
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(2)
            .metrics(&metrics)
            .snapshot(path.to_str().expect("temp path is UTF-8")),
    )
    .expect("server starts with a snapshot");
    let addr = server.local_addr();

    // The snapshot pseudo-scenario never simulates: always a cache hit.
    let sim = post(addr, "/v1/simulate", r#"{"scenario":"snapshot"}"#);
    assert_eq!(sim.status, 200, "simulate failed: {}", sim.body);
    assert!(sim.body.contains("\"cache\":\"hit\""));
    assert!(
        sim.body.contains(&expected_digest),
        "snapshot digest missing from {}",
        sim.body
    );

    // `--snapshot` is a one-entry catalog: the listing shows it.
    let listing = get(addr, "/v1/catalog");
    assert_eq!(listing.status, 200);
    assert!(listing.body.contains("\"snapshot\""));

    // Sections render from the preloaded trace under the same digest.
    let section = get(addr, "/v1/report/overview?scenario=snapshot");
    assert_eq!(section.status, 200, "section failed: {}", section.body);
    assert!(section.body.contains(&expected_digest));

    // Paged ticket reads come off the columnar store; spot-check a page
    // against the locally held trace.
    let page = get(
        addr,
        &format!("/v1/trace/{expected_digest}/fots?offset=2&limit=3"),
    );
    assert_eq!(page.status, 200, "fots page failed: {}", page.body);
    let parsed = dcf_obs::json::parse(&page.body).expect("page is valid JSON");
    let rows = parsed
        .get("fots")
        .and_then(|v| v.as_array())
        .expect("page has fots");
    assert_eq!(rows.len(), 3);
    let fot = &trace.fots()[2];
    let row = &rows[0];
    let device_path = fot.device_path();
    assert_eq!(
        row.get("id").and_then(|v| v.as_u64()),
        Some(fot.id.index() as u64)
    );
    assert_eq!(
        row.get("server").and_then(|v| v.as_u64()),
        Some(fot.server.index() as u64)
    );
    assert_eq!(
        row.get("device").and_then(|v| v.as_str()),
        Some(fot.device.name())
    );
    assert_eq!(
        row.get("device_path").and_then(|v| v.as_str()),
        Some(device_path.as_str())
    );
    assert_eq!(
        row.get("failure_type").and_then(|v| v.as_str()),
        Some(fot.failure_type.name())
    );
    assert_eq!(
        row.get("error_time_secs").and_then(|v| v.as_u64()),
        Some(fot.error_time.as_secs())
    );
    assert_eq!(
        row.get("category").and_then(|v| v.as_str()),
        Some(fot.category.name())
    );

    // Without a preloaded snapshot the pseudo-scenario is a 404.
    let bare_metrics = MetricsRegistry::new();
    let bare = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .metrics(&bare_metrics),
    )
    .expect("bare server starts");
    let missing = post(
        bare.local_addr(),
        "/v1/simulate",
        r#"{"scenario":"snapshot"}"#,
    );
    assert_eq!(missing.status, 404, "expected 404: {}", missing.body);
    assert!(missing.body.contains("no snapshot preloaded"));
    bare.shutdown();

    let report = server.shutdown();
    assert!(
        report.phase_ms("trace.snapshot_load").is_some(),
        "snapshot load must be instrumented"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn legacy_paths_redirect_permanently_to_v1() {
    let metrics = MetricsRegistry::new();
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(2)
            .metrics(&metrics),
    )
    .expect("server starts");
    let addr = server.local_addr();

    // GET with a query string: the Location preserves it.
    let moved = get(addr, "/report/overview?scenario=small&seed=3");
    assert_eq!(moved.status, 308, "expected a redirect: {}", moved.body);
    assert_eq!(
        moved.header("location"),
        Some("/v1/report/overview?scenario=small&seed=3")
    );

    // POST /simulate redirects too — 308 obliges the client to repeat
    // the POST (method + body) at the new location.
    let moved_post = post(addr, "/simulate", r#"{"scenario":"small","seed":3}"#);
    assert_eq!(moved_post.status, 308, "{}", moved_post.body);
    assert_eq!(moved_post.header("location"), Some("/v1/simulate"));

    // Following the redirect by hand serves the real response.
    let followed = post(
        addr,
        moved_post.header("location").unwrap(),
        r#"{"scenario":"small","seed":3}"#,
    );
    assert_eq!(followed.status, 200, "{}", followed.body);
    assert!(followed.body.contains("\"digest\""));

    // Unversioned paths that never existed still 404.
    let missing = get(addr, "/nope");
    assert_eq!(missing.status, 404);
    let missing_v1 = get(addr, "/v1/nope");
    assert_eq!(missing_v1.status, 404);

    let report = server.shutdown();
    assert!(report.counter("serve.redirects").unwrap_or(0) >= 2);
}

#[test]
fn replay_streams_chunked_ndjson_and_keeps_the_connection_alive() {
    let metrics = MetricsRegistry::new();
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(2)
            .metrics(&metrics),
    )
    .expect("server starts");
    let addr = server.local_addr();

    // Prime the run so the stream is served from cache.
    let primed = post(addr, "/v1/simulate", r#"{"scenario":"small","seed":4}"#);
    assert_eq!(primed.status, 200, "simulate failed: {}", primed.body);
    let sim = dcf_obs::json::parse(&primed.body).expect("simulate is valid JSON");
    let total_fots = sim.get("total_fots").and_then(|v| v.as_u64()).unwrap();

    // Unpaced stream on a keep-alive connection.
    let mut client = Client::connect(addr);
    client.send(&get_keep_alive("/v1/replay/small?speed=0&seed=4"));
    let reply = client.read_chunked_reply();
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.header("content-type"),
        Some("application/x-ndjson"),
        "stream must be NDJSON"
    );
    assert_eq!(reply.header("connection"), Some("keep-alive"));
    let lines: Vec<&str> = reply.body.lines().collect();
    assert!(
        lines.len() as u64 > total_fots,
        "tickets + detections + summary"
    );
    for line in &lines {
        dcf_obs::json::parse(line).expect("every stream line is one JSON object");
    }
    let tickets = lines.iter().filter(|l| l.contains("\"t\":\"fot\"")).count();
    assert_eq!(tickets as u64, total_fots, "one line per trace ticket");
    let summary = lines.last().expect("stream ends with a summary");
    assert!(summary.contains("\"t\":\"summary\""), "{summary}");
    assert!(summary.contains("\"digest\""), "{summary}");

    // The connection survives the stream: a content-length request on
    // the same socket still works.
    client.send(&get_keep_alive("/healthz"));
    let health = client.read_reply();
    assert_eq!(health.status, 200, "keep-alive after a stream");

    // A fast-but-paced replay emits the identical byte sequence — speed
    // changes pacing, never content.
    let mut paced = Client::connect(addr);
    paced.send(&get_keep_alive("/v1/replay/small?speed=100000&seed=4"));
    let paced_reply = paced.read_chunked_reply();
    assert_eq!(paced_reply.status, 200);
    assert_eq!(
        paced_reply.body, reply.body,
        "event stream must be byte-identical at every speed"
    );

    // Bad speeds are rejected before any stream starts.
    let bad = get(addr, "/v1/replay/small?speed=fast");
    assert_eq!(bad.status, 400, "{}", bad.body);
    let negative = get(addr, "/v1/replay/small?speed=-1");
    assert_eq!(negative.status, 400, "{}", negative.body);
    let unknown = get(addr, "/v1/replay/nope?speed=0");
    assert_eq!(unknown.status, 400, "{}", unknown.body);

    let report = server.shutdown();
    assert_eq!(report.counter("serve.replay.streams"), Some(2));
    assert!(report.counter("serve.replay.events").unwrap_or(0) >= 2 * total_fots);
    assert!(report.phase_ms("serve.replay.build").is_some());
}

#[test]
fn mid_stream_client_disconnect_is_reaped_and_counted() {
    let metrics = MetricsRegistry::new();
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(2)
            .metrics(&metrics),
    )
    .expect("server starts");
    let addr = server.local_addr();

    // Slow stream: at 40 simulated days per wall second the small
    // scenario's window takes several seconds to play back.
    let mut client = Client::connect(addr);
    client.send(&get_keep_alive("/v1/replay/small?speed=40"));
    let head_ok = loop {
        if client.buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break true;
        }
        client.fill("stream head");
    };
    assert!(head_ok);

    // Hang up mid-stream; the event loop must notice (peer EOF or write
    // failure), drop the connection, and count the disconnect — without
    // waiting for the remaining chunks to come due.
    drop(client);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let disconnects = metrics
            .report("probe")
            .counter("serve.replay.disconnects")
            .unwrap_or(0);
        if disconnects >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "mid-stream disconnect was never detected"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The server is still healthy for other clients.
    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);

    let report = server.shutdown();
    assert!(report.counter("serve.replay.disconnects").unwrap_or(0) >= 1);
}

#[test]
fn graceful_shutdown_completes_in_flight_requests() {
    let metrics = MetricsRegistry::new();
    let mut config = ServeConfig::default()
        .addr("127.0.0.1:0")
        .workers(1)
        .metrics(&metrics);
    config.compute_delay = Duration::from_millis(300);
    let server = Server::start(config).expect("server starts");
    let addr = server.local_addr();

    // Start a slow request, then shut the server down while it is in flight.
    let client = std::thread::spawn(move || post(addr, "/v1/simulate", r#"{"seed":77}"#));
    std::thread::sleep(Duration::from_millis(100));
    let report = server.shutdown();

    let reply = client.join().expect("client thread");
    assert_eq!(
        reply.status, 200,
        "in-flight request must complete through a graceful drain: {}",
        reply.body
    );
    assert!(reply.body.contains("\"digest\""));
    assert_eq!(report.counter("serve.requests"), Some(1));

    // The listener is gone: new connections are refused.
    assert!(TcpStream::connect(addr).is_err());
}

fn get_gzip_keep_alive(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nhost: t\r\naccept-encoding: gzip\r\n\r\n")
}

#[test]
fn gzip_sections_decode_byte_identical_across_two_loops() {
    // Two event loops in deterministic handoff mode: loop 0 accepts and
    // round-robins connections, so consecutive one-shot clients land on
    // alternating loops.
    let metrics = MetricsRegistry::new();
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(2)
            .loops(2)
            .reuseport(false)
            .metrics(&metrics),
    )
    .expect("two-loop server starts");
    let addr = server.local_addr();

    let primed = post(addr, "/v1/simulate", r#"{"scenario":"small","seed":7}"#);
    assert_eq!(primed.status, 200, "simulate failed: {}", primed.body);
    let path = "/v1/report/overview?scenario=small&seed=7";
    let identity = get(addr, path);
    assert_eq!(identity.status, 200);
    assert_eq!(identity.header("content-encoding"), None);

    // Four fresh connections — two per loop under round-robin handoff —
    // each asking for gzip. Every compressed body must be byte-identical
    // (the encode is cached once per section, shared across loops) and
    // must inflate to exactly the identity body.
    let mut compressed: Vec<Vec<u8>> = Vec::new();
    for i in 0..4 {
        let mut client = Client::connect(addr);
        client.send(&get_gzip_keep_alive(path));
        let (status, headers, body) = client.read_reply_raw();
        assert_eq!(status, 200, "gzip request {i}");
        assert_eq!(
            headers
                .iter()
                .find(|(k, _)| k == "content-encoding")
                .map(|(_, v)| v.as_str()),
            Some("gzip"),
            "request {i} negotiated gzip"
        );
        compressed.push(body);
    }
    for body in &compressed[1..] {
        assert_eq!(
            body, &compressed[0],
            "gzip bodies must be byte-identical across loops"
        );
    }
    // The small-scenario overview is tiny (~850 bytes); the big ratio
    // wins are measured on paper-scale bodies in BENCH_PR10.json. Here
    // gzip just has to shrink the payload.
    assert!(
        compressed[0].len() < identity.body.len(),
        "gzip must shrink the JSON section ({} vs {})",
        compressed[0].len(),
        identity.body.len()
    );
    let inflated = dcf_serve::gzip::gunzip(&compressed[0]).expect("server gzip inflates");
    assert_eq!(
        String::from_utf8(inflated).expect("UTF-8 section"),
        identity.body,
        "gzip and identity responses must carry the same payload"
    );

    // A single-loop server produces the very same bytes for both
    // encodings: loop count must never leak into payloads.
    let single_metrics = MetricsRegistry::new();
    let single = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(2)
            .metrics(&single_metrics),
    )
    .expect("single-loop server starts");
    let single_addr = single.local_addr();
    assert_eq!(
        post(
            single_addr,
            "/v1/simulate",
            r#"{"scenario":"small","seed":7}"#
        )
        .status,
        200
    );
    assert_eq!(
        get(single_addr, path).body,
        identity.body,
        "identity payload must match across loop counts"
    );
    let mut client = Client::connect(single_addr);
    client.send(&get_gzip_keep_alive(path));
    let (_, _, single_gzip) = client.read_reply_raw();
    assert_eq!(
        single_gzip, compressed[0],
        "gzip payload must match across loop counts"
    );
    single.shutdown();

    let report = server.shutdown();
    assert!(report.counter("serve.gzip.responses").unwrap_or(0) >= 4);
    // The encode phase ran (at least once; later hits reuse the bytes).
    assert!(report.phase_ms("serve.gzip.encode").is_some());
    // Round-robin handoff spread the connections over both loops.
    for lp in 0..2 {
        assert!(
            report
                .counter(&format!("serve.loop.{lp}.requests"))
                .unwrap_or(0)
                >= 1,
            "loop {lp} served no requests"
        );
    }
}

#[test]
fn oversized_bodies_spill_onto_the_chunked_path() {
    // A 300-byte spill threshold forces every report section — identity
    // (~850 bytes) and gzip (~450) alike — onto the chunked-transfer
    // path while /healthz stays content-length framed. Spill is decided
    // on the encoded payload, so the threshold must sit below the
    // compressed size for gzip responses to stream.
    let metrics = MetricsRegistry::new();
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(2)
            .spill_threshold(300)
            .metrics(&metrics),
    )
    .expect("server starts");
    let addr = server.local_addr();

    assert_eq!(
        post(addr, "/v1/simulate", r#"{"scenario":"small","seed":11}"#).status,
        200
    );

    // Small responses keep content-length framing.
    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    assert!(health.header("content-length").is_some());

    // Reference body from an unspilled server.
    let plain_metrics = MetricsRegistry::new();
    let plain = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(2)
            .metrics(&plain_metrics),
    )
    .expect("reference server starts");
    assert_eq!(
        post(
            plain.local_addr(),
            "/v1/simulate",
            r#"{"scenario":"small","seed":11}"#
        )
        .status,
        200
    );
    let path = "/v1/report/overview?scenario=small&seed=11";
    let reference = get(plain.local_addr(), path);
    assert_eq!(reference.status, 200);
    plain.shutdown();
    assert!(
        reference.body.len() > 300,
        "overview must exceed the spill threshold"
    );

    // The spilled section arrives chunked, on a keep-alive connection,
    // and reassembles to the identical payload.
    let mut client = Client::connect(addr);
    client.send(&get_keep_alive(path));
    let spilled = client.read_chunked_reply();
    assert_eq!(spilled.status, 200);
    assert_eq!(spilled.header("content-type"), Some("application/json"));
    assert_eq!(spilled.header("connection"), Some("keep-alive"));
    assert_eq!(
        spilled.body, reference.body,
        "spilling must not change payload bytes"
    );

    // The connection survives: a small request still works on it.
    client.send(&get_keep_alive("/healthz"));
    assert_eq!(client.read_reply().status, 200);

    // Gzip composes with spill: chunked framing + content-encoding, and
    // the reassembled bytes inflate to the same payload.
    client.send(&get_gzip_keep_alive(path));
    let (status, headers, zipped) = client.read_chunked_raw();
    assert_eq!(status, 200);
    assert_eq!(
        headers
            .iter()
            .find(|(k, _)| k == "content-encoding")
            .map(|(_, v)| v.as_str()),
        Some("gzip"),
        "spilled gzip response must keep its content-encoding"
    );
    let inflated = dcf_serve::gzip::gunzip(&zipped).expect("spilled gzip inflates");
    assert_eq!(String::from_utf8(inflated).unwrap(), reference.body);

    let report = server.shutdown();
    assert!(
        report.counter("serve.spilled").unwrap_or(0) >= 2,
        "both large responses must count as spilled"
    );
}

#[test]
fn two_loop_server_balances_accepts_and_drains_gracefully() {
    let metrics = MetricsRegistry::new();
    let mut config = ServeConfig::default()
        .addr("127.0.0.1:0")
        .workers(2)
        .loops(2)
        .reuseport(false)
        .metrics(&metrics);
    config.compute_delay = Duration::from_millis(200);
    let server = Server::start(config).expect("two-loop server starts");
    let addr = server.local_addr();

    // Six one-shot connections round-robin across the loops; a handed-off
    // connection must also sustain keep-alive exchanges.
    for _ in 0..6 {
        assert_eq!(get(addr, "/healthz").status, 200);
    }
    let mut keep = Client::connect(addr);
    for _ in 0..3 {
        keep.send(&get_keep_alive("/healthz"));
        let reply = keep.read_reply();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("connection"), Some("keep-alive"));
    }

    // Shut down while a slow request is in flight: the drain must finish
    // it regardless of which loop owns the connection.
    let client = std::thread::spawn(move || post(addr, "/v1/simulate", r#"{"seed":78}"#));
    std::thread::sleep(Duration::from_millis(80));
    let report = server.shutdown();
    let reply = client.join().expect("client thread");
    assert_eq!(
        reply.status, 200,
        "in-flight request must survive a multi-loop drain: {}",
        reply.body
    );

    assert_eq!(report.gauge("serve.loops"), Some(2.0));
    let accepted: Vec<u64> = (0..2)
        .map(|lp| {
            report
                .counter(&format!("serve.loop.{lp}.accepted"))
                .unwrap_or(0)
        })
        .collect();
    assert!(
        accepted.iter().all(|&n| n >= 1),
        "round-robin handoff must feed both loops: {accepted:?}"
    );
    let per_loop_requests: u64 = (0..2)
        .filter_map(|lp| report.counter(&format!("serve.loop.{lp}.requests")))
        .sum();
    assert_eq!(
        Some(per_loop_requests),
        report.counter("serve.requests"),
        "per-loop request counters must sum to the global counter"
    );
}
