//! End-to-end tests for the query service: cache byte-identity under
//! concurrency, bounded-queue backpressure, and graceful drain.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use dcf_obs::MetricsRegistry;
use dcf_serve::{ServeConfig, Server};

/// One full HTTP exchange: status, lowercase header pairs, body.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn exchange(addr: std::net::SocketAddr, raw: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut buf = String::new();
    stream.read_to_string(&mut buf).expect("read response");
    parse_reply(&buf)
}

fn parse_reply(raw: &str) -> Reply {
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has a head");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

fn get(addr: std::net::SocketAddr, path: &str) -> Reply {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n"))
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> Reply {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn healthz_and_metrics_respond() {
    let metrics = MetricsRegistry::new();
    let server = Server::start(ServeConfig::default().addr("127.0.0.1:0").metrics(&metrics))
        .expect("server starts");
    let addr = server.local_addr();

    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"ok\""));

    let metrics_reply = get(addr, "/metrics");
    assert_eq!(metrics_reply.status, 200);
    assert!(metrics_reply.body.contains("dcf-serve"));

    let report = server.shutdown();
    assert!(report.counter("serve.requests").unwrap_or(0) >= 2);
}

#[test]
fn concurrent_clients_get_byte_identical_cached_sections() {
    let metrics = MetricsRegistry::new();
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(4)
            .metrics(&metrics),
    )
    .expect("server starts");
    let addr = server.local_addr();

    // Prime the run, then hit the same section from several threads at once.
    let primed = post(addr, "/simulate", r#"{"scenario":"small","seed":5}"#);
    assert_eq!(primed.status, 200, "simulate failed: {}", primed.body);
    assert!(primed.body.contains("\"cache\":\"miss\""));

    let path = "/report/overview?scenario=small&seed=5";
    let bodies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(move || {
                    let reply = get(addr, path);
                    assert_eq!(reply.status, 200, "section failed: {}", reply.body);
                    reply.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for body in &bodies[1..] {
        assert_eq!(
            body, &bodies[0],
            "cached section bodies must be byte-identical"
        );
    }
    // The digest in the section matches the one /simulate reported.
    let section = dcf_obs::json::parse(&bodies[0]).expect("section is valid JSON");
    let sim = dcf_obs::json::parse(&primed.body).expect("simulate is valid JSON");
    assert_eq!(
        section.get("digest").and_then(|v| v.as_str()),
        sim.get("digest").and_then(|v| v.as_str())
    );

    // Re-running /simulate for the same triple is now a cache hit.
    let again = post(addr, "/simulate", r#"{"scenario":"small","seed":5}"#);
    assert!(again.body.contains("\"cache\":\"hit\""));
    assert_eq!(again.body, primed.body.replace("miss", "hit"));

    // Paged ticket reads work against the reported digest.
    let digest = sim.get("digest").and_then(|v| v.as_str()).unwrap();
    let page = get(addr, &format!("/trace/{digest}/fots?offset=0&limit=3"));
    assert_eq!(page.status, 200);
    let parsed = dcf_obs::json::parse(&page.body).expect("page is valid JSON");
    assert_eq!(
        parsed
            .get("fots")
            .and_then(|v| v.as_array())
            .map(<[_]>::len),
        Some(3)
    );

    let report = server.shutdown();
    assert!(report.counter("serve.cache.hits").unwrap_or(0) >= 4);
    assert_eq!(report.counter("serve.cache.misses"), Some(1));
}

#[test]
fn saturated_queue_sheds_load_with_retry_after() {
    let metrics = MetricsRegistry::new();
    let mut config = ServeConfig::default()
        .addr("127.0.0.1:0")
        .workers(1)
        .queue_depth(1)
        .metrics(&metrics);
    config.compute_delay = Duration::from_millis(400);
    let server = Server::start(config).expect("server starts");
    let addr = server.local_addr();

    // Six distinct seeds, fired concurrently at a single worker with a
    // one-deep queue: one computes, one queues, the rest must be shed.
    let replies: Vec<Reply> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|seed| {
                s.spawn(move || {
                    post(
                        addr,
                        "/simulate",
                        &format!("{{\"scenario\":\"small\",\"seed\":{seed}}}"),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok = replies.iter().filter(|r| r.status == 200).count();
    let shed: Vec<&Reply> = replies.iter().filter(|r| r.status == 503).collect();
    assert_eq!(
        ok + shed.len(),
        replies.len(),
        "only 200s and 503s expected"
    );
    assert!(ok >= 1, "at least one request must be served");
    assert!(
        !shed.is_empty(),
        "a saturated one-deep queue must shed load"
    );
    for reply in &shed {
        assert!(
            reply.header("retry-after").is_some(),
            "503 responses must carry Retry-After"
        );
        assert!(reply.body.contains("error"));
    }

    let report = server.shutdown();
    assert!(report.counter("serve.rejected").unwrap_or(0) >= 1);
}

#[test]
fn preloaded_snapshot_serves_without_simulating() {
    use dcf_sim::{RunOptions, Scenario};

    // Persist a simulated trace as a binary snapshot on disk.
    let trace = Scenario::small()
        .seed(5)
        .simulate(&RunOptions::default())
        .expect("scenario simulates");
    let path = std::env::temp_dir().join(format!("dcf-serve-snap-{}.dcfsnap", std::process::id()));
    dcf_trace::io::snapshot::write_snapshot(&trace, &path).expect("snapshot writes");
    let expected_digest = format!("{:016x}", dcf_trace::io::fots_digest(trace.fots()));

    let metrics = MetricsRegistry::new();
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(2)
            .metrics(&metrics)
            .snapshot(path.to_str().expect("temp path is UTF-8")),
    )
    .expect("server starts with a snapshot");
    let addr = server.local_addr();

    // The snapshot pseudo-scenario never simulates: always a cache hit.
    let sim = post(addr, "/simulate", r#"{"scenario":"snapshot"}"#);
    assert_eq!(sim.status, 200, "simulate failed: {}", sim.body);
    assert!(sim.body.contains("\"cache\":\"hit\""));
    assert!(
        sim.body.contains(&expected_digest),
        "snapshot digest missing from {}",
        sim.body
    );

    // Sections render from the preloaded trace under the same digest.
    let section = get(addr, "/report/overview?scenario=snapshot");
    assert_eq!(section.status, 200, "section failed: {}", section.body);
    assert!(section.body.contains(&expected_digest));

    // Paged ticket reads come off the columnar store; spot-check a page
    // against the locally held trace.
    let page = get(
        addr,
        &format!("/trace/{expected_digest}/fots?offset=2&limit=3"),
    );
    assert_eq!(page.status, 200, "fots page failed: {}", page.body);
    let parsed = dcf_obs::json::parse(&page.body).expect("page is valid JSON");
    let rows = parsed
        .get("fots")
        .and_then(|v| v.as_array())
        .expect("page has fots");
    assert_eq!(rows.len(), 3);
    let fot = &trace.fots()[2];
    let row = &rows[0];
    let device_path = fot.device_path();
    assert_eq!(
        row.get("id").and_then(|v| v.as_u64()),
        Some(fot.id.index() as u64)
    );
    assert_eq!(
        row.get("server").and_then(|v| v.as_u64()),
        Some(fot.server.index() as u64)
    );
    assert_eq!(
        row.get("device").and_then(|v| v.as_str()),
        Some(fot.device.name())
    );
    assert_eq!(
        row.get("device_path").and_then(|v| v.as_str()),
        Some(device_path.as_str())
    );
    assert_eq!(
        row.get("failure_type").and_then(|v| v.as_str()),
        Some(fot.failure_type.name())
    );
    assert_eq!(
        row.get("error_time_secs").and_then(|v| v.as_u64()),
        Some(fot.error_time.as_secs())
    );
    assert_eq!(
        row.get("category").and_then(|v| v.as_str()),
        Some(fot.category.name())
    );

    // Without a preloaded snapshot the pseudo-scenario is a 404.
    let bare_metrics = MetricsRegistry::new();
    let bare = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .metrics(&bare_metrics),
    )
    .expect("bare server starts");
    let missing = post(bare.local_addr(), "/simulate", r#"{"scenario":"snapshot"}"#);
    assert_eq!(missing.status, 404, "expected 404: {}", missing.body);
    assert!(missing.body.contains("no snapshot preloaded"));
    bare.shutdown();

    let report = server.shutdown();
    assert!(
        report.phase_ms("trace.snapshot_load").is_some(),
        "snapshot load must be instrumented"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn graceful_shutdown_completes_in_flight_requests() {
    let metrics = MetricsRegistry::new();
    let mut config = ServeConfig::default()
        .addr("127.0.0.1:0")
        .workers(1)
        .metrics(&metrics);
    config.compute_delay = Duration::from_millis(300);
    let server = Server::start(config).expect("server starts");
    let addr = server.local_addr();

    // Start a slow request, then shut the server down while it is in flight.
    let client = std::thread::spawn(move || post(addr, "/simulate", r#"{"seed":77}"#));
    std::thread::sleep(Duration::from_millis(100));
    let report = server.shutdown();

    let reply = client.join().expect("client thread");
    assert_eq!(
        reply.status, 200,
        "in-flight request must complete through a graceful drain: {}",
        reply.body
    );
    assert!(reply.body.contains("\"digest\""));
    assert_eq!(report.counter("serve.requests"), Some(1));

    // The listener is gone: new connections are refused.
    assert!(TcpStream::connect(addr).is_err());
}
