//! §V-A batch-failure analysis: the `r_N` frequency metric (Table V) and
//! batch-day inspection.
//!
//! The paper defines `r_N = (Σ_k 1{n_k ≥ N}) / D`: the fraction of days in
//! the trace on which a component class logged at least `N` failures.
//!
//! # Examples
//!
//! ```
//! use dcf_core::batch::Batch;
//! use dcf_trace::ComponentClass;
//!
//! let trace = dcf_sim::Scenario::small().seed(1).simulate(&dcf_sim::RunOptions::default()).unwrap();
//! let batch = Batch::new(&trace);
//! let rows = batch.r_n(&batch.scaled_thresholds());
//! assert_eq!(rows[0].class, ComponentClass::Hdd);
//! assert!(rows[0].r[0].1 >= rows[0].r[2].1); // r_N decreases in N
//! ```

use serde::{Deserialize, Serialize};

use dcf_trace::{ComponentClass, Trace};

/// One row of Table V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchFrequencyRow {
    /// The component class.
    pub class: ComponentClass,
    /// `(threshold N, r_N)` for each requested threshold.
    pub r: Vec<(usize, f64)>,
}

/// A day that crossed a batch threshold, for drill-down (the §V-A cases).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchDay {
    /// Day index (absolute, since simulation origin).
    pub day: u64,
    /// Failures of the class on that day.
    pub count: usize,
}

/// §V-A analysis over one trace.
#[derive(Debug, Clone)]
pub struct Batch<'a> {
    trace: &'a Trace,
}

impl<'a> Batch<'a> {
    /// Creates the analysis.
    pub fn new(trace: &'a Trace) -> Self {
        Self { trace }
    }

    /// Scales the paper's N = 100/200/500 thresholds to this trace's fleet
    /// size (the paper's are calibrated to ~160k servers), keeping at
    /// least N = 2/4/10 so small test fleets still produce a table.
    pub fn scaled_thresholds(&self) -> [usize; 3] {
        let scale = self.trace.servers().len() as f64 / 160_000.0;
        [
            ((100.0 * scale) as usize).max(2),
            ((200.0 * scale) as usize).max(4),
            ((500.0 * scale) as usize).max(10),
        ]
    }

    /// Daily failure counts of one class over the observation window.
    ///
    /// Walks only the class's bucket of the trace index, not every ticket;
    /// columnar, that bucket gathers straight from the error-day column.
    pub fn daily_counts(&self, class: ComponentClass) -> Vec<usize> {
        let start_day = self.trace.info().start.day_index();
        let days = self.trace.info().days as usize;
        let mut counts = vec![0usize; days];
        match self.trace.columns() {
            Some(cols) => {
                let day_col = cols.error_days();
                for &p in self.trace.index().class_failure_ids(class) {
                    let d = (day_col[p as usize] as u64 - start_day) as usize;
                    if d < days {
                        counts[d] += 1;
                    }
                }
            }
            None => {
                for fot in self.trace.failures_of(class) {
                    let d = (fot.error_time.day_index() - start_day) as usize;
                    if d < days {
                        counts[d] += 1;
                    }
                }
            }
        }
        counts
    }

    /// Table V: `r_N` per class for the given thresholds, classes in
    /// Table II order.
    pub fn r_n(&self, thresholds: &[usize]) -> Vec<BatchFrequencyRow> {
        let days = self.trace.info().days.max(1) as f64;
        ComponentClass::ALL
            .iter()
            .map(|&class| {
                let daily = self.daily_counts(class);
                let r = thresholds
                    .iter()
                    .map(|&n| {
                        let hit = daily.iter().filter(|&&c| c >= n).count();
                        (n, hit as f64 / days)
                    })
                    .collect();
                BatchFrequencyRow { class, r }
            })
            .collect()
    }

    /// Days on which `class` logged at least `threshold` failures,
    /// largest first — the §V-A case-study drill-down.
    pub fn batch_days(&self, class: ComponentClass, threshold: usize) -> Vec<BatchDay> {
        let start_day = self.trace.info().start.day_index();
        let mut days: Vec<BatchDay> = self
            .daily_counts(class)
            .into_iter()
            .enumerate()
            .filter(|(_, c)| *c >= threshold)
            .map(|(d, count)| BatchDay {
                day: start_day + d as u64,
                count,
            })
            .collect();
        days.sort_by_key(|d| std::cmp::Reverse(d.count));
        days
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::synthetic_trace;

    #[test]
    fn daily_counts_cover_the_window_and_sum_to_failures() {
        let trace = synthetic_trace();
        let b = Batch::new(&trace);
        let daily = b.daily_counts(ComponentClass::Hdd);
        assert_eq!(daily.len(), trace.info().days as usize);
        let total: usize = daily.iter().sum();
        assert_eq!(total, trace.failures_of(ComponentClass::Hdd).count());
    }

    #[test]
    fn r_n_is_monotone_in_threshold_and_hdd_leads() {
        let trace = synthetic_trace();
        let b = Batch::new(&trace);
        let thresholds = b.scaled_thresholds();
        let rows = b.r_n(&thresholds);
        assert_eq!(rows.len(), 11);
        for row in &rows {
            for w in row.r.windows(2) {
                assert!(w[0].1 >= w[1].1, "{:?}", row);
            }
        }
        let hdd = &rows[0];
        assert_eq!(hdd.class, ComponentClass::Hdd);
        // HDD has by far the most batch days.
        let hdd_r0 = hdd.r[0].1;
        assert!(hdd_r0 > 0.0);
        for row in rows.iter().skip(2) {
            assert!(row.r[0].1 <= hdd_r0 + 1e-12);
        }
    }

    #[test]
    fn scaled_thresholds_shrink_with_fleet() {
        let trace = synthetic_trace(); // 2k servers → 1/80 of paper scale
        let t = Batch::new(&trace).scaled_thresholds();
        assert_eq!(t, [2, 4, 10]);
    }

    #[test]
    fn batch_days_are_sorted_desc_and_match_threshold() {
        let trace = synthetic_trace();
        let b = Batch::new(&trace);
        let days = b.batch_days(ComponentClass::Hdd, 5);
        for w in days.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
        for d in &days {
            assert!(d.count >= 5);
        }
    }
}
