//! Failure prediction (§VII-A).
//!
//! The paper: "They even designed a tool to predict component failures a
//! couple of days early, hoping the operators to react before the failure
//! actually happens." This module implements and evaluates that tool's
//! core signal: **warning-severity tickets predict fatal failures of the
//! same component** (SMARTFail → NotReady, DIMMCE → DIMMUE, …).
//!
//! Evaluation is fully trace-driven: for a horizon `H`, a warning is a
//! true positive if the same `(server, class, slot)` files a fatal ticket
//! within `H` days; a fatal failure counts as *predicted* if any warning
//! preceded it within `H`.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dcf_trace::{ComponentClass, ServerId, Severity, SimDuration, Trace};

/// Evaluation of the warning-based predictor at one horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorEval {
    /// Prediction horizon in days.
    pub horizon_days: u64,
    /// Warning tickets evaluated.
    pub warnings: usize,
    /// Warnings followed by a same-component fatal ticket within the
    /// horizon (true positives).
    pub confirmed_warnings: usize,
    /// Fatal tickets in the evaluation window.
    pub fatals: usize,
    /// Fatal tickets preceded by a same-component warning within the
    /// horizon.
    pub predicted_fatals: usize,
    /// `confirmed_warnings / warnings`.
    pub precision: f64,
    /// `predicted_fatals / fatals`.
    pub recall: f64,
    /// Median lead time (days) between a warning and the fatal ticket it
    /// predicted; `None` when nothing was predicted.
    pub median_lead_days: Option<f64>,
}

impl PredictorEval {
    /// Harmonic mean of precision and recall.
    ///
    /// Returns `0.0` — never `NaN` — when `precision + recall` is zero or
    /// not a finite positive number, so downstream scoring can rank and
    /// serialize evaluations without special-casing empty windows.
    pub fn f1(&self) -> f64 {
        let p = self.precision;
        let r = self.recall;
        let sum = p + r;
        if sum.is_nan() || sum <= 0.0 {
            0.0
        } else {
            2.0 * p * r / sum
        }
    }
}

/// §VII-A prediction analysis over one trace.
#[derive(Debug, Clone)]
pub struct Prediction<'a> {
    trace: &'a Trace,
}

impl<'a> Prediction<'a> {
    /// Creates the analysis.
    pub fn new(trace: &'a Trace) -> Self {
        Self { trace }
    }

    /// Evaluates the warning→fatal predictor at `horizon_days`, optionally
    /// restricted to one component class.
    ///
    /// Warnings too close to the end of the window to be confirmable (their
    /// horizon extends past it) are excluded from the precision
    /// denominator, avoiding censoring bias.
    pub fn evaluate(&self, horizon_days: u64, class: Option<ComponentClass>) -> PredictorEval {
        let horizon = SimDuration::from_days(horizon_days);
        let end = self.trace.end_time();

        // Per-component time-sorted (time, severity) streams.
        type Key = (ServerId, u8, u8);
        let mut streams: HashMap<Key, Vec<(dcf_trace::SimTime, Severity)>> = HashMap::new();
        for fot in self.trace.failures() {
            if class.is_some_and(|c| fot.device != c) {
                continue;
            }
            if fot.device == ComponentClass::Miscellaneous {
                continue; // manual tickets have no component to predict
            }
            let key = (fot.server, fot.device.index() as u8, fot.device_slot);
            streams
                .entry(key)
                .or_default()
                .push((fot.error_time, fot.failure_type.severity()));
        }

        let mut warnings = 0usize;
        let mut confirmed = 0usize;
        let mut fatals = 0usize;
        let mut predicted = 0usize;
        let mut leads: Vec<f64> = Vec::new();
        for stream in streams.values() {
            // Streams inherit the trace's time order.
            for (i, &(t, sev)) in stream.iter().enumerate() {
                match sev {
                    Severity::Warning => {
                        if t + horizon >= end {
                            continue; // not confirmable: censored
                        }
                        warnings += 1;
                        if let Some(&(tf, _)) = stream[i + 1..]
                            .iter()
                            .find(|(t2, s2)| *s2 == Severity::Fatal && t2.since(t) <= horizon)
                            .filter(|(t2, _)| t2.since(t) <= horizon)
                        {
                            confirmed += 1;
                            leads.push(tf.since(t).as_days_f64());
                        }
                    }
                    Severity::Fatal => {
                        fatals += 1;
                        let was_predicted = stream[..i]
                            .iter()
                            .rev()
                            .take_while(|(t2, _)| t.since(*t2) <= horizon)
                            .any(|(_, s2)| *s2 == Severity::Warning);
                        if was_predicted {
                            predicted += 1;
                        }
                    }
                }
            }
        }

        PredictorEval {
            horizon_days,
            warnings,
            confirmed_warnings: confirmed,
            fatals,
            predicted_fatals: predicted,
            precision: confirmed as f64 / warnings.max(1) as f64,
            recall: predicted as f64 / fatals.max(1) as f64,
            median_lead_days: dcf_stats::median(&leads),
        }
    }

    /// Evaluates the predictor across several horizons — the
    /// precision/recall trade-off curve an FMS team would tune against.
    pub fn sweep(
        &self,
        horizons_days: &[u64],
        class: Option<ComponentClass>,
    ) -> Vec<PredictorEval> {
        horizons_days
            .iter()
            .map(|&h| self.evaluate(h, class))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::medium_trace;

    #[test]
    fn metrics_are_probabilities_and_leads_within_horizon() {
        let trace = medium_trace();
        let eval = Prediction::new(&trace).evaluate(7, None);
        assert!(eval.warnings > 0);
        assert!(eval.fatals > 0);
        assert!((0.0..=1.0).contains(&eval.precision));
        assert!((0.0..=1.0).contains(&eval.recall));
        if let Some(lead) = eval.median_lead_days {
            assert!((0.0..=7.0).contains(&lead));
        }
        assert!((0.0..=1.0).contains(&eval.f1()));
    }

    #[test]
    fn longer_horizons_never_reduce_recall() {
        let trace = medium_trace();
        let p = Prediction::new(&trace);
        let evals = p.sweep(&[1, 7, 30, 90], None);
        for w in evals.windows(2) {
            assert!(
                w[1].recall >= w[0].recall - 1e-12,
                "recall must grow with horizon: {:?}",
                evals.iter().map(|e| e.recall).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn repeating_components_make_warnings_predictive() {
        // The repeat process guarantees some warning→fatal chains, so the
        // predictor beats a tiny baseline at a 30-day horizon.
        let trace = medium_trace();
        let eval = Prediction::new(&trace).evaluate(30, None);
        assert!(
            eval.predicted_fatals > 0,
            "some fatal failures should be predicted: {eval:?}"
        );
    }

    #[test]
    fn class_filter_restricts_population() {
        let trace = medium_trace();
        let p = Prediction::new(&trace);
        let all = p.evaluate(7, None);
        let hdd = p.evaluate(7, Some(ComponentClass::Hdd));
        assert!(hdd.warnings <= all.warnings);
        assert!(hdd.fatals <= all.fatals);
        let cpu = p.evaluate(7, Some(ComponentClass::Cpu));
        assert!(cpu.fatals <= hdd.fatals);
    }

    #[test]
    fn f1_handles_zero_division() {
        let e = PredictorEval {
            horizon_days: 1,
            warnings: 0,
            confirmed_warnings: 0,
            fatals: 0,
            predicted_fatals: 0,
            precision: 0.0,
            recall: 0.0,
            median_lead_days: None,
        };
        assert_eq!(e.f1(), 0.0);
    }

    #[test]
    fn f1_is_zero_not_nan_for_pathological_inputs() {
        let mut e = PredictorEval {
            horizon_days: 1,
            warnings: 0,
            confirmed_warnings: 0,
            fatals: 0,
            predicted_fatals: 0,
            precision: f64::NAN,
            recall: 0.0,
            median_lead_days: None,
        };
        assert_eq!(e.f1(), 0.0, "NaN precision must not poison f1");
        e.precision = 0.0;
        e.recall = f64::NAN;
        assert_eq!(e.f1(), 0.0, "NaN recall must not poison f1");
        e.precision = -1.0;
        e.recall = 0.5;
        assert_eq!(e.f1(), 0.0, "non-positive p+r yields 0");
    }
}
