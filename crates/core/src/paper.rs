//! The paper's published reference numbers, used by the reproduction
//! harness and EXPERIMENTS.md to report paper-vs-measured.

use dcf_trace::ComponentClass;
use serde::{Deserialize, Serialize};

/// Table I category shares.
pub const CATEGORY_SHARES: [(&str, f64); 3] = [
    ("D_fixing", 0.703),
    ("D_error", 0.280),
    ("D_falsealarm", 0.017),
];

/// Table II failure shares per component class (fractions).
pub const COMPONENT_SHARES: [(ComponentClass, f64); 11] = [
    (ComponentClass::Hdd, 0.8184),
    (ComponentClass::Miscellaneous, 0.1020),
    (ComponentClass::Memory, 0.0306),
    (ComponentClass::Power, 0.0174),
    (ComponentClass::RaidCard, 0.0123),
    (ComponentClass::FlashCard, 0.0067),
    (ComponentClass::Motherboard, 0.0057),
    (ComponentClass::Ssd, 0.0031),
    (ComponentClass::Fan, 0.0019),
    (ComponentClass::HddBackboard, 0.0014),
    (ComponentClass::Cpu, 0.0004),
];

/// Table V batch frequencies `(class, r100, r200, r500)` in percent.
pub const BATCH_FREQUENCIES: [(ComponentClass, f64, f64, f64); 10] = [
    (ComponentClass::Hdd, 55.4, 22.5, 2.5),
    (ComponentClass::Miscellaneous, 3.7, 1.3, 0.1),
    (ComponentClass::Power, 0.7, 0.4, 0.0),
    (ComponentClass::Memory, 0.4, 0.4, 0.1),
    (ComponentClass::RaidCard, 0.4, 0.2, 0.1),
    (ComponentClass::FlashCard, 0.1, 0.1, 0.0),
    (ComponentClass::Fan, 0.1, 0.0, 0.0),
    (ComponentClass::Motherboard, 0.0, 0.0, 0.0),
    (ComponentClass::Ssd, 0.0, 0.0, 0.0),
    (ComponentClass::Cpu, 0.0, 0.0, 0.0),
];

/// Fleet-wide mean time between failures, minutes (§III-B).
pub const MTBF_MINUTES: f64 = 6.8;
/// Per-data-center MTBF range, minutes (§III-B).
pub const MTBF_BY_DC_RANGE_MINUTES: (f64, f64) = (32.0, 390.0);
/// Days in the observation window.
pub const TRACE_DAYS: u64 = 1_411;
/// Approximate total FOT count ("over 290,000").
pub const TOTAL_FOTS: usize = 290_000;

/// §III-C lifecycle claims.
pub mod lifecycle {
    /// RAID-card failures within the first six months of service (47.4%).
    pub const RAID_FIRST_6_MONTHS: f64 = 0.474;
    /// HDD infant failure rate vs months 4–9 (+20%).
    pub const HDD_INFANT_OVER_TROUGH: f64 = 1.20;
    /// Motherboard failures after year 3 (72.1%).
    pub const MOTHERBOARD_AFTER_36_MONTHS: f64 = 0.721;
    /// Flash-card failures within the first 12 months (1.4%).
    pub const FLASH_FIRST_12_MONTHS: f64 = 0.014;
}

/// §III-D repeat/skew claims.
pub mod repeats {
    /// Fixed components that never repeat (> 85%).
    pub const NEVER_REPEAT_SHARE: f64 = 0.85;
    /// Ever-failed servers with repeating failures (~4.5%).
    pub const REPEAT_SERVER_SHARE: f64 = 0.045;
    /// The pathological server's FOT count (> 400).
    pub const MAX_FOTS_ONE_SERVER: u32 = 400;
}

/// Table IV buckets (out of 24 data centers).
pub mod table_iv {
    /// p < 0.01.
    pub const REJECTED_001: usize = 10;
    /// 0.01 ≤ p < 0.05.
    pub const BORDERLINE: usize = 4;
    /// p ≥ 0.05.
    pub const ACCEPTED: usize = 10;
}

/// §V-B correlated-component claims.
pub mod correlation {
    /// Ever-failed servers with same-day multi-component failures (0.49%).
    pub const PAIR_SERVER_SHARE: f64 = 0.0049;
    /// Two-component incidents involving a misc report (71.5%).
    pub const MISC_INVOLVED_SHARE: f64 = 0.715;
    /// The dominant Table VI cell: HDD–misc pairs (349).
    pub const HDD_MISC_PAIRS: usize = 349;
}

/// §VI response-time claims.
pub mod response {
    /// MTTR for `D_fixing`, days.
    pub const FIXING_MEAN_DAYS: f64 = 42.2;
    /// Median RT for `D_fixing`, days.
    pub const FIXING_MEDIAN_DAYS: f64 = 6.1;
    /// MTTR for `D_falsealarm`, days.
    pub const FALSE_ALARM_MEAN_DAYS: f64 = 19.1;
    /// Median RT for `D_falsealarm`, days.
    pub const FALSE_ALARM_MEDIAN_DAYS: f64 = 4.9;
    /// Share of FOTs with RT > 140 days (10%).
    pub const OVER_140_DAYS: f64 = 0.10;
    /// Share of FOTs with RT > 200 days (2%).
    pub const OVER_200_DAYS: f64 = 0.02;
    /// Median RT of the top-1% product lines, days (Figure 11).
    pub const TOP_LINES_MEDIAN_DAYS: f64 = 47.0;
    /// Among lines with <100 failures, share with median RT > 100 days.
    pub const SMALL_LINE_OVER_100D_SHARE: f64 = 0.21;
    /// Cross-line standard deviation of median RT, days.
    pub const LINE_STD_DEV_DAYS: f64 = 30.2;
}

/// One paper-vs-measured comparison row for reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Which experiment the metric belongs to (e.g. `"Table I"`).
    pub experiment: &'static str,
    /// Metric name.
    pub metric: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
}

impl Comparison {
    /// Relative error `|measured − paper| / |paper|` (absolute error when
    /// the paper value is zero).
    pub fn relative_error(&self) -> f64 {
        if self.paper == 0.0 {
            self.measured.abs()
        } else {
            (self.measured - self.paper).abs() / self.paper.abs()
        }
    }
}

impl std::fmt::Display for Comparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} / {}: paper {:.4}, measured {:.4}",
            self.experiment, self.metric, self.paper, self.measured
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_shares_sum_to_about_one() {
        let total: f64 = COMPONENT_SHARES.iter().map(|(_, s)| s).sum();
        assert!((total - 0.9999).abs() < 0.001, "sum {total}");
    }

    #[test]
    fn category_shares_sum_to_one() {
        let total: f64 = CATEGORY_SHARES.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_iv_buckets_cover_24_dcs() {
        assert_eq!(
            table_iv::REJECTED_001 + table_iv::BORDERLINE + table_iv::ACCEPTED,
            24
        );
    }

    #[test]
    fn comparison_relative_error() {
        let c = Comparison {
            experiment: "Table I",
            metric: "fixing".into(),
            paper: 0.703,
            measured: 0.70,
        };
        assert!(c.relative_error() < 0.01);
        let z = Comparison {
            experiment: "Table V",
            metric: "r500".into(),
            paper: 0.0,
            measured: 0.01,
        };
        assert!((z.relative_error() - 0.01).abs() < 1e-12);
        assert!(c.to_string().contains("Table I"));
    }
}
