//! §II dataset overview: Table I (categories), Table II (component
//! breakdown), Figure 2 (failure-type breakdown), and the miscellaneous
//! ticket decomposition.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use dcf_trace::{ComponentClass, FailureType, FotCategory, Trace};

/// Table I: ticket shares per category.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CategoryBreakdown {
    /// Total number of tickets.
    pub total: usize,
    /// Share of `D_fixing` tickets (paper: 70.3%).
    pub fixing_share: f64,
    /// Share of `D_error` tickets (paper: 28.0%).
    pub error_share: f64,
    /// Share of `D_falsealarm` tickets (paper: 1.7%).
    pub false_alarm_share: f64,
}

/// One row of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentShare {
    /// The component class.
    pub class: ComponentClass,
    /// Number of failures (`D_fixing` + `D_error`).
    pub count: usize,
    /// Share of all failures.
    pub share: f64,
}

/// One bar of Figure 2: a failure type's share within its class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TypeShare {
    /// The failure type.
    pub failure_type: FailureType,
    /// Number of failures of this type.
    pub count: usize,
    /// Share within the class.
    pub share: f64,
}

/// §II-A: what the manually entered miscellaneous tickets contain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MiscProfile {
    /// Number of miscellaneous failures.
    pub count: usize,
    /// Share with no description at all (paper: 44%).
    pub no_description_share: f64,
    /// Share suspected to be HDD-related (paper: ~25%).
    pub suspect_hdd_share: f64,
    /// Share marked "server crash" (paper: ~25%).
    pub server_crash_share: f64,
}

/// The §II overview analysis over one trace.
#[derive(Debug, Clone)]
pub struct Overview<'a> {
    trace: &'a Trace,
}

impl<'a> Overview<'a> {
    /// Creates the analysis.
    pub fn new(trace: &'a Trace) -> Self {
        Self { trace }
    }

    /// Table I: category shares over all tickets.
    pub fn category_breakdown(&self) -> CategoryBreakdown {
        let [fixing, error, fa] = self.trace.category_counts();
        let total = fixing + error + fa;
        let denom = total.max(1) as f64;
        CategoryBreakdown {
            total,
            fixing_share: fixing as f64 / denom,
            error_share: error as f64 / denom,
            false_alarm_share: fa as f64 / denom,
        }
    }

    /// Table II: failure shares per component class, largest first
    /// (failures = `D_fixing` + `D_error`, as the paper defines).
    ///
    /// Per-class counts come straight off the index's class buckets, so
    /// this is O(classes) on an indexed trace.
    pub fn component_breakdown(&self) -> Vec<ComponentShare> {
        let counts: Vec<usize> = ComponentClass::ALL
            .iter()
            .map(|&class| self.trace.failures_of(class).count())
            .collect();
        let total: usize = counts.iter().sum();
        let denom = total.max(1) as f64;
        let mut rows: Vec<ComponentShare> = ComponentClass::ALL
            .iter()
            .map(|&class| ComponentShare {
                class,
                count: counts[class.index()],
                share: counts[class.index()] as f64 / denom,
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.count));
        rows
    }

    /// Figure 2: failure-type shares within one class, largest first.
    pub fn type_breakdown(&self, class: ComponentClass) -> Vec<TypeShare> {
        let mut counts: BTreeMap<FailureType, usize> = BTreeMap::new();
        let mut total = 0usize;
        for fot in self.trace.failures_of(class) {
            *counts.entry(fot.failure_type).or_insert(0) += 1;
            total += 1;
        }
        let denom = total.max(1) as f64;
        let mut rows: Vec<TypeShare> = counts
            .into_iter()
            .map(|(failure_type, count)| TypeShare {
                failure_type,
                count,
                share: count as f64 / denom,
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.count));
        rows
    }

    /// §II-A: the miscellaneous-ticket decomposition.
    pub fn misc_profile(&self) -> MiscProfile {
        let mut count = 0usize;
        let mut no_desc = 0usize;
        let mut hdd = 0usize;
        let mut crash = 0usize;
        for fot in self.trace.failures_of(ComponentClass::Miscellaneous) {
            count += 1;
            match fot.failure_type {
                FailureType::ManualNoDescription => no_desc += 1,
                FailureType::ManualSuspectHdd => hdd += 1,
                FailureType::ManualServerCrash => crash += 1,
                _ => {}
            }
        }
        let denom = count.max(1) as f64;
        MiscProfile {
            count,
            no_description_share: no_desc as f64 / denom,
            suspect_hdd_share: hdd as f64 / denom,
            server_crash_share: crash as f64 / denom,
        }
    }

    /// Convenience: count of tickets in one category.
    pub fn category_count(&self, category: FotCategory) -> usize {
        self.trace.in_category(category).count()
    }

    /// Failures per product line, largest first — the fleet is partitioned
    /// into hundreds of lines (§VI-C) and failure volume tracks line size.
    /// Counts are the index's per-line bucket sizes.
    pub fn by_product_line(&self) -> Vec<(dcf_trace::ProductLineId, usize)> {
        let mut rows: Vec<(dcf_trace::ProductLineId, usize)> = self
            .trace
            .product_lines()
            .iter()
            .map(|line| (line.id, self.trace.failures_in_line(line.id).count()))
            .collect();
        rows.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        rows
    }

    /// Failures per data center, largest first. Counts are the index's
    /// per-DC bucket sizes.
    pub fn by_data_center(&self) -> Vec<(dcf_trace::DataCenterId, usize)> {
        let mut rows: Vec<(dcf_trace::DataCenterId, usize)> = self
            .trace
            .data_centers()
            .iter()
            .map(|dc| (dc.id, self.trace.failures_in_dc(dc.id).count()))
            .collect();
        rows.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::synthetic_trace;

    #[test]
    fn category_shares_sum_to_one() {
        let trace = synthetic_trace();
        let b = Overview::new(&trace).category_breakdown();
        assert!((b.fixing_share + b.error_share + b.false_alarm_share - 1.0).abs() < 1e-12);
        assert_eq!(b.total, trace.len());
    }

    #[test]
    fn component_breakdown_is_sorted_and_complete() {
        let trace = synthetic_trace();
        let rows = Overview::new(&trace).component_breakdown();
        assert_eq!(rows.len(), 11);
        for w in rows.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
        let total: usize = rows.iter().map(|r| r.count).sum();
        assert_eq!(total, trace.failures().count());
        let share_sum: f64 = rows.iter().map(|r| r.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn type_breakdown_stays_within_class() {
        let trace = synthetic_trace();
        let rows = Overview::new(&trace).type_breakdown(ComponentClass::Hdd);
        assert!(!rows.is_empty());
        for r in &rows {
            assert_eq!(r.failure_type.class(), ComponentClass::Hdd);
        }
        let share_sum: f64 = rows.iter().map(|r| r.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_line_and_per_dc_breakdowns_partition_failures() {
        let trace = synthetic_trace();
        let o = Overview::new(&trace);
        let total = trace.failures().count();
        let by_line = o.by_product_line();
        assert_eq!(by_line.iter().map(|(_, c)| c).sum::<usize>(), total);
        for w in by_line.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let by_dc = o.by_data_center();
        assert_eq!(by_dc.iter().map(|(_, c)| c).sum::<usize>(), total);
        assert_eq!(by_dc.len(), trace.data_centers().len());
        // The big pinned line dominates (Zipf head).
        assert!(by_line[0].1 > total / trace.product_lines().len());
    }

    #[test]
    fn misc_profile_shares_are_probabilities() {
        let trace = synthetic_trace();
        let p = Overview::new(&trace).misc_profile();
        assert!(p.no_description_share >= 0.0 && p.no_description_share <= 1.0);
        assert!(p.count > 0);
    }
}
