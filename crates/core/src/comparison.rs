//! Programmatic paper-vs-measured comparison: every headline number of the
//! paper checked against a trace in one call, with pass/fail at
//! configurable tolerances. The calibration tests and the `reproduce`
//! binary both build on this.

use serde::{Deserialize, Serialize};

use dcf_trace::{ComponentClass, Trace};

use crate::paper;
use crate::FailureStudy;

/// How a measured value relates to the paper's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Agreement {
    /// Within the requested tolerance.
    Match,
    /// Outside tolerance but the qualitative direction holds.
    Close,
    /// Qualitatively off.
    Mismatch,
    /// Not computable on this trace (too small, censored, …).
    Unavailable,
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Which experiment the metric belongs to.
    pub experiment: &'static str,
    /// Metric name.
    pub metric: &'static str,
    /// The paper's value.
    pub paper: f64,
    /// Our measured value (`NaN` when unavailable).
    pub measured: f64,
    /// Verdict at the default tolerances.
    pub agreement: Agreement,
}

fn judge(paper: f64, measured: f64, rel_tol: f64, abs_tol: f64) -> Agreement {
    if !measured.is_finite() {
        return Agreement::Unavailable;
    }
    let diff = (measured - paper).abs();
    if diff <= abs_tol || (paper != 0.0 && diff / paper.abs() <= rel_tol) {
        Agreement::Match
    } else if diff <= 3.0 * abs_tol || (paper != 0.0 && diff / paper.abs() <= 3.0 * rel_tol) {
        Agreement::Close
    } else {
        Agreement::Mismatch
    }
}

/// Compares a trace's headline metrics against the paper's published
/// values. Tolerances: shares ±1.5 pp (absolute), scalars ±15 % (relative);
/// "Close" extends both by 3×.
///
/// Designed for paper-scale traces; on smaller fleets several rows come
/// back [`Agreement::Close`] or [`Agreement::Unavailable`] — that is
/// information, not an error.
pub fn compare_to_paper(trace: &Trace) -> Vec<ComparisonRow> {
    let study = FailureStudy::new(trace);
    let report = study.analyze(&crate::StudyOptions::default());
    let mut rows = Vec::new();
    let mut push = |experiment, metric, paper_v: f64, measured: f64, rel: f64, abs: f64| {
        rows.push(ComparisonRow {
            experiment,
            metric,
            paper: paper_v,
            measured,
            agreement: judge(paper_v, measured, rel, abs),
        });
    };

    // Table I.
    push(
        "Table I",
        "fixing share",
        0.703,
        report.fixing_share,
        0.05,
        0.015,
    );
    push(
        "Table I",
        "error share",
        0.280,
        report.error_share,
        0.08,
        0.015,
    );
    push(
        "Table I",
        "false alarm share",
        0.017,
        report.false_alarm_share,
        0.25,
        0.004,
    );

    // Table II (the three biggest classes; the rest follow the same path).
    for (class, metric) in [
        (ComponentClass::Hdd, "HDD share"),
        (ComponentClass::Miscellaneous, "misc share"),
        (ComponentClass::Memory, "memory share"),
    ] {
        let paper_share = paper::COMPONENT_SHARES
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, s)| *s)
            .expect("class listed");
        let measured = report
            .component_shares
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, s)| *s)
            .unwrap_or(f64::NAN);
        push("Table II", metric, paper_share, measured, 0.10, 0.015);
    }

    // Figure 5.
    push(
        "Fig. 5",
        "fleet MTBF (min)",
        paper::MTBF_MINUTES,
        report.mtbf_minutes.unwrap_or(f64::NAN),
        0.15,
        0.7,
    );

    // Figure 7.
    push(
        "Fig. 7",
        "never-repeat share",
        paper::repeats::NEVER_REPEAT_SHARE,
        report.never_repeat_share,
        0.15,
        0.12,
    );
    push(
        "Fig. 7",
        "repeat server share",
        paper::repeats::REPEAT_SERVER_SHARE,
        report.repeat_server_share,
        0.60,
        0.03,
    );

    // Table VI.
    push(
        "Table VI",
        "pair server share",
        paper::correlation::PAIR_SERVER_SHARE,
        report.pair_server_share,
        0.40,
        0.003,
    );
    push(
        "Table VI",
        "misc involved share",
        paper::correlation::MISC_INVOLVED_SHARE,
        report.misc_involved_share,
        0.12,
        0.08,
    );

    // Figure 9.
    let (mean, median, over140) = report
        .rt_fixing
        .as_ref()
        .map(|r| (r.mean_days, r.median_days, r.over_140d))
        .unwrap_or((f64::NAN, f64::NAN, f64::NAN));
    push(
        "Fig. 9",
        "fixing MTTR (days)",
        paper::response::FIXING_MEAN_DAYS,
        mean,
        0.20,
        5.0,
    );
    push(
        "Fig. 9",
        "fixing median (days)",
        paper::response::FIXING_MEDIAN_DAYS,
        median,
        0.35,
        2.0,
    );
    push(
        "Fig. 9",
        "RT > 140 d share",
        paper::response::OVER_140_DAYS,
        over140,
        0.30,
        0.03,
    );

    rows
}

/// Batch r_N comparison for the classes Table V reports (paper-scale
/// thresholds only make sense at paper scale; the thresholds used are the
/// trace-scaled ones, with shares compared against the paper's).
pub fn compare_batch_frequencies(trace: &Trace) -> Vec<ComparisonRow> {
    let study = FailureStudy::new(trace);
    let batch = study.batch();
    let thresholds = batch.scaled_thresholds();
    let measured = batch.r_n(&thresholds);
    let mut rows = Vec::new();
    for (class, r100, r200, r500) in paper::BATCH_FREQUENCIES {
        let Some(m) = measured.iter().find(|r| r.class == class) else {
            continue;
        };
        for (metric, paper_pct, got) in [
            ("r_N1 %", r100, m.r[0].1 * 100.0),
            ("r_N2 %", r200, m.r[1].1 * 100.0),
            ("r_N3 %", r500, m.r[2].1 * 100.0),
        ] {
            rows.push(ComparisonRow {
                experiment: "Table V",
                metric,
                paper: paper_pct,
                measured: got,
                agreement: judge(paper_pct, got, 0.35, 1.5),
            });
        }
    }
    rows
}

/// Share of rows that match or are close — a single reproduction score.
pub fn agreement_score(rows: &[ComparisonRow]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let good = rows
        .iter()
        .filter(|r| matches!(r.agreement, Agreement::Match | Agreement::Close))
        .count();
    good as f64 / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::medium_trace;

    #[test]
    fn medium_scale_mostly_agrees() {
        let trace = medium_trace();
        let rows = compare_to_paper(&trace);
        assert!(rows.len() >= 12);
        let score = agreement_score(&rows);
        assert!(score >= 0.7, "agreement {score}: {rows:#?}");
        // Core identity metrics are strict matches at any scale.
        let fa = rows
            .iter()
            .find(|r| r.metric == "false alarm share")
            .unwrap();
        assert_eq!(fa.agreement, Agreement::Match, "{fa:?}");
    }

    #[test]
    fn batch_comparison_produces_rows_per_class() {
        let trace = medium_trace();
        let rows = compare_batch_frequencies(&trace);
        assert_eq!(rows.len(), paper::BATCH_FREQUENCIES.len() * 3);
        for r in &rows {
            assert!(r.measured.is_finite());
        }
    }

    #[test]
    fn judge_tiers_work() {
        assert_eq!(judge(1.0, 1.01, 0.05, 0.0), Agreement::Match);
        assert_eq!(judge(1.0, 1.10, 0.05, 0.0), Agreement::Close);
        assert_eq!(judge(1.0, 2.0, 0.05, 0.0), Agreement::Mismatch);
        assert_eq!(judge(1.0, f64::NAN, 0.05, 0.0), Agreement::Unavailable);
        assert_eq!(judge(0.0, 0.001, 0.05, 0.01), Agreement::Match);
    }

    #[test]
    fn score_handles_empty() {
        assert_eq!(agreement_score(&[]), 0.0);
    }
}
