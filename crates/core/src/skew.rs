//! §III-D: failure concentration across servers (Figure 7) and repeating
//! failures / repair effectiveness.
//!
//! # Examples
//!
//! ```
//! use dcf_core::skew::Skew;
//!
//! let trace = dcf_sim::Scenario::small().seed(1).simulate(&dcf_sim::RunOptions::default()).unwrap();
//! let c = Skew::new(&trace).concentration();
//! assert!(c.top_share(0.5) >= 0.5); // top half holds at least half
//! ```

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dcf_trace::{FotCategory, ServerId, Trace};

/// Figure 7: how concentrated failures are across ever-failed servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConcentrationResult {
    /// Number of servers with at least one failure.
    pub servers_ever_failed: usize,
    /// Share of all servers that ever failed.
    pub ever_failed_share: f64,
    /// Total failures.
    pub total_failures: usize,
    /// Per-server failure counts, descending.
    pub counts_desc: Vec<u32>,
    /// Most failures observed on a single server (the paper's pathological
    /// BBU server logged 400+).
    pub max_on_one_server: u32,
}

impl ConcentrationResult {
    /// Cumulative failure share contributed by the top `fraction` of
    /// ever-failed servers (Figure 7's curve evaluated at one x).
    pub fn top_share(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        if self.total_failures == 0 {
            return 0.0;
        }
        let k = ((self.counts_desc.len() as f64 * fraction).ceil() as usize)
            .min(self.counts_desc.len());
        let top: u64 = self.counts_desc[..k].iter().map(|&c| c as u64).sum();
        top as f64 / self.total_failures as f64
    }

    /// The full concentration curve, `(server fraction, failure share)`,
    /// downsampled to at most `points` entries.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        let n = self.counts_desc.len();
        if n == 0 {
            return Vec::new();
        }
        let points = points.clamp(2, n.max(2));
        let mut cum = 0u64;
        let mut prefix: Vec<u64> = Vec::with_capacity(n);
        for &c in &self.counts_desc {
            cum += c as u64;
            prefix.push(cum);
        }
        (1..=points)
            .map(|i| {
                let idx = (i * n).div_ceil(points).clamp(1, n);
                (
                    idx as f64 / n as f64,
                    prefix[idx - 1] as f64 / self.total_failures.max(1) as f64,
                )
            })
            .collect()
    }
}

/// Repeating-failure statistics (§III-D).
///
/// A *component* is identified by `(server, class, slot, failure type)`;
/// it repeats if the same problem recurs after being handled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepeatStats {
    /// Components with at least one `D_fixing` (repaired) failure.
    pub fixed_components: usize,
    /// Of those, components whose problem recurred.
    pub repeating_components: usize,
    /// Share of fixed components that never repeat (paper: > 85%).
    pub never_repeat_share: f64,
    /// Servers with at least one repeating component.
    pub servers_with_repeats: usize,
    /// Share of ever-failed servers with repeats (paper: ~4.5%).
    pub repeat_server_share: f64,
}

/// §III-D analysis over one trace.
#[derive(Debug, Clone)]
pub struct Skew<'a> {
    trace: &'a Trace,
}

impl<'a> Skew<'a> {
    /// Creates the analysis.
    pub fn new(trace: &'a Trace) -> Self {
        Self { trace }
    }

    /// Figure 7's concentration data.
    ///
    /// Per-server failure counts are the sizes of the trace index's
    /// per-server ticket buckets (filtered to failures) — or, columnar, one
    /// counting pass over the server-id column of the failure population.
    /// Either way no hash map is built and the result is independent of
    /// ticket order.
    pub fn concentration(&self) -> ConcentrationResult {
        let mut counts_desc: Vec<u32> = match self.trace.columns() {
            Some(cols) => {
                let servers = cols.servers();
                let mut counts = vec![0u32; self.trace.servers().len()];
                for &p in self.trace.index().failure_ids() {
                    counts[servers[p as usize] as usize] += 1;
                }
                counts.into_iter().filter(|&c| c > 0).collect()
            }
            None => self
                .trace
                .servers()
                .iter()
                .map(|s| {
                    self.trace
                        .fots_of_server(s.id)
                        .filter(|f| f.is_failure())
                        .count() as u32
                })
                .filter(|&c| c > 0)
                .collect(),
        };
        counts_desc.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = counts_desc.iter().map(|&c| c as usize).sum();
        ConcentrationResult {
            servers_ever_failed: counts_desc.len(),
            ever_failed_share: counts_desc.len() as f64 / self.trace.servers().len().max(1) as f64,
            total_failures: total,
            max_on_one_server: counts_desc.first().copied().unwrap_or(0),
            counts_desc,
        }
    }

    /// Repeating-failure statistics.
    pub fn repeats(&self) -> RepeatStats {
        if let Some(cols) = self.trace.columns() {
            return self.repeats_columnar(cols);
        }
        // component key → (failure occurrences, had a D_fixing ticket)
        let mut components: HashMap<(ServerId, u8, u8, u8), (u32, bool)> = HashMap::new();
        let mut failed_servers: HashMap<ServerId, bool> = HashMap::new();
        for fot in self.trace.failures() {
            let key = (
                fot.server,
                fot.device.index() as u8,
                fot.device_slot,
                type_tag(fot.failure_type),
            );
            let entry = components.entry(key).or_insert((0, false));
            entry.0 += 1;
            entry.1 |= fot.category == FotCategory::Fixing;
            failed_servers.entry(fot.server).or_insert(false);
        }
        let mut fixed = 0usize;
        let mut repeating = 0usize;
        for ((server, _, _, _), (occurrences, was_fixed)) in &components {
            if !was_fixed {
                continue;
            }
            fixed += 1;
            if *occurrences >= 2 {
                repeating += 1;
                failed_servers.insert(*server, true);
            }
        }
        let servers_with_repeats = failed_servers.values().filter(|&&v| v).count();
        RepeatStats {
            fixed_components: fixed,
            repeating_components: repeating,
            never_repeat_share: 1.0 - repeating as f64 / fixed.max(1) as f64,
            servers_with_repeats,
            repeat_server_share: servers_with_repeats as f64 / failed_servers.len().max(1) as f64,
        }
    }

    /// Columnar [`Skew::repeats`] kernel: the per-component hash map
    /// becomes a packed-integer sort. Each failure packs its component key
    /// `(server, class, slot, type)` into the high bits of a `u64` with the
    /// `D_fixing` flag in the LSB; after sorting, every component is a
    /// contiguous run (sorted by server, so distinct-server tallies are run
    /// boundaries too) and the run's last element carries the flag.
    fn repeats_columnar(&self, cols: &dcf_trace::FotColumns) -> RepeatStats {
        let ids = self.trace.index().failure_ids();
        let servers = cols.servers();
        let classes = cols.classes();
        let slots = cols.device_slots();
        let types = cols.failure_types();
        let categories = cols.categories();
        let mut keys: Vec<u64> = Vec::with_capacity(ids.len());
        for &p in ids {
            let i = p as usize;
            let key = (servers[i] as u64) << 24
                | (classes[i] as u64) << 16
                | (slots[i] as u64) << 8
                | types[i] as u64;
            keys.push(key << 1 | (categories[i] == dcf_trace::columns::FIXING_TAG) as u64);
        }
        keys.sort_unstable();

        let mut fixed = 0usize;
        let mut repeating = 0usize;
        let mut failed_servers = 0usize;
        let mut servers_with_repeats = 0usize;
        let mut last_server = u64::MAX;
        let mut last_repeat_server = u64::MAX;
        let mut i = 0;
        while i < keys.len() {
            let component = keys[i] >> 1;
            let mut j = i + 1;
            while j < keys.len() && keys[j] >> 1 == component {
                j += 1;
            }
            let server = component >> 24;
            if server != last_server {
                failed_servers += 1;
                last_server = server;
            }
            // Entries sort by (component, flag), so the run's last element
            // is flagged iff any D_fixing ticket touched the component.
            if keys[j - 1] & 1 == 1 {
                fixed += 1;
                if j - i >= 2 {
                    repeating += 1;
                    if server != last_repeat_server {
                        servers_with_repeats += 1;
                        last_repeat_server = server;
                    }
                }
            }
            i = j;
        }
        RepeatStats {
            fixed_components: fixed,
            repeating_components: repeating,
            never_repeat_share: 1.0 - repeating as f64 / fixed.max(1) as f64,
            servers_with_repeats,
            repeat_server_share: servers_with_repeats as f64 / failed_servers.max(1) as f64,
        }
    }
}

/// Stable small integer tag for a failure type (for compact hashing).
pub(crate) fn type_tag(t: dcf_trace::FailureType) -> u8 {
    dcf_trace::FailureType::ALL
        .iter()
        .position(|&x| x == t)
        .expect("ALL is complete") as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::synthetic_trace;

    #[test]
    fn concentration_is_heavily_skewed() {
        let trace = synthetic_trace();
        let c = Skew::new(&trace).concentration();
        assert!(c.servers_ever_failed > 0);
        assert_eq!(
            c.total_failures,
            c.counts_desc.iter().map(|&x| x as usize).sum::<usize>()
        );
        // The top 10% of ever-failed servers carry well over 10% of failures.
        let top10 = c.top_share(0.10);
        assert!(top10 > 0.2, "top-10% share {top10}");
        // Shares are monotone in the fraction.
        assert!(c.top_share(0.5) >= top10);
        assert!((c.top_share(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_and_ends_at_one() {
        let trace = synthetic_trace();
        let c = Skew::new(&trace).concentration();
        let curve = c.curve(50);
        assert!(!curve.is_empty());
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1 + 1e-12);
        }
        let (fx, fy) = *curve.last().unwrap();
        assert!((fx - 1.0).abs() < 1e-12 && (fy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn most_fixed_components_never_repeat() {
        let trace = synthetic_trace();
        let r = Skew::new(&trace).repeats();
        assert!(r.fixed_components > 0);
        // Paper: over 85% of fixed components never repeat.
        assert!(
            r.never_repeat_share > 0.80,
            "never-repeat share {}",
            r.never_repeat_share
        );
        // But repeats do exist, on a small share of servers.
        assert!(r.repeating_components > 0);
        assert!(r.repeat_server_share < 0.25);
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0,1]")]
    fn top_share_validates() {
        let trace = synthetic_trace();
        Skew::new(&trace).concentration().top_share(1.5);
    }
}
