//! The [`FailureStudy`] facade: one entry point running every §II–§VI
//! analysis, plus a serializable [`StudyReport`] with the headline metrics.

use dcf_obs::MetricsRegistry;
use serde::{Deserialize, Serialize};

use dcf_trace::{ComponentClass, FotCategory, Trace};

use crate::batch::Batch;
use crate::correlation::Correlation;
use crate::lifecycle::Lifecycle;
use crate::overview::Overview;
use crate::response::{Response, RtStats};
use crate::skew::Skew;
use crate::spatial::{Spatial, TableIv};
use crate::temporal::Temporal;

/// One study over one trace; hands out the section analyses.
///
/// # Examples
///
/// ```
/// use dcf_core::FailureStudy;
/// use dcf_sim::Scenario;
///
/// let trace = Scenario::small().seed(1).run().unwrap();
/// let study = FailureStudy::new(&trace);
/// let breakdown = study.overview().category_breakdown();
/// assert!(breakdown.fixing_share > 0.5);
/// let tbf = study.temporal().tbf_all().unwrap();
/// assert_eq!(tbf.fits.len(), 4); // exp / Weibull / gamma / lognormal
/// ```
#[derive(Debug, Clone)]
pub struct FailureStudy<'a> {
    trace: &'a Trace,
}

impl<'a> FailureStudy<'a> {
    /// Creates a study over a trace.
    pub fn new(trace: &'a Trace) -> Self {
        Self { trace }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &'a Trace {
        self.trace
    }

    /// §II overview (Tables I–III, Figure 2).
    pub fn overview(&self) -> Overview<'a> {
        Overview::new(self.trace)
    }

    /// §III-A/B temporal analyses (Figures 3–5, Hypotheses 1–4).
    pub fn temporal(&self) -> Temporal<'a> {
        Temporal::new(self.trace)
    }

    /// §III-C lifecycle analysis (Figure 6).
    pub fn lifecycle(&self) -> Lifecycle<'a> {
        Lifecycle::new(self.trace)
    }

    /// §III-D skew and repeats (Figure 7).
    pub fn skew(&self) -> Skew<'a> {
        Skew::new(self.trace)
    }

    /// §IV spatial analysis (Table IV, Figure 8, Hypothesis 5).
    pub fn spatial(&self) -> Spatial<'a> {
        Spatial::new(self.trace)
    }

    /// §V-A batch analysis (Table V).
    pub fn batch(&self) -> Batch<'a> {
        Batch::new(self.trace)
    }

    /// §V-B/C correlation mining (Tables VI–VIII).
    pub fn correlation(&self) -> Correlation<'a> {
        Correlation::new(self.trace)
    }

    /// §VI operator-response analysis (Figures 9–11).
    pub fn response(&self) -> Response<'a> {
        Response::new(self.trace)
    }

    /// §VII-A warning→failure prediction evaluation.
    pub fn prediction(&self) -> crate::prediction::Prediction<'a> {
        crate::prediction::Prediction::new(self.trace)
    }

    /// §VII-B FOT context miner (builds a per-day index; keep and reuse).
    pub fn miner(&self) -> crate::mining::FotMiner<'a> {
        crate::mining::FotMiner::new(self.trace)
    }

    /// §VII-A open-ticket backlog / degraded-capacity accounting.
    pub fn backlog(&self) -> crate::backlog::Backlog<'a> {
        crate::backlog::Backlog::new(self.trace)
    }

    /// Runs everything and collects the headline metrics.
    pub fn report(&self) -> StudyReport {
        self.report_with_metrics(&MetricsRegistry::disabled())
    }

    /// [`FailureStudy::report`] with instrumentation: each analysis section
    /// gets a `study.*` phase span in `metrics`, and `study.fots.analyzed`
    /// counts the tickets fed in. The report itself is unaffected.
    pub fn report_with_metrics(&self, metrics: &MetricsRegistry) -> StudyReport {
        metrics.add("study.fots.analyzed", self.trace.len() as u64);
        let span = metrics.phase("study.overview");
        let overview = self.overview();
        let categories = overview.category_breakdown();
        let components = overview.component_breakdown();
        drop(span);
        let span = metrics.phase("study.temporal");
        let temporal = self.temporal();
        let tbf = temporal.tbf_all().ok();
        let dow = temporal.day_of_week(None).ok();
        let hod = temporal.hour_of_day(None).ok();
        drop(span);
        let span = metrics.phase("study.skew");
        let skew = self.skew();
        let concentration = skew.concentration();
        let repeats = skew.repeats();
        drop(span);
        let span = metrics.phase("study.spatial");
        let spatial = self.spatial();
        let spatial_results = spatial.by_data_center(200);
        let table_iv = spatial.table_iv(&spatial_results);
        drop(span);
        let span = metrics.phase("study.correlation");
        let correlation = self.correlation().component_pairs();
        drop(span);
        let span = metrics.phase("study.response");
        let response = self.response();
        let rt_fixing = response.rt_of_category(FotCategory::Fixing).ok();
        let rt_false_alarm = response.rt_of_category(FotCategory::FalseAlarm).ok();
        drop(span);

        StudyReport {
            total_fots: self.trace.len(),
            total_failures: self.trace.failures().count(),
            fixing_share: categories.fixing_share,
            error_share: categories.error_share,
            false_alarm_share: categories.false_alarm_share,
            component_shares: components.iter().map(|c| (c.class, c.share)).collect(),
            hdd_share: components
                .iter()
                .find(|c| c.class == ComponentClass::Hdd)
                .map(|c| c.share)
                .unwrap_or(0.0),
            mtbf_minutes: tbf.as_ref().map(|t| t.mtbf_minutes),
            tbf_all_families_rejected: tbf.as_ref().map(|t| t.all_rejected_at_005),
            day_of_week_rejected_001: dow.map(|d| d.uniformity.rejects_at(0.01)),
            hour_of_day_rejected_001: hod.map(|h| h.uniformity.rejects_at(0.01)),
            servers_ever_failed: concentration.servers_ever_failed,
            max_fots_one_server: concentration.max_on_one_server,
            top_2pct_failure_share: concentration.top_share(0.02),
            never_repeat_share: repeats.never_repeat_share,
            repeat_server_share: repeats.repeat_server_share,
            table_iv,
            pair_server_share: correlation.pair_server_share,
            misc_involved_share: correlation.misc_involved_share,
            rt_fixing,
            rt_false_alarm,
        }
    }
}

/// Headline metrics of a full study — serializable, and the backbone of
/// EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyReport {
    /// Total tickets.
    pub total_fots: usize,
    /// Total failures (`D_fixing` + `D_error`).
    pub total_failures: usize,
    /// Table I shares.
    pub fixing_share: f64,
    /// Table I shares.
    pub error_share: f64,
    /// Table I shares.
    pub false_alarm_share: f64,
    /// Table II shares, largest class first.
    pub component_shares: Vec<(ComponentClass, f64)>,
    /// HDD share of failures.
    pub hdd_share: f64,
    /// Fleet MTBF in minutes (`None` if too few failures).
    pub mtbf_minutes: Option<f64>,
    /// Hypothesis 3 outcome: all four TBF families rejected at 0.05.
    pub tbf_all_families_rejected: Option<bool>,
    /// Hypothesis 1 outcome at 0.01.
    pub day_of_week_rejected_001: Option<bool>,
    /// Hypothesis 2 outcome at 0.01.
    pub hour_of_day_rejected_001: Option<bool>,
    /// Servers with ≥ 1 failure.
    pub servers_ever_failed: usize,
    /// Max FOTs on one server.
    pub max_fots_one_server: u32,
    /// Failure share of the top 2% of ever-failed servers (Figure 7).
    pub top_2pct_failure_share: f64,
    /// Share of fixed components that never repeat.
    pub never_repeat_share: f64,
    /// Share of ever-failed servers with repeats.
    pub repeat_server_share: f64,
    /// Table IV buckets.
    pub table_iv: TableIv,
    /// Share of ever-failed servers with correlated multi-component days.
    pub pair_server_share: f64,
    /// Share of correlated incidents involving misc.
    pub misc_involved_share: f64,
    /// Figure 9 stats for `D_fixing`.
    pub rt_fixing: Option<RtStats>,
    /// Figure 9 stats for `D_falsealarm`.
    pub rt_false_alarm: Option<RtStats>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::synthetic_trace;

    #[test]
    fn report_runs_end_to_end_on_small_trace() {
        let trace = synthetic_trace();
        let report = FailureStudy::new(&trace).report();
        assert_eq!(report.total_fots, trace.len());
        assert!(report.total_failures <= report.total_fots);
        assert!(report.hdd_share > 0.5);
        assert_eq!(report.component_shares.len(), 11);
        assert!(report.mtbf_minutes.unwrap() > 0.0);
        // Hypothesis outcomes are computed (rejection itself needs the
        // medium/paper scale's power; see tests/calibration.rs).
        assert!(report.tbf_all_families_rejected.is_some());
        assert!(report.day_of_week_rejected_001.is_some());
        assert!(report.hour_of_day_rejected_001.is_some());
        assert!(report.servers_ever_failed > 0);
        assert!(report.rt_fixing.is_some());
    }

    #[test]
    fn instrumented_report_matches_plain_report() {
        let trace = synthetic_trace();
        let study = FailureStudy::new(&trace);
        let registry = MetricsRegistry::new();
        assert_eq!(study.report(), study.report_with_metrics(&registry));
        assert_eq!(
            registry.counter_value("study.fots.analyzed"),
            Some(trace.len() as u64)
        );
        let report = registry.report("study");
        for phase in ["study.overview", "study.temporal", "study.response"] {
            assert!(report.phase_ms(phase).is_some(), "missing span {phase}");
        }
    }

    #[test]
    fn report_serializes() {
        let trace = synthetic_trace();
        let report = FailureStudy::new(&trace).report();
        let json = serde_json::to_string(&report).unwrap();
        let back: StudyReport = serde_json::from_str(&json).unwrap();
        // Exact f64 round-trips rely on serde_json's `float_roundtrip`
        // feature (enabled workspace-wide).
        assert_eq!(back, report);
    }
}
