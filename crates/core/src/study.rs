//! The [`FailureStudy`] facade: one entry point running every §II–§VI
//! analysis, plus a serializable [`StudyReport`] with the headline metrics.
//!
//! The report runs on top of the shared [`dcf_trace::TraceIndex`] (built
//! once, up front, under the `study.index` span) and schedules its six
//! independent sections over a small crossbeam thread pool — see
//! [`StudyOptions`] for the `threads` knob and the determinism contract.

use std::sync::atomic::{AtomicUsize, Ordering};

use dcf_obs::MetricsRegistry;
use serde::{Deserialize, Serialize};

use dcf_trace::{ComponentClass, FotCategory, Trace};

use crate::batch::Batch;
use crate::correlation::{CorrelatedComponents, Correlation};
use crate::lifecycle::Lifecycle;
use crate::overview::{CategoryBreakdown, ComponentShare, Overview};
use crate::response::{Response, RtStats};
use crate::skew::{ConcentrationResult, RepeatStats, Skew};
use crate::spatial::{Spatial, TableIv};
use crate::temporal::{DayOfWeekResult, HourOfDayResult, TbfResult, Temporal};

/// One study over one trace; hands out the section analyses.
///
/// # Examples
///
/// ```
/// use dcf_core::FailureStudy;
/// use dcf_sim::{RunOptions, Scenario};
///
/// let trace = Scenario::small().seed(1).simulate(&RunOptions::default()).unwrap();
/// let study = FailureStudy::new(&trace);
/// let breakdown = study.overview().category_breakdown();
/// assert!(breakdown.fixing_share > 0.5);
/// let tbf = study.temporal().tbf_all().unwrap();
/// assert_eq!(tbf.fits.len(), 4); // exp / Weibull / gamma / lognormal
/// ```
#[derive(Debug, Clone)]
pub struct FailureStudy<'a> {
    trace: &'a Trace,
}

impl<'a> FailureStudy<'a> {
    /// Creates a study over a trace.
    pub fn new(trace: &'a Trace) -> Self {
        Self { trace }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &'a Trace {
        self.trace
    }

    /// §II overview (Tables I–III, Figure 2).
    pub fn overview(&self) -> Overview<'a> {
        Overview::new(self.trace)
    }

    /// §III-A/B temporal analyses (Figures 3–5, Hypotheses 1–4).
    pub fn temporal(&self) -> Temporal<'a> {
        Temporal::new(self.trace)
    }

    /// §III-C lifecycle analysis (Figure 6).
    pub fn lifecycle(&self) -> Lifecycle<'a> {
        Lifecycle::new(self.trace)
    }

    /// §III-D skew and repeats (Figure 7).
    pub fn skew(&self) -> Skew<'a> {
        Skew::new(self.trace)
    }

    /// §IV spatial analysis (Table IV, Figure 8, Hypothesis 5).
    pub fn spatial(&self) -> Spatial<'a> {
        Spatial::new(self.trace)
    }

    /// §V-A batch analysis (Table V).
    pub fn batch(&self) -> Batch<'a> {
        Batch::new(self.trace)
    }

    /// §V-B/C correlation mining (Tables VI–VIII).
    pub fn correlation(&self) -> Correlation<'a> {
        Correlation::new(self.trace)
    }

    /// §VI operator-response analysis (Figures 9–11).
    pub fn response(&self) -> Response<'a> {
        Response::new(self.trace)
    }

    /// §VII-A warning→failure prediction evaluation.
    pub fn prediction(&self) -> crate::prediction::Prediction<'a> {
        crate::prediction::Prediction::new(self.trace)
    }

    /// §VII-B FOT context miner (builds a per-day index; keep and reuse).
    pub fn miner(&self) -> crate::mining::FotMiner<'a> {
        crate::mining::FotMiner::new(self.trace)
    }

    /// §VII-A open-ticket backlog / degraded-capacity accounting.
    pub fn backlog(&self) -> crate::backlog::Backlog<'a> {
        crate::backlog::Backlog::new(self.trace)
    }

    /// Runs every section and collects the headline metrics under
    /// `options`: `options.threads` schedules the six independent sections
    /// over a crossbeam scope, and `options.metrics` records one detached
    /// `study.<section>` span per section (plus `study.index` and
    /// `trace.build_columns` for the up-front index/column builds and
    /// `study.sections` for the scheduler's wall time) along with a
    /// `study.fots.analyzed` counter.
    ///
    /// The report is byte-identical for every thread count and metrics
    /// setting — see [`StudyOptions`].
    pub fn analyze(&self, options: &StudyOptions) -> StudyReport {
        let metrics = &options.metrics;
        metrics.add("study.fots.analyzed", self.trace.len() as u64);
        {
            // Build the shared index before any section starts, so section
            // spans measure analysis work instead of racing to initialize
            // the cache. Skip in scan-only mode, where no accessor uses it.
            let _span = metrics.phase("study.index");
            if !self.trace.scan_only() {
                let _ = self.trace.index();
            }
        }
        {
            // Same for the columnar store: a no-op when the trace runs
            // row-only (or scan-only), a single build otherwise.
            let _span = metrics.phase("trace.build_columns");
            let _ = self.trace.columns();
        }
        let workers = options.threads.clamp(1, SECTION_NAMES.len());
        metrics.set_gauge("study.threads", workers as f64);

        let sections_span = metrics.phase("study.sections");
        let mut slots: [Option<SectionOutput>; SECTION_COUNT] = Default::default();
        if workers == 1 {
            for (section, slot) in slots.iter_mut().enumerate() {
                let span = metrics.worker_phase(SECTION_NAMES[section]);
                *slot = Some(self.run_section(section));
                drop(span);
            }
        } else {
            // Work-stealing over a shared cursor: each worker claims the
            // next unclaimed section until all are done. Which worker runs
            // which section is racy; the outputs are not — every section
            // is a pure function of the (shared, read-only) trace, and the
            // merge below reassembles them in fixed order.
            let next = AtomicUsize::new(0);
            let outputs = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        scope.spawn(move |_| {
                            let mut done = Vec::new();
                            loop {
                                let section = next.fetch_add(1, Ordering::Relaxed);
                                if section >= SECTION_COUNT {
                                    break;
                                }
                                let span = metrics.worker_phase(SECTION_NAMES[section]);
                                done.push((section, self.run_section(section)));
                                drop(span);
                            }
                            done
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("study worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("study thread pool");
            for (section, output) in outputs {
                slots[section] = Some(output);
            }
        }
        drop(sections_span);
        self.assemble(slots)
    }

    /// Runs one section by scheduler slot (see [`SECTION_NAMES`] order).
    fn run_section(&self, section: usize) -> SectionOutput {
        match section {
            0 => {
                let overview = self.overview();
                SectionOutput::Overview {
                    categories: overview.category_breakdown(),
                    components: overview.component_breakdown(),
                }
            }
            1 => {
                // One fused pass over the failure population instead of
                // three (identical results; see `Temporal::fused`).
                let temporal = self.temporal();
                let (dow, hod, tbf) = temporal.fused(None);
                SectionOutput::Temporal {
                    tbf: tbf.ok(),
                    dow: dow.ok(),
                    hod: hod.ok(),
                }
            }
            2 => {
                let skew = self.skew();
                SectionOutput::Skew {
                    concentration: skew.concentration(),
                    repeats: skew.repeats(),
                }
            }
            3 => {
                let spatial = self.spatial();
                let results = spatial.by_data_center(200);
                SectionOutput::Spatial {
                    table_iv: spatial.table_iv(&results),
                }
            }
            4 => SectionOutput::Correlation(self.correlation().component_pairs()),
            5 => {
                let response = self.response();
                SectionOutput::Response {
                    rt_fixing: response.rt_of_category(FotCategory::Fixing).ok(),
                    rt_false_alarm: response.rt_of_category(FotCategory::FalseAlarm).ok(),
                }
            }
            _ => unreachable!("unknown study section {section}"),
        }
    }

    /// Merges the section outputs (in fixed slot order) into the report.
    fn assemble(&self, mut slots: [Option<SectionOutput>; SECTION_COUNT]) -> StudyReport {
        let Some(SectionOutput::Overview {
            categories,
            components,
        }) = slots[0].take()
        else {
            unreachable!("overview section missing")
        };
        let Some(SectionOutput::Temporal { tbf, dow, hod }) = slots[1].take() else {
            unreachable!("temporal section missing")
        };
        let Some(SectionOutput::Skew {
            concentration,
            repeats,
        }) = slots[2].take()
        else {
            unreachable!("skew section missing")
        };
        let Some(SectionOutput::Spatial { table_iv }) = slots[3].take() else {
            unreachable!("spatial section missing")
        };
        let Some(SectionOutput::Correlation(correlation)) = slots[4].take() else {
            unreachable!("correlation section missing")
        };
        let Some(SectionOutput::Response {
            rt_fixing,
            rt_false_alarm,
        }) = slots[5].take()
        else {
            unreachable!("response section missing")
        };

        StudyReport {
            total_fots: self.trace.len(),
            total_failures: self.trace.failures().count(),
            fixing_share: categories.fixing_share,
            error_share: categories.error_share,
            false_alarm_share: categories.false_alarm_share,
            component_shares: components.iter().map(|c| (c.class, c.share)).collect(),
            hdd_share: components
                .iter()
                .find(|c| c.class == ComponentClass::Hdd)
                .map(|c| c.share)
                .unwrap_or(0.0),
            mtbf_minutes: tbf.as_ref().map(|t| t.mtbf_minutes),
            tbf_all_families_rejected: tbf.as_ref().map(|t| t.all_rejected_at_005),
            day_of_week_rejected_001: dow.map(|d| d.uniformity.rejects_at(0.01)),
            hour_of_day_rejected_001: hod.map(|h| h.uniformity.rejects_at(0.01)),
            servers_ever_failed: concentration.servers_ever_failed,
            max_fots_one_server: concentration.max_on_one_server,
            top_2pct_failure_share: concentration.top_share(0.02),
            never_repeat_share: repeats.never_repeat_share,
            repeat_server_share: repeats.repeat_server_share,
            table_iv,
            pair_server_share: correlation.pair_server_share,
            misc_involved_share: correlation.misc_involved_share,
            rt_fixing,
            rt_false_alarm,
        }
    }
}

/// Number of independently schedulable report sections.
const SECTION_COUNT: usize = 6;

/// Span names of the report sections, in scheduler slot order (also the
/// serial execution order).
const SECTION_NAMES: [&str; SECTION_COUNT] = [
    "study.overview",
    "study.temporal",
    "study.skew",
    "study.spatial",
    "study.correlation",
    "study.response",
];

/// Owned output of one report section, tagged by scheduler slot.
// Six short-lived values exist per report, immediately consumed by the
// assembler; boxing the temporal variant would buy nothing but noise.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum SectionOutput {
    /// Slot 0: §II overview.
    Overview {
        /// Table I shares.
        categories: CategoryBreakdown,
        /// Table II shares.
        components: Vec<ComponentShare>,
    },
    /// Slot 1: §III-A/B temporal analyses.
    Temporal {
        /// Figure 5 / Hypotheses 3–4.
        tbf: Option<TbfResult>,
        /// Figure 3 / Hypothesis 1.
        dow: Option<DayOfWeekResult>,
        /// Figure 4 / Hypothesis 2.
        hod: Option<HourOfDayResult>,
    },
    /// Slot 2: §III-D skew and repeats.
    Skew {
        /// Figure 7 concentration curve.
        concentration: ConcentrationResult,
        /// Repeat-failure shares.
        repeats: RepeatStats,
    },
    /// Slot 3: §IV spatial analysis.
    Spatial {
        /// Table IV buckets.
        table_iv: TableIv,
    },
    /// Slot 4: §V-B/C correlation mining.
    Correlation(CorrelatedComponents),
    /// Slot 5: §VI operator-response analysis.
    Response {
        /// Figure 9 stats for `D_fixing`.
        rt_fixing: Option<RtStats>,
        /// Figure 9 stats for `D_falsealarm`.
        rt_false_alarm: Option<RtStats>,
    },
}

/// Execution options for [`FailureStudy::analyze`].
///
/// # Determinism
///
/// Neither knob affects the report. `threads` changes wall-clock behavior
/// only: every section is a pure, RNG-free function of the trace, all
/// shared state is read-only (the [`dcf_trace::TraceIndex`] is built
/// before the pool starts), and section outputs are merged in fixed slot
/// order — so the resulting [`StudyReport`] is byte-identical (under serde
/// JSON) for every thread count, and identical to a forced-scan
/// ([`dcf_trace::Trace::set_scan_only`]) run. `tests/index_parallel.rs`
/// asserts exactly this. `metrics` records timings and counters without
/// touching the analysis itself.
#[derive(Debug, Clone)]
pub struct StudyOptions {
    /// Worker threads for the section scheduler. `1` (the default) runs
    /// the sections serially on the calling thread; larger values are
    /// capped at the number of sections.
    pub threads: usize,
    /// Metrics sink for section spans and counters. The default
    /// (disabled) registry records nothing at near-zero cost.
    pub metrics: MetricsRegistry,
}

impl Default for StudyOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            metrics: MetricsRegistry::disabled(),
        }
    }
}

impl StudyOptions {
    /// Options running the sections on `threads` workers (`0` and `1`
    /// both mean serial), uninstrumented.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            ..Self::default()
        }
    }

    /// Attaches a metrics registry (cloned; clones share the same state).
    pub fn metrics(mut self, metrics: &MetricsRegistry) -> Self {
        self.metrics = metrics.clone();
        self
    }
}

/// Headline metrics of a full study — serializable, and the backbone of
/// EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyReport {
    /// Total tickets.
    pub total_fots: usize,
    /// Total failures (`D_fixing` + `D_error`).
    pub total_failures: usize,
    /// Table I shares.
    pub fixing_share: f64,
    /// Table I shares.
    pub error_share: f64,
    /// Table I shares.
    pub false_alarm_share: f64,
    /// Table II shares, largest class first.
    pub component_shares: Vec<(ComponentClass, f64)>,
    /// HDD share of failures.
    pub hdd_share: f64,
    /// Fleet MTBF in minutes (`None` if too few failures).
    pub mtbf_minutes: Option<f64>,
    /// Hypothesis 3 outcome: all four TBF families rejected at 0.05.
    pub tbf_all_families_rejected: Option<bool>,
    /// Hypothesis 1 outcome at 0.01.
    pub day_of_week_rejected_001: Option<bool>,
    /// Hypothesis 2 outcome at 0.01.
    pub hour_of_day_rejected_001: Option<bool>,
    /// Servers with ≥ 1 failure.
    pub servers_ever_failed: usize,
    /// Max FOTs on one server.
    pub max_fots_one_server: u32,
    /// Failure share of the top 2% of ever-failed servers (Figure 7).
    pub top_2pct_failure_share: f64,
    /// Share of fixed components that never repeat.
    pub never_repeat_share: f64,
    /// Share of ever-failed servers with repeats.
    pub repeat_server_share: f64,
    /// Table IV buckets.
    pub table_iv: TableIv,
    /// Share of ever-failed servers with correlated multi-component days.
    pub pair_server_share: f64,
    /// Share of correlated incidents involving misc.
    pub misc_involved_share: f64,
    /// Figure 9 stats for `D_fixing`.
    pub rt_fixing: Option<RtStats>,
    /// Figure 9 stats for `D_falsealarm`.
    pub rt_false_alarm: Option<RtStats>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::synthetic_trace;

    #[test]
    fn report_runs_end_to_end_on_small_trace() {
        let trace = synthetic_trace();
        let report = FailureStudy::new(&trace).analyze(&StudyOptions::default());
        assert_eq!(report.total_fots, trace.len());
        assert!(report.total_failures <= report.total_fots);
        assert!(report.hdd_share > 0.5);
        assert_eq!(report.component_shares.len(), 11);
        assert!(report.mtbf_minutes.unwrap() > 0.0);
        // Hypothesis outcomes are computed (rejection itself needs the
        // medium/paper scale's power; see tests/calibration.rs).
        assert!(report.tbf_all_families_rejected.is_some());
        assert!(report.day_of_week_rejected_001.is_some());
        assert!(report.hour_of_day_rejected_001.is_some());
        assert!(report.servers_ever_failed > 0);
        assert!(report.rt_fixing.is_some());
    }

    #[test]
    fn instrumented_report_matches_plain_report() {
        let trace = synthetic_trace();
        let study = FailureStudy::new(&trace);
        let registry = MetricsRegistry::new();
        assert_eq!(
            study.analyze(&StudyOptions::default()),
            study.analyze(&StudyOptions::default().metrics(&registry))
        );
        assert_eq!(
            registry.counter_value("study.fots.analyzed"),
            Some(trace.len() as u64)
        );
        let report = registry.report("study");
        for phase in ["study.overview", "study.temporal", "study.response"] {
            assert!(report.phase_ms(phase).is_some(), "missing span {phase}");
        }
    }

    #[test]
    fn parallel_report_matches_serial_report() {
        let trace = synthetic_trace();
        let study = FailureStudy::new(&trace);
        let serial = study.analyze(&StudyOptions::default());
        for threads in [2, 4, 64] {
            let registry = MetricsRegistry::new();
            let parallel = study.analyze(&StudyOptions::with_threads(threads).metrics(&registry));
            assert_eq!(parallel, serial, "threads={threads}");
            let report = registry.report("parallel");
            assert_eq!(
                report.gauge("study.threads"),
                Some(threads.min(super::SECTION_COUNT) as f64)
            );
            for name in super::SECTION_NAMES.iter().copied().chain([
                "study.index",
                "trace.build_columns",
                "study.sections",
            ]) {
                assert!(report.phase_ms(name).is_some(), "missing span {name}");
            }
        }
    }

    #[test]
    fn report_serializes() {
        let trace = synthetic_trace();
        let report = FailureStudy::new(&trace).analyze(&StudyOptions::default());
        // Minimal build environments stub serde_json; skip if so.
        let Ok(json) = std::panic::catch_unwind(|| serde_json::to_string(&report).unwrap()) else {
            return;
        };
        let back: StudyReport = serde_json::from_str(&json).unwrap();
        // Exact f64 round-trips rely on serde_json's `float_roundtrip`
        // feature (enabled workspace-wide).
        assert_eq!(back, report);
    }
}
