//! §IV spatial analysis: failure rate vs rack position (Hypothesis 5,
//! Table IV, Figure 8).
//!
//! Following the paper's method: repeating failures are filtered out, a
//! server failure is counted when any of its components fail, counts are
//! normalized by the number of servers at each position, and a chi-squared
//! test (expected ∝ per-position population) decides Hypothesis 5 per data
//! center. Positions outside μ±2σ of the per-position failure ratio are
//! flagged as anomalies.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use dcf_stats::anomaly::sigma_outliers;
use dcf_stats::chi_square::{against_expected, ChiSquareOutcome};
use dcf_trace::{DataCenterId, Trace};

/// Per-position statistics inside one data center (Figure 8's bars).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PositionStat {
    /// Rack slot position.
    pub position: u8,
    /// Servers installed at this position across the DC.
    pub servers: usize,
    /// (Deduplicated) server failures observed at this position.
    pub failures: usize,
    /// Failures per server (the "failure ratio" the paper plots).
    pub ratio: f64,
}

/// Hypothesis 5 result for one data center.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcSpatialResult {
    /// The data center.
    pub dc: DataCenterId,
    /// Whether it was built after 2014 (modern cooling cohort).
    pub built_after_2014: bool,
    /// Per-position stats, for positions hosting at least one server.
    pub positions: Vec<PositionStat>,
    /// Chi-squared test of Hypothesis 5 (`None` if too few failures).
    pub test: Option<ChiSquareOutcome>,
    /// Positions whose failure ratio lies outside μ ± 2σ.
    pub anomalous_positions: Vec<u8>,
}

/// Table IV: the rejected/borderline/accepted split across data centers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableIv {
    /// Data centers with p < 0.01 (paper: 10 of 24).
    pub rejected_001: usize,
    /// Data centers with 0.01 ≤ p < 0.05 (paper: 4 of 24).
    pub borderline: usize,
    /// Data centers with p ≥ 0.05 (paper: 10 of 24).
    pub accepted: usize,
    /// Data centers skipped for lack of data.
    pub skipped: usize,
}

/// §IV analysis over one trace.
#[derive(Debug, Clone)]
pub struct Spatial<'a> {
    trace: &'a Trace,
}

impl<'a> Spatial<'a> {
    /// Creates the analysis.
    pub fn new(trace: &'a Trace) -> Self {
        Self { trace }
    }

    /// Hypothesis 5 per data center.
    ///
    /// `min_failures` guards the chi-squared test: DCs with fewer
    /// (deduplicated) failures get `test: None`.
    pub fn by_data_center(&self, min_failures: usize) -> Vec<DcSpatialResult> {
        let n_dcs = self.trace.data_centers().len();
        let max_pos = self
            .trace
            .data_centers()
            .iter()
            .map(|d| d.rack_positions as usize)
            .max()
            .unwrap_or(0);

        // Per-position server populations.
        let mut servers = vec![vec![0usize; max_pos]; n_dcs];
        for s in self.trace.servers() {
            servers[s.data_center.index()][s.position.index()] += 1;
        }

        self.trace
            .data_centers()
            .iter()
            .map(|dc| {
                let i = dc.id.index();
                // Deduplicated failures for this DC, off its index bucket:
                // repeats of the same problem on the same component are
                // filtered out, as the paper does. Buckets are time-sorted,
                // so the kept ticket is the earliest occurrence — the same
                // one a full time-ordered scan would keep. A component never
                // spans data centers (the key includes its server), so
                // per-DC dedup sets match one global set.
                let mut failures = vec![0usize; max_pos];
                match self.trace.columns() {
                    // Columnar kernel: the dedup hash set becomes a sort of
                    // packed (component key, row) pairs. Rows are appended
                    // in ascending (= time) order, so after sorting, the
                    // first pair of each key run is the earliest occurrence
                    // — exactly the ticket the hash set would have kept.
                    Some(cols) => {
                        let servers = cols.servers();
                        let classes = cols.classes();
                        let slots = cols.device_slots();
                        let types = cols.failure_types();
                        let mut keyed: Vec<(u64, u32)> = self
                            .trace
                            .index()
                            .dc_failure_ids(dc.id)
                            .iter()
                            .map(|&p| {
                                let f = p as usize;
                                let key = (servers[f] as u64) << 24
                                    | (classes[f] as u64) << 16
                                    | (slots[f] as u64) << 8
                                    | types[f] as u64;
                                (key, p)
                            })
                            .collect();
                        keyed.sort_unstable();
                        let mut prev = u64::MAX; // keys use < 57 bits
                        for &(key, p) in &keyed {
                            if key == prev {
                                continue;
                            }
                            prev = key;
                            failures[cols.rack_positions()[p as usize] as usize] += 1;
                        }
                    }
                    None => {
                        let mut seen: HashSet<(u32, u8, u8, u8)> = HashSet::new();
                        for fot in self.trace.failures_in_dc(dc.id) {
                            let key = (
                                fot.server.raw(),
                                fot.device.index() as u8,
                                fot.device_slot,
                                crate::skew_type_tag(fot.failure_type),
                            );
                            if !seen.insert(key) {
                                continue;
                            }
                            failures[fot.rack_position.index()] += 1;
                        }
                    }
                }
                let positions: Vec<PositionStat> = (0..dc.rack_positions as usize)
                    .filter(|&p| servers[i][p] > 0)
                    .map(|p| PositionStat {
                        position: p as u8,
                        servers: servers[i][p],
                        failures: failures[p],
                        ratio: failures[p] as f64 / servers[i][p] as f64,
                    })
                    .collect();
                let total_failures: usize = positions.iter().map(|p| p.failures).sum();
                let total_servers: usize = positions.iter().map(|p| p.servers).sum();

                let test = if total_failures >= min_failures && positions.len() >= 3 {
                    let observed: Vec<f64> = positions.iter().map(|p| p.failures as f64).collect();
                    let expected: Vec<f64> = positions
                        .iter()
                        .map(|p| total_failures as f64 * p.servers as f64 / total_servers as f64)
                        .collect();
                    against_expected(&observed, &expected).ok()
                } else {
                    None
                };

                let ratios: Vec<f64> = positions.iter().map(|p| p.ratio).collect();
                let anomalous_positions = sigma_outliers(&ratios, 2.0)
                    .map(|hits| {
                        let mut v: Vec<u8> =
                            hits.iter().map(|a| positions[a.index].position).collect();
                        v.sort_unstable();
                        v
                    })
                    .unwrap_or_default();

                DcSpatialResult {
                    dc: dc.id,
                    built_after_2014: dc.built_after_2014(),
                    positions,
                    test,
                    anomalous_positions,
                }
            })
            .collect()
    }

    /// Table IV's bucket counts at the 0.01 / 0.05 thresholds.
    pub fn table_iv(&self, results: &[DcSpatialResult]) -> TableIv {
        let mut t = TableIv {
            rejected_001: 0,
            borderline: 0,
            accepted: 0,
            skipped: 0,
        };
        for r in results {
            match &r.test {
                None => t.skipped += 1,
                Some(out) if out.p_value < 0.01 => t.rejected_001 += 1,
                Some(out) if out.p_value < 0.05 => t.borderline += 1,
                Some(_) => t.accepted += 1,
            }
        }
        t
    }

    /// Among data centers built after 2014 (with a valid test), the share
    /// where Hypothesis 5 can NOT be rejected at `alpha` — the paper finds
    /// ~90% at 0.02.
    pub fn modern_acceptance_share(&self, results: &[DcSpatialResult], alpha: f64) -> f64 {
        let modern: Vec<&DcSpatialResult> = results
            .iter()
            .filter(|r| r.built_after_2014 && r.test.is_some())
            .collect();
        if modern.is_empty() {
            return f64::NAN;
        }
        let accepted = modern
            .iter()
            .filter(|r| !r.test.as_ref().expect("filtered Some").rejects_at(alpha))
            .count();
        accepted as f64 / modern.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::medium_trace;

    #[test]
    fn positions_and_populations_are_consistent() {
        let trace = medium_trace();
        let results = Spatial::new(&trace).by_data_center(200);
        assert_eq!(results.len(), trace.data_centers().len());
        for r in &results {
            let servers: usize = r.positions.iter().map(|p| p.servers).sum();
            assert!(servers > 0);
            for p in &r.positions {
                assert!(p.servers > 0); // zero-population positions excluded
                assert!((p.ratio - p.failures as f64 / p.servers as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn old_gradient_dcs_reject_modern_ones_accept() {
        let trace = medium_trace();
        let spatial = Spatial::new(&trace);
        let results = spatial.by_data_center(200);
        // DC 1 ("data center B") has the strong gradient: rejected at 0.01.
        let dc_b = &results[1];
        if let Some(test) = &dc_b.test {
            assert!(test.rejects_at(0.01), "DC B: {test}");
        }
        // Modern DCs mostly cannot reject.
        let share = spatial.modern_acceptance_share(&results, 0.02);
        assert!(share.is_nan() || share > 0.5, "modern acceptance {share}");
    }

    #[test]
    fn dc_a_flags_its_hot_positions() {
        let trace = medium_trace();
        let results = Spatial::new(&trace).by_data_center(200);
        let dc_a = &results[0];
        // The builder gives DC 0 hot spots at positions 22 and 35 (1.5× on
        // background hazards). At 20k servers the 2σ anomaly flag is
        // fluctuation-dominated — batch events dilute the position signal —
        // so assert the robust form: both hot positions rank in the top 5
        // failure ratios across the DC's ~40 populated positions.
        let mut ranked: Vec<_> = dc_a
            .positions
            .iter()
            .map(|p| (p.position, p.ratio))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        let top: Vec<u8> = ranked.iter().take(5).map(|(pos, _)| *pos).collect();
        assert!(
            top.contains(&22) && top.contains(&35),
            "DC A hot positions not in top-5 ratios: {top:?}"
        );
    }

    #[test]
    fn table_iv_buckets_partition_the_dcs() {
        let trace = medium_trace();
        let spatial = Spatial::new(&trace);
        let results = spatial.by_data_center(200);
        let t = spatial.table_iv(&results);
        assert_eq!(
            t.rejected_001 + t.borderline + t.accepted + t.skipped,
            results.len()
        );
        // Both rejection and acceptance occur in a mixed-cooling fleet.
        assert!(t.rejected_001 > 0, "{t:?}");
        assert!(t.accepted > 0, "{t:?}");
    }
}
