//! Shared test fixtures: a small simulated trace, generated once per test
//! binary and cloned into each test.

use std::sync::OnceLock;

use dcf_trace::Trace;

static SMALL: OnceLock<Trace> = OnceLock::new();
static MEDIUM: OnceLock<Trace> = OnceLock::new();

/// A small (2k-server, 360-day) calibrated trace, deterministic across runs.
pub(crate) fn synthetic_trace() -> Trace {
    SMALL
        .get_or_init(|| {
            dcf_sim::Scenario::small()
                .seed(0xDCF)
                .simulate(&dcf_sim::RunOptions::default())
                .expect("small scenario runs")
        })
        .clone()
}

/// A medium (20k-server) trace for analyses that need more volume
/// (spatial chi-squared, lifecycle curves).
pub(crate) fn medium_trace() -> Trace {
    MEDIUM
        .get_or_init(|| {
            dcf_sim::Scenario::medium()
                .seed(0xDCF)
                .simulate(&dcf_sim::RunOptions::default())
                .expect("medium scenario runs")
        })
        .clone()
}
