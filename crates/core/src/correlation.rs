//! §V-B/§V-C correlated-failure mining: same-server multi-component
//! failures (Table VI), causal examples (Table VII), and synchronously
//! repeating server groups (Table VIII).
//!
//! # Examples
//!
//! ```
//! use dcf_core::correlation::Correlation;
//!
//! let trace = dcf_sim::Scenario::small().seed(1).simulate(&dcf_sim::RunOptions::default()).unwrap();
//! let corr = Correlation::new(&trace).component_pairs();
//! // Correlated multi-component days are rare (paper: 0.49% of servers).
//! assert!(corr.pair_server_share < 0.05);
//! ```

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dcf_trace::{ComponentClass, Fot, ServerId, SimTime, Trace};

/// An unordered component-class pair with a count (a Table VI cell).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairCount {
    /// First class (lower Table II index).
    pub a: ComponentClass,
    /// Second class.
    pub b: ComponentClass,
    /// Number of correlated incidents.
    pub count: usize,
}

/// Table VI plus the §V-B summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelatedComponents {
    /// Pair counts, largest first.
    pub pairs: Vec<PairCount>,
    /// Servers that experienced at least one correlated incident.
    pub servers_with_pairs: usize,
    /// Share of ever-failed servers with correlated incidents
    /// (paper: 0.49%).
    pub pair_server_share: f64,
    /// Share of correlated incidents involving a miscellaneous report
    /// (paper: 71.5%).
    pub misc_involved_share: f64,
}

/// A Table VII-style causal example: two same-server failures minutes
/// apart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CausalExample {
    /// The server.
    pub server: ServerId,
    /// `(class, device path, error time)` of the earlier failure.
    pub first: (ComponentClass, String, SimTime),
    /// Same for the later failure.
    pub second: (ComponentClass, String, SimTime),
}

/// A Table VIII-style synchronous group: servers repeatedly failing within
/// seconds of each other.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynchronousGroup {
    /// The servers involved.
    pub servers: Vec<ServerId>,
    /// The shared occurrence times (first server's timestamps).
    pub occurrences: Vec<SimTime>,
}

/// §V-B/C analysis over one trace.
#[derive(Debug, Clone)]
pub struct Correlation<'a> {
    trace: &'a Trace,
}

impl<'a> Correlation<'a> {
    /// Creates the analysis.
    pub fn new(trace: &'a Trace) -> Self {
        Self { trace }
    }

    /// Table VI: failures of different component classes on the same server
    /// within one calendar day.
    ///
    /// Walks the trace's failure bucket once; the pair table is sorted by
    /// count with a class-index tiebreak so the output is deterministic
    /// regardless of hash-map iteration order.
    pub fn component_pairs(&self) -> CorrelatedComponents {
        if let Some(cols) = self.trace.columns() {
            return self.component_pairs_columnar(cols);
        }
        // (server, day) → set of classes (bitmask over the 11 classes).
        let mut day_classes: HashMap<(ServerId, u64), u16> = HashMap::new();
        let mut ever_failed: HashMap<ServerId, ()> = HashMap::new();
        for fot in self.trace.failures() {
            ever_failed.insert(fot.server, ());
            let key = (fot.server, fot.error_time.day_index());
            *day_classes.entry(key).or_insert(0) |= 1 << fot.device.index();
        }

        let mut pair_counts: HashMap<(usize, usize), usize> = HashMap::new();
        let mut incidents_with_misc = 0usize;
        let mut incidents = 0usize;
        let mut servers_with_pairs: HashMap<ServerId, ()> = HashMap::new();
        let misc_bit = 1u16 << ComponentClass::Miscellaneous.index();
        for (&(server, _day), &mask) in &day_classes {
            if mask.count_ones() < 2 {
                continue;
            }
            incidents += 1;
            servers_with_pairs.insert(server, ());
            if mask & misc_bit != 0 {
                incidents_with_misc += 1;
            }
            let classes: Vec<usize> = (0..11).filter(|i| mask & (1 << i) != 0).collect();
            for (i, &a) in classes.iter().enumerate() {
                for &b in &classes[i + 1..] {
                    *pair_counts.entry((a, b)).or_insert(0) += 1;
                }
            }
        }

        let mut pairs: Vec<PairCount> = pair_counts
            .into_iter()
            .map(|((a, b), count)| PairCount {
                a: ComponentClass::ALL[a],
                b: ComponentClass::ALL[b],
                count,
            })
            .collect();
        pairs.sort_by(|x, y| {
            y.count
                .cmp(&x.count)
                .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
        });

        CorrelatedComponents {
            pairs,
            servers_with_pairs: servers_with_pairs.len(),
            pair_server_share: servers_with_pairs.len() as f64 / ever_failed.len().max(1) as f64,
            misc_involved_share: incidents_with_misc as f64 / incidents.max(1) as f64,
        }
    }

    /// Columnar [`Correlation::component_pairs`] kernel: the two hash maps
    /// become one sort of `(server << 32 | day, class bit)` entries. After
    /// sorting, every `(server, day)` cell is a contiguous run whose masks
    /// OR together, runs are grouped by server (ever-failed tally = server
    /// changes), and the dense 11×11 pair table replaces the pair map. The
    /// final sort comparator is a total order identical to the row path's,
    /// so the output is byte-identical.
    fn component_pairs_columnar(&self, cols: &dcf_trace::FotColumns) -> CorrelatedComponents {
        let servers = cols.servers();
        let days = cols.error_days();
        let classes = cols.classes();
        let ids = self.trace.index().failure_ids();
        let mut entries: Vec<(u64, u16)> = Vec::with_capacity(ids.len());
        for &p in ids {
            let i = p as usize;
            entries.push(((servers[i] as u64) << 32 | days[i] as u64, 1 << classes[i]));
        }
        entries.sort_unstable();

        let mut pair_counts = [[0usize; 11]; 11];
        let mut incidents_with_misc = 0usize;
        let mut incidents = 0usize;
        let mut ever_failed = 0usize;
        let mut servers_with_pairs = 0usize;
        let mut last_server = u64::MAX;
        let mut last_pair_server = u64::MAX;
        let misc_bit = 1u16 << ComponentClass::Miscellaneous.index();
        let mut i = 0;
        while i < entries.len() {
            let key = entries[i].0;
            let mut mask = 0u16;
            let mut j = i;
            while j < entries.len() && entries[j].0 == key {
                mask |= entries[j].1;
                j += 1;
            }
            let server = key >> 32;
            if server != last_server {
                ever_failed += 1;
                last_server = server;
            }
            if mask.count_ones() >= 2 {
                incidents += 1;
                if server != last_pair_server {
                    servers_with_pairs += 1;
                    last_pair_server = server;
                }
                if mask & misc_bit != 0 {
                    incidents_with_misc += 1;
                }
                for (a, row) in pair_counts.iter_mut().enumerate() {
                    if mask & (1 << a) == 0 {
                        continue;
                    }
                    for (b, cell) in row.iter_mut().enumerate().skip(a + 1) {
                        if mask & (1 << b) != 0 {
                            *cell += 1;
                        }
                    }
                }
            }
            i = j;
        }

        let mut pairs: Vec<PairCount> = Vec::new();
        for (a, row) in pair_counts.iter().enumerate() {
            for (b, &count) in row.iter().enumerate().skip(a + 1) {
                if count > 0 {
                    pairs.push(PairCount {
                        a: ComponentClass::ALL[a],
                        b: ComponentClass::ALL[b],
                        count,
                    });
                }
            }
        }
        pairs.sort_by(|x, y| {
            y.count
                .cmp(&x.count)
                .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
        });

        CorrelatedComponents {
            pairs,
            servers_with_pairs,
            pair_server_share: servers_with_pairs as f64 / ever_failed.max(1) as f64,
            misc_involved_share: incidents_with_misc as f64 / incidents.max(1) as f64,
        }
    }

    /// Table VII-style examples: same-server `(first_class, second_class)`
    /// failures within `max_gap_secs`, up to `limit` examples.
    pub fn causal_examples(
        &self,
        first_class: ComponentClass,
        second_class: ComponentClass,
        max_gap_secs: u64,
        limit: usize,
    ) -> Vec<CausalExample> {
        let mut out = Vec::new();
        for server in self.trace.servers() {
            let fots: Vec<&Fot> = self
                .trace
                .fots_of_server(server.id)
                .filter(|f| f.is_failure())
                .collect();
            for (i, f1) in fots.iter().enumerate() {
                for f2 in fots.iter().skip(i + 1) {
                    let gap = f2.error_time.since(f1.error_time).as_secs();
                    if gap > max_gap_secs {
                        break;
                    }
                    let matches = (f1.device == first_class && f2.device == second_class)
                        || (f1.device == second_class && f2.device == first_class);
                    if matches {
                        out.push(CausalExample {
                            server: server.id,
                            first: (f1.device, f1.device_path(), f1.error_time),
                            second: (f2.device, f2.device_path(), f2.error_time),
                        });
                        if out.len() >= limit {
                            return out;
                        }
                    }
                }
            }
        }
        out
    }

    /// Table VIII: groups of servers repeatedly failing within
    /// `skew_secs` of one another at least `min_occurrences` times.
    ///
    /// Buckets failures by `(class, time / skew_secs)`; buckets bigger than
    /// `max_bucket` servers are ignored as batch events rather than
    /// synchronous pairs.
    pub fn synchronous_groups(
        &self,
        skew_secs: u64,
        min_occurrences: usize,
        max_bucket: usize,
    ) -> Vec<SynchronousGroup> {
        assert!(skew_secs > 0, "skew must be positive");
        // Two bucketing phases (offset 0 and skew/2) so co-occurrences that
        // straddle one phase's bucket boundary land together in the other.
        // (phase, class, coarse time bucket) → servers seen.
        let mut buckets: HashMap<(u8, u8, u64), Vec<(ServerId, SimTime)>> = HashMap::new();
        for fot in self.trace.failures() {
            let secs = fot.error_time.as_secs();
            for phase in 0..2u8 {
                let key = (
                    phase,
                    fot.device.index() as u8,
                    (secs + phase as u64 * skew_secs / 2) / skew_secs,
                );
                buckets
                    .entry(key)
                    .or_default()
                    .push((fot.server, fot.error_time));
            }
        }

        // Pair → co-occurrence times.
        let mut pair_times: HashMap<(ServerId, ServerId), Vec<SimTime>> = HashMap::new();
        for ((_, _, _), members) in buckets {
            if members.len() < 2 || members.len() > max_bucket {
                continue;
            }
            for (i, &(s1, t1)) in members.iter().enumerate() {
                for &(s2, _) in members.iter().skip(i + 1) {
                    if s1 == s2 {
                        continue;
                    }
                    let key = if s1 < s2 { (s1, s2) } else { (s2, s1) };
                    pair_times.entry(key).or_default().push(t1);
                }
            }
        }

        let mut groups: Vec<SynchronousGroup> = pair_times
            .into_iter()
            .map(|((s1, s2), mut times)| {
                times.sort_unstable();
                // Merge co-occurrences closer than the skew (the two phases
                // may both record the same incident).
                times.dedup_by(|b, a| b.since(*a).as_secs() < skew_secs);
                SynchronousGroup {
                    servers: vec![s1, s2],
                    occurrences: times,
                }
            })
            .filter(|g| g.occurrences.len() >= min_occurrences)
            .collect();
        groups.sort_by(|a, b| {
            b.occurrences
                .len()
                .cmp(&a.occurrences.len())
                .then(a.servers.cmp(&b.servers))
        });
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{medium_trace, synthetic_trace};

    #[test]
    fn pairs_are_rare_and_misc_dominates() {
        let trace = medium_trace();
        let c = Correlation::new(&trace).component_pairs();
        assert!(!c.pairs.is_empty());
        // Paper: 0.49% of ever-failed servers; allow a loose band.
        assert!(
            c.pair_server_share < 0.05,
            "pair server share {}",
            c.pair_server_share
        );
        // Paper: 71.5% of incidents involve a misc report.
        assert!(
            c.misc_involved_share > 0.4,
            "misc share {}",
            c.misc_involved_share
        );
        // The dominant pair involves HDD (349 HDD–misc pairs in Table VI).
        let top = &c.pairs[0];
        assert!(
            top.a == ComponentClass::Hdd || top.b == ComponentClass::Hdd,
            "top pair {top:?}"
        );
    }

    #[test]
    fn power_fan_examples_exist_at_scale() {
        let trace = medium_trace();
        let examples = Correlation::new(&trace).causal_examples(
            ComponentClass::Power,
            ComponentClass::Fan,
            300,
            5,
        );
        // Power→fan propagation is injected with small probability; at 20k
        // servers it may or may not fire, but the search must be well formed.
        for e in &examples {
            let gap = e.second.2.since(e.first.2).as_secs();
            assert!(gap <= 300);
            assert!(e.first.0 != e.second.0);
        }
    }

    #[test]
    fn synchronous_groups_are_detected() {
        let trace = synthetic_trace();
        let groups = Correlation::new(&trace).synchronous_groups(60, 3, 6);
        // The small scenario schedules at least one sync group.
        assert!(
            !groups.is_empty(),
            "expected at least one synchronous group"
        );
        let g = &groups[0];
        assert_eq!(g.servers.len(), 2);
        assert!(g.occurrences.len() >= 3);
        // Servers are co-located by construction (same rack).
        let s1 = trace.server(g.servers[0]);
        let s2 = trace.server(g.servers[1]);
        assert_eq!(s1.data_center, s2.data_center);
    }

    #[test]
    #[should_panic(expected = "skew must be positive")]
    fn synchronous_groups_validate_skew() {
        let trace = synthetic_trace();
        Correlation::new(&trace).synchronous_groups(0, 3, 6);
    }
}
