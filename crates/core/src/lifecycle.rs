//! §III-C: failure rate over a component's service life (Figure 6).
//!
//! For each class we compute failures per *component-month of exposure* by
//! age month: a server deployed mid-window contributes fractional exposure
//! to each age bucket its service life overlaps with the observation
//! window. The paper's headline lifecycle statistics (RAID infant
//! mortality, motherboard late wear-out, …) are derived views.
//!
//! # Examples
//!
//! ```
//! use dcf_core::lifecycle::Lifecycle;
//! use dcf_trace::ComponentClass;
//!
//! let trace = dcf_sim::Scenario::small().seed(1).simulate(&dcf_sim::RunOptions::default()).unwrap();
//! let hdd = Lifecycle::new(&trace).of_class(ComponentClass::Hdd);
//! // Exposure follows the fleet: positive in the months the window covers.
//! assert!(hdd.exposure.iter().sum::<f64>() > 0.0);
//! ```

use serde::{Deserialize, Serialize};

use dcf_trace::{ComponentClass, Trace, SECS_PER_MONTH};

/// Age months tracked (the Figure 6 horizon: first four years ≈ 48 months).
pub const AGE_MONTHS: usize = 48;

/// Lifecycle profile of one component class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleResult {
    /// The component class.
    pub class: ComponentClass,
    /// Failure counts per age month (0-based 30-day months).
    pub failures: Vec<u64>,
    /// Exposure per age month, in component-months.
    pub exposure: Vec<f64>,
    /// Failures per component-month; `None` where exposure is negligible.
    pub rate: Vec<Option<f64>>,
}

impl LifecycleResult {
    /// Fraction of (within-horizon) failures whose age is in
    /// `months` (e.g. `0..6` for the paper's RAID infant-mortality claim).
    pub fn failure_fraction(&self, months: std::ops::Range<usize>) -> f64 {
        let total: u64 = self.failures.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let in_range: u64 = self.failures[months.start.min(AGE_MONTHS)..months.end.min(AGE_MONTHS)]
            .iter()
            .sum();
        in_range as f64 / total as f64
    }

    /// Mean failure rate over an age range (exposure-weighted);
    /// `None` when the range has no exposure.
    pub fn mean_rate(&self, months: std::ops::Range<usize>) -> Option<f64> {
        let lo = months.start.min(AGE_MONTHS);
        let hi = months.end.min(AGE_MONTHS);
        let exp: f64 = self.exposure[lo..hi].iter().sum();
        if exp < 1.0 {
            return None;
        }
        let fails: u64 = self.failures[lo..hi].iter().sum();
        Some(fails as f64 / exp)
    }

    /// Rates normalized to their maximum (the paper normalizes Figure 6
    /// for confidentiality) — `(month, normalized rate)` for plot series.
    pub fn normalized_series(&self) -> Vec<(usize, f64)> {
        let max = self.rate.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
        if max <= 0.0 {
            return Vec::new();
        }
        self.rate
            .iter()
            .enumerate()
            .filter_map(|(m, r)| r.map(|r| (m, r / max)))
            .collect()
    }
}

/// §III-C lifecycle analysis over one trace.
#[derive(Debug, Clone)]
pub struct Lifecycle<'a> {
    trace: &'a Trace,
}

impl<'a> Lifecycle<'a> {
    /// Creates the analysis.
    pub fn new(trace: &'a Trace) -> Self {
        Self { trace }
    }

    /// Lifecycle profiles for every component class.
    ///
    /// Failure ages are tallied per class straight off the trace index's
    /// class buckets, so each class touches only its own tickets — or,
    /// columnar, in one pass over the failure population with deploy times
    /// gathered into a dense array up front.
    pub fn all(&self) -> Vec<LifecycleResult> {
        let mut failures = vec![vec![0u64; AGE_MONTHS]; 11];
        match self.trace.columns() {
            Some(cols) => {
                let deploys: Vec<u64> = self
                    .trace
                    .servers()
                    .iter()
                    .map(|s| s.deploy_time.as_secs())
                    .collect();
                let servers = cols.servers();
                let classes = cols.classes();
                for &p in self.trace.index().failure_ids() {
                    let i = p as usize;
                    // saturating_sub matches SimTime::since's clamp to zero.
                    let age = cols
                        .error_secs(i)
                        .saturating_sub(deploys[servers[i] as usize])
                        / SECS_PER_MONTH;
                    if (age as usize) < AGE_MONTHS {
                        failures[classes[i] as usize][age as usize] += 1;
                    }
                }
            }
            None => {
                for &class in ComponentClass::ALL.iter() {
                    let tally = &mut failures[class.index()];
                    for fot in self.trace.failures_of(class) {
                        let server = self.trace.server(fot.server);
                        let age =
                            fot.error_time.since(server.deploy_time).as_secs() / SECS_PER_MONTH;
                        if (age as usize) < AGE_MONTHS {
                            tally[age as usize] += 1;
                        }
                    }
                }
            }
        }

        // Exposure: one pass over servers, shared fractional-overlap vector.
        let start = self.trace.info().start.as_secs() as f64;
        let end = self.trace.end_time().as_secs() as f64;
        let month = SECS_PER_MONTH as f64;
        let mut exposure = vec![vec![0.0f64; AGE_MONTHS]; 11];
        let mut frac = [0.0f64; AGE_MONTHS];
        for server in self.trace.servers() {
            let deploy = server.deploy_time.as_secs() as f64;
            let mut any = false;
            for (m, f) in frac.iter_mut().enumerate() {
                let seg_start = (deploy + m as f64 * month).max(start);
                let seg_end = (deploy + (m + 1) as f64 * month).min(end);
                *f = ((seg_end - seg_start) / month).max(0.0);
                any |= *f > 0.0;
            }
            if !any {
                continue;
            }
            for class in ComponentClass::ALL {
                let count = server.component_count(class);
                if count == 0 {
                    continue;
                }
                let ex = &mut exposure[class.index()];
                for m in 0..AGE_MONTHS {
                    ex[m] += frac[m] * count as f64;
                }
            }
        }

        ComponentClass::ALL
            .iter()
            .map(|&class| {
                let f = failures[class.index()].clone();
                let e = exposure[class.index()].clone();
                let rate = f
                    .iter()
                    .zip(&e)
                    .map(|(&fi, &ei)| (ei >= 1.0).then(|| fi as f64 / ei))
                    .collect();
                LifecycleResult {
                    class,
                    failures: f,
                    exposure: e,
                    rate,
                }
            })
            .collect()
    }

    /// Lifecycle profile of one class.
    pub fn of_class(&self, class: ComponentClass) -> LifecycleResult {
        self.all()
            .into_iter()
            .find(|r| r.class == class)
            .expect("all() covers every class")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::medium_trace;

    #[test]
    fn exposure_accounting_is_consistent() {
        let trace = medium_trace();
        let all = Lifecycle::new(&trace).all();
        assert_eq!(all.len(), 11);
        for r in &all {
            assert_eq!(r.failures.len(), AGE_MONTHS);
            // No rate where exposure is negligible.
            for (e, rate) in r.exposure.iter().zip(&r.rate) {
                if *e < 1.0 {
                    assert!(rate.is_none());
                }
            }
        }
        // HDD exposure dwarfs CPU exposure (12 drives vs 2 sockets).
        let hdd: f64 = all[ComponentClass::Hdd.index()].exposure.iter().sum();
        let cpu: f64 = all[ComponentClass::Cpu.index()].exposure.iter().sum();
        assert!(hdd > 3.0 * cpu);
    }

    #[test]
    fn raid_cards_show_infant_mortality() {
        let trace = medium_trace();
        let r = Lifecycle::new(&trace).of_class(ComponentClass::RaidCard);
        let first6 = r.failure_fraction(0..6);
        // Paper: 47.4% of RAID failures within the first six months.
        assert!(first6 > 0.30, "first-6-month RAID share {first6}");
        let early = r.mean_rate(0..6).unwrap();
        let later = r.mean_rate(12..36).unwrap();
        assert!(early > 3.0 * later, "early {early} vs later {later}");
    }

    #[test]
    fn hdd_infant_rate_is_about_20_percent_above_months_4_to_9() {
        let trace = medium_trace();
        let r = Lifecycle::new(&trace).of_class(ComponentClass::Hdd);
        let infant = r.mean_rate(0..3).unwrap();
        let trough = r.mean_rate(3..9).unwrap();
        let ratio = infant / trough;
        assert!((1.05..1.45).contains(&ratio), "infant/trough {ratio}");
        // And wear-out later: year 3 rate beats the trough.
        let old = r.mean_rate(30..42).unwrap();
        assert!(old > trough);
    }

    #[test]
    fn motherboards_fail_late() {
        let trace = medium_trace();
        let r = Lifecycle::new(&trace).of_class(ComponentClass::Motherboard);
        let late = r.failure_fraction(36..AGE_MONTHS);
        // Paper: 72.1% of motherboard failures occur after year 3.
        assert!(late > 0.5, "after-36-months motherboard share {late}");
    }

    #[test]
    fn flash_cards_are_quiet_in_year_one() {
        let trace = medium_trace();
        let r = Lifecycle::new(&trace).of_class(ComponentClass::FlashCard);
        let first12 = r.failure_fraction(0..12);
        // Paper: only 1.4% of flash failures in the first 12 months.
        assert!(first12 < 0.10, "first-year flash share {first12}");
    }

    #[test]
    fn misc_rate_spikes_in_month_zero() {
        let trace = medium_trace();
        let r = Lifecycle::new(&trace).of_class(ComponentClass::Miscellaneous);
        let m0 = r.rate[0].unwrap();
        let steady = r.mean_rate(3..12).unwrap();
        assert!(m0 > 4.0 * steady, "month-0 {m0} vs steady {steady}");
    }

    #[test]
    fn normalized_series_peaks_at_one() {
        let trace = medium_trace();
        let r = Lifecycle::new(&trace).of_class(ComponentClass::Hdd);
        let series = r.normalized_series();
        assert!(!series.is_empty());
        let max = series.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        assert!(series.iter().all(|(_, v)| (0.0..=1.0).contains(v)));
    }
}
