//! §III temporal analyses: day-of-week (Hypothesis 1, Figure 3),
//! hour-of-day (Hypothesis 2, Figure 4), and time-between-failures
//! distribution fitting (Hypotheses 3–4, Figure 5).
//!
//! # Examples
//!
//! ```
//! use dcf_core::temporal::Temporal;
//!
//! let trace = dcf_sim::Scenario::small().seed(1).simulate(&dcf_sim::RunOptions::default()).unwrap();
//! let temporal = Temporal::new(&trace);
//! let tbf = temporal.tbf_all().unwrap();
//! assert_eq!(tbf.fits.len(), 4); // exp / Weibull / gamma / lognormal
//! assert!(tbf.mtbf_minutes > 0.0);
//! ```

use serde::{Deserialize, Serialize};

use dcf_stats::chi_square::{against_expected, ChiSquareOutcome};
use dcf_stats::{fit, Ecdf, Fitted, StatsError};
use dcf_trace::{
    ComponentClass, DataCenterId, Fot, FotColumns, FotIter, Trace, Weekday, SECS_PER_HOUR,
};

/// Result of the day-of-week analysis for one failure population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayOfWeekResult {
    /// Failure counts Monday..Sunday.
    pub counts: [usize; 7],
    /// Fractions of failures Monday..Sunday (Figure 3's bars).
    pub fractions: [f64; 7],
    /// Hypothesis 1 test: counts uniform across weekdays (population-
    /// corrected for how many of each weekday the window contains).
    pub uniformity: ChiSquareOutcome,
    /// The same test excluding weekends (the paper also rejects this, at
    /// 0.02 significance).
    pub weekdays_only: ChiSquareOutcome,
}

/// Result of the hour-of-day analysis for one failure population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourOfDayResult {
    /// Failure counts for hours 0..24.
    pub counts: [usize; 24],
    /// Fractions per hour (Figure 4's bars).
    pub fractions: [f64; 24],
    /// Hypothesis 2 test: counts uniform across hours.
    pub uniformity: ChiSquareOutcome,
}

/// One distribution fit plus its goodness-of-fit test (a row of Figure 5's
/// legend).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TbfFit {
    /// The MLE-fitted distribution.
    pub fitted: Fitted,
    /// Pearson chi-squared goodness-of-fit outcome.
    pub test: ChiSquareOutcome,
}

/// Result of the TBF analysis for one failure population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TbfResult {
    /// Number of gaps analyzed.
    pub n: usize,
    /// Mean time between failures, minutes.
    pub mtbf_minutes: f64,
    /// Median TBF, minutes.
    pub median_minutes: f64,
    /// The four family fits (exp/Weibull/gamma/lognormal) with their tests.
    pub fits: Vec<TbfFit>,
    /// Whether every family is rejected at the 0.05 level (the paper's
    /// Hypothesis 3/4 conclusion).
    pub all_rejected_at_005: bool,
}

/// §III temporal analysis over one trace.
#[derive(Debug, Clone)]
pub struct Temporal<'a> {
    trace: &'a Trace,
}

impl<'a> Temporal<'a> {
    /// Creates the analysis.
    pub fn new(trace: &'a Trace) -> Self {
        Self { trace }
    }

    /// How many of each weekday the observation window contains (expected-
    /// count weights for Hypothesis 1).
    fn weekday_populations(&self) -> [f64; 7] {
        let start_day = self.trace.info().start.day_index();
        let days = self.trace.info().days;
        let mut pop = [0.0f64; 7];
        for d in 0..days {
            let wd = dcf_trace::SimTime::from_days(start_day + d).weekday();
            pop[wd.index()] += 1.0;
        }
        pop
    }

    /// The failure population for `class` (`None` = all classes), served
    /// from the matching index bucket.
    fn population(&self, class: Option<ComponentClass>) -> FotIter<'a> {
        match class {
            None => self.trace.failures(),
            Some(class) => self.trace.failures_of(class),
        }
    }

    /// Columnar view of the same population: the column store plus the
    /// population's index positions (which double as column row indices).
    /// `None` when the columnar backend is disabled.
    fn columnar(&self, class: Option<ComponentClass>) -> Option<(&'a FotColumns, &'a [u32])> {
        let cols = self.trace.columns()?;
        let index = self.trace.index();
        let ids = match class {
            None => index.failure_ids(),
            Some(class) => index.class_failure_ids(class),
        };
        Some((cols, ids))
    }

    /// Figure 3 / Hypothesis 1 for one class (`None` = all classes).
    ///
    /// # Errors
    ///
    /// Fails when the population has too few failures to test.
    pub fn day_of_week(
        &self,
        class: Option<ComponentClass>,
    ) -> Result<DayOfWeekResult, StatsError> {
        let mut counts = [0usize; 7];
        match self.columnar(class) {
            // Columnar kernel: the weekday of row `i` is a pure function of
            // its error-day column entry, so the tally streams one dense
            // `u32` column instead of whole tickets.
            Some((cols, ids)) => {
                let origin = dcf_trace::ORIGIN_WEEKDAY.index() as u64;
                let days = cols.error_days();
                for &p in ids {
                    counts[((origin + days[p as usize] as u64) % 7) as usize] += 1;
                }
            }
            None => {
                for fot in self.population(class) {
                    counts[fot.error_time.weekday().index()] += 1;
                }
            }
        }
        self.day_of_week_from_counts(counts)
    }

    /// Hypothesis-1 statistics over finished weekday tallies (shared by
    /// [`Temporal::day_of_week`] and the fused section kernel).
    fn day_of_week_from_counts(&self, counts: [usize; 7]) -> Result<DayOfWeekResult, StatsError> {
        let total: usize = counts.iter().sum();
        let denom = total.max(1) as f64;
        let fractions = counts.map(|c| c as f64 / denom);

        let pop = self.weekday_populations();
        let pop_total: f64 = pop.iter().sum();
        let observed: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let expected: Vec<f64> = pop.iter().map(|p| total as f64 * p / pop_total).collect();
        let uniformity = against_expected(&observed, &expected)?;

        // Weekday-only variant (drop Saturday and Sunday).
        let keep: Vec<usize> = Weekday::ALL
            .iter()
            .filter(|w| !w.is_weekend())
            .map(|w| w.index())
            .collect();
        let obs_wd: Vec<f64> = keep.iter().map(|&i| observed[i]).collect();
        let wd_total: f64 = obs_wd.iter().sum();
        let pop_wd_total: f64 = keep.iter().map(|&i| pop[i]).sum();
        let exp_wd: Vec<f64> = keep
            .iter()
            .map(|&i| wd_total * pop[i] / pop_wd_total)
            .collect();
        let weekdays_only = against_expected(&obs_wd, &exp_wd)?;

        Ok(DayOfWeekResult {
            counts,
            fractions,
            uniformity,
            weekdays_only,
        })
    }

    /// Figure 4 / Hypothesis 2 for one class (`None` = all classes).
    ///
    /// # Errors
    ///
    /// Fails when the population has too few failures to test.
    pub fn hour_of_day(
        &self,
        class: Option<ComponentClass>,
    ) -> Result<HourOfDayResult, StatsError> {
        let mut counts = [0usize; 24];
        match self.columnar(class) {
            // Columnar kernel: hour-of-day is second-of-day / 3600, one
            // dense column.
            Some((cols, ids)) => {
                let sods = cols.error_sods();
                for &p in ids {
                    counts[(sods[p as usize] as u64 / SECS_PER_HOUR) as usize] += 1;
                }
            }
            None => {
                for fot in self.population(class) {
                    counts[fot.error_time.hour_of_day() as usize] += 1;
                }
            }
        }
        Self::hour_of_day_from_counts(counts)
    }

    /// Hypothesis-2 statistics over finished hourly tallies (shared by
    /// [`Temporal::hour_of_day`] and the fused section kernel).
    fn hour_of_day_from_counts(counts: [usize; 24]) -> Result<HourOfDayResult, StatsError> {
        let total: usize = counts.iter().sum();
        let denom = total.max(1) as f64;
        let fractions = counts.map(|c| c as f64 / denom);
        let observed: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let uniformity = dcf_stats::chi_square::uniformity(&observed)?;
        Ok(HourOfDayResult {
            counts,
            fractions,
            uniformity,
        })
    }

    /// The three §III analyses of one population from a single pass over
    /// the error-time columns: day-of-week tallies, hour-of-day tallies,
    /// and the TBF gap series all come out of one walk of the failure
    /// ids instead of three (the `study.temporal` section used to
    /// re-stream the population per analysis).
    ///
    /// Each returned result is identical to its standalone method —
    /// the tallies are the same sums and the gaps reconstruct the same
    /// timestamps, so every downstream test sees the same bytes
    /// (`tests/columnar_identity.rs` holds the row-vs-columnar half of
    /// that contract).
    #[allow(clippy::type_complexity)]
    pub fn fused(
        &self,
        class: Option<ComponentClass>,
    ) -> (
        Result<DayOfWeekResult, StatsError>,
        Result<HourOfDayResult, StatsError>,
        Result<TbfResult, StatsError>,
    ) {
        let mut dow = [0usize; 7];
        let mut hod = [0usize; 24];
        let gaps = match self.columnar(class) {
            Some((cols, ids)) => {
                let origin = dcf_trace::ORIGIN_WEEKDAY.index() as u64;
                let days = cols.error_days();
                let sods = cols.error_sods();
                let mut gaps = Vec::with_capacity(ids.len().saturating_sub(1));
                let mut last: Option<u64> = None;
                for &p in ids {
                    let i = p as usize;
                    let day = days[i] as u64;
                    let sod = sods[i] as u64;
                    dow[((origin + day) % 7) as usize] += 1;
                    hod[(sod / SECS_PER_HOUR) as usize] += 1;
                    // Same reconstruction as `FotColumns::error_secs`.
                    let t = day * dcf_trace::SECS_PER_DAY + sod;
                    if let Some(prev) = last {
                        gaps.push(((t - prev) as f64).max(0.5) / 60.0);
                    }
                    last = Some(t);
                }
                gaps
            }
            None => {
                let mut gaps = Vec::new();
                let mut last: Option<u64> = None;
                for fot in self.population(class) {
                    dow[fot.error_time.weekday().index()] += 1;
                    hod[fot.error_time.hour_of_day() as usize] += 1;
                    let t = fot.error_time.as_secs();
                    if let Some(prev) = last {
                        gaps.push(((t - prev) as f64).max(0.5) / 60.0);
                    }
                    last = Some(t);
                }
                gaps
            }
        };
        (
            self.day_of_week_from_counts(dow),
            Self::hour_of_day_from_counts(hod),
            self.tbf_from_gaps(gaps),
        )
    }

    /// Gaps (minutes) between consecutive failures of a time-sorted
    /// population (any index bucket qualifies). Zero gaps (same-second
    /// detections) are floored at half a second so positive-support
    /// families remain fittable.
    fn gaps_minutes<'b>(fots: impl Iterator<Item = &'b Fot>) -> Vec<f64> {
        let mut last: Option<u64> = None;
        let mut gaps = Vec::new();
        for fot in fots {
            let t = fot.error_time.as_secs();
            if let Some(prev) = last {
                let secs = (t - prev) as f64;
                gaps.push(secs.max(0.5) / 60.0);
            }
            last = Some(t);
        }
        gaps
    }

    /// Columnar twin of [`Temporal::gaps_minutes`]: reconstructs the same
    /// timestamps (day · 86400 + second-of-day) from the two error-time
    /// columns, so the produced gaps are bit-identical.
    fn gaps_minutes_cols(cols: &FotColumns, ids: &[u32]) -> Vec<f64> {
        let mut last: Option<u64> = None;
        let mut gaps = Vec::with_capacity(ids.len().saturating_sub(1));
        for &p in ids {
            let t = cols.error_secs(p as usize);
            if let Some(prev) = last {
                let secs = (t - prev) as f64;
                gaps.push(secs.max(0.5) / 60.0);
            }
            last = Some(t);
        }
        gaps
    }

    /// Failure gaps for one class population, columnar when available.
    fn gaps_of(&self, class: Option<ComponentClass>) -> Vec<f64> {
        match self.columnar(class) {
            Some((cols, ids)) => Self::gaps_minutes_cols(cols, ids),
            None => Self::gaps_minutes(self.population(class)),
        }
    }

    /// Failure gaps inside one data center, columnar when available.
    fn gaps_of_dc(&self, dc: DataCenterId) -> Vec<f64> {
        match self.trace.columns() {
            Some(cols) => Self::gaps_minutes_cols(cols, self.trace.index().dc_failure_ids(dc)),
            None => Self::gaps_minutes(self.trace.failures_in_dc(dc)),
        }
    }

    /// Figure 5 / Hypothesis 3: TBF over all component failures.
    ///
    /// # Errors
    ///
    /// Fails when there are fewer than ~100 gaps to fit.
    pub fn tbf_all(&self) -> Result<TbfResult, StatsError> {
        self.tbf_from_gaps(self.gaps_of(None))
    }

    /// Hypothesis 4: TBF of one component class.
    ///
    /// # Errors
    ///
    /// Fails when there are fewer than ~100 gaps to fit.
    pub fn tbf_of_class(&self, class: ComponentClass) -> Result<TbfResult, StatsError> {
        self.tbf_from_gaps(self.gaps_of(Some(class)))
    }

    /// TBF restricted to one data center (for the paper's per-DC MTBF
    /// range of 32–390 minutes).
    ///
    /// # Errors
    ///
    /// Fails when there are fewer than ~100 gaps to fit.
    pub fn tbf_of_dc(&self, dc: DataCenterId) -> Result<TbfResult, StatsError> {
        self.tbf_from_gaps(self.gaps_of_dc(dc))
    }

    /// MTBF (minutes) per data center, for DCs with at least `min_gaps`
    /// failures gaps.
    ///
    /// Each DC walks only its own index bucket, so the whole sweep is
    /// O(failures) instead of the O(DCs × tickets) rescans it used to cost.
    pub fn mtbf_by_dc(&self, min_gaps: usize) -> Vec<(DataCenterId, f64)> {
        self.trace
            .data_centers()
            .iter()
            .filter_map(|dc| {
                let gaps = self.gaps_of_dc(dc.id);
                if gaps.len() < min_gaps {
                    return None;
                }
                let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
                Some((dc.id, mean))
            })
            .collect()
    }

    /// The TBF empirical CDF (minutes) over all failures, downsampled for
    /// plotting (Figure 5's data series).
    ///
    /// # Errors
    ///
    /// Fails on an empty population.
    pub fn tbf_ecdf(&self, max_points: usize) -> Result<Vec<(f64, f64)>, StatsError> {
        let e = Ecdf::new(self.gaps_of(None))?;
        Ok(e.sampled_points(max_points))
    }

    /// §III-A's workload-correlation claim, quantified: Spearman ρ between
    /// a class's *typical* hour-of-day detection profile and a reference
    /// 24-hour utilization curve. The paper asserts this correlation is
    /// positive for HDD, memory and miscellaneous failures.
    ///
    /// Batch days (daily totals above the 95th percentile) are excluded
    /// first — their failures land in arbitrary hours and would otherwise
    /// scramble the diurnal signal — then counts are summed per hour.
    ///
    /// # Errors
    ///
    /// Fails when the class has too few failures or degenerate counts.
    pub fn workload_correlation(
        &self,
        class: Option<ComponentClass>,
        utilization_by_hour: &[f64; 24],
    ) -> Result<f64, StatsError> {
        let start_day = self.trace.info().start.day_index();
        let days = self.trace.info().days as usize;
        let mut per_day_hour = vec![[0u32; 24]; days];
        match self.columnar(class) {
            Some((cols, ids)) => {
                let day_col = cols.error_days();
                let sod_col = cols.error_sods();
                for &p in ids {
                    let i = p as usize;
                    let d = (day_col[i] as u64 - start_day) as usize;
                    if d < days {
                        per_day_hour[d][(sod_col[i] as u64 / SECS_PER_HOUR) as usize] += 1;
                    }
                }
            }
            None => {
                for fot in self.population(class) {
                    let d = (fot.error_time.day_index() - start_day) as usize;
                    if d < days {
                        per_day_hour[d][fot.error_time.hour_of_day() as usize] += 1;
                    }
                }
            }
        }
        // Drop batch days before aggregating.
        let mut daily_totals: Vec<u32> = per_day_hour
            .iter()
            .map(|row| row.iter().sum::<u32>())
            .collect();
        let mut sorted = daily_totals.clone();
        sorted.sort_unstable();
        let cutoff = sorted[(sorted.len() * 95 / 100).min(sorted.len() - 1)];
        let mut typical = [0.0f64; 24];
        for (row, &total) in per_day_hour.iter().zip(&daily_totals) {
            if total > cutoff {
                continue;
            }
            for (h, &c) in row.iter().enumerate() {
                typical[h] += c as f64;
            }
        }
        daily_totals.clear();
        dcf_stats::rank::spearman(&typical, utilization_by_hour)
    }

    fn tbf_from_gaps(&self, gaps: Vec<f64>) -> Result<TbfResult, StatsError> {
        let n = gaps.len();
        if n < 100 {
            return Err(StatsError::NotEnoughBins {
                found: n,
                required: 100,
            });
        }
        // Fit in sample order (the MLE sums are order-sensitive to the last
        // bit), then hand the gaps to the ECDF, whose sorted view makes each
        // goodness-of-fit test O(bins log n) instead of O(n log bins). The
        // bin counts are permutation-invariant, so the outcomes match the
        // unsorted test exactly.
        let fitted_families = fit::fit_tbf_families(&gaps);
        let ecdf = Ecdf::new(gaps)?;
        let fits: Vec<TbfFit> = fitted_families
            .into_iter()
            .filter_map(|fitted| {
                dcf_stats::chi_square::goodness_of_fit_sorted(
                    ecdf.values(),
                    &fitted,
                    40,
                    fitted.parameter_count(),
                )
                .ok()
                .map(|test| TbfFit { fitted, test })
            })
            .collect();
        let all_rejected_at_005 = !fits.is_empty() && fits.iter().all(|f| f.test.rejects_at(0.05));
        Ok(TbfResult {
            n,
            mtbf_minutes: ecdf.mean(),
            median_minutes: ecdf.median(),
            fits,
            all_rejected_at_005,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::synthetic_trace;

    #[test]
    fn day_of_week_rejects_uniformity() {
        // Rejection needs the paper's statistical power: medium scale.
        let trace = crate::test_support::medium_trace();
        let r = Temporal::new(&trace).day_of_week(None).unwrap();
        // Hypothesis 1: rejected at 0.01 for the all-components population.
        assert!(r.uniformity.rejects_at(0.01), "{}", r.uniformity);
        let total: f64 = r.fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // The small fixture still computes sane fractions.
        let small = synthetic_trace();
        let rs = Temporal::new(&small).day_of_week(None).unwrap();
        assert!((rs.fractions.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weekends_see_fewer_detections_at_scale() {
        // Direction needs volume: a lone weekend batch event can dominate
        // the small trace, so test the medium one.
        let trace = crate::test_support::medium_trace();
        let t = Temporal::new(&trace);
        // Manual (misc) reports follow office hours — strongly anti-weekend
        // and immune to where batch events happen to land.
        let misc = t.day_of_week(Some(ComponentClass::Miscellaneous)).unwrap();
        let misc_weekend = misc.fractions[5] + misc.fractions[6];
        assert!(misc_weekend < 0.22, "misc weekend share {misc_weekend}");
        // Overall, weekends are at most roughly uniform — batch events land
        // on arbitrary days and add noise on top of the weekday skew.
        let all = t.day_of_week(None).unwrap();
        let weekend = all.fractions[5] + all.fractions[6];
        assert!(weekend < 0.33, "weekend share {weekend}");
    }

    #[test]
    fn hour_of_day_rejects_uniformity_for_hdd() {
        let trace = crate::test_support::medium_trace();
        let r = Temporal::new(&trace)
            .hour_of_day(Some(ComponentClass::Hdd))
            .unwrap();
        assert!(r.uniformity.rejects_at(0.01), "{}", r.uniformity);
    }

    #[test]
    fn hdd_detections_peak_in_the_afternoon_at_scale() {
        let trace = crate::test_support::medium_trace();
        let r = Temporal::new(&trace)
            .hour_of_day(Some(ComponentClass::Hdd))
            .unwrap();
        let afternoon: f64 = (13..18).map(|h| r.fractions[h]).sum();
        let night: f64 = (1..6).map(|h| r.fractions[h]).sum();
        assert!(afternoon > night, "afternoon {afternoon} night {night}");
    }

    #[test]
    fn tbf_rejects_all_four_families() {
        // Needs the paper's sample size; the small fixture lacks power.
        let trace = crate::test_support::medium_trace();
        let r = Temporal::new(&trace).tbf_all().unwrap();
        assert_eq!(r.fits.len(), 4);
        assert!(
            r.all_rejected_at_005,
            "fits: {:?}",
            r.fits.iter().map(|f| f.test.p_value).collect::<Vec<_>>()
        );
        assert!(r.mtbf_minutes > 0.0);
        assert!(r.median_minutes <= r.mtbf_minutes); // heavy right tail
    }

    #[test]
    fn tbf_per_class_works_for_hdd() {
        let trace = crate::test_support::medium_trace();
        let r = Temporal::new(&trace)
            .tbf_of_class(ComponentClass::Hdd)
            .unwrap();
        assert!(r.n > 100);
        assert!(r.all_rejected_at_005);
    }

    #[test]
    fn detections_track_workload_positively() {
        // §III-A: "the number of failures of some components are positively
        // correlated with the workload."
        let trace = crate::test_support::medium_trace();
        let profile =
            dcf_fleet::UtilizationProfile::for_workload(dcf_trace::WorkloadKind::BatchProcessing);
        let mut util = [0.0f64; 24];
        for (h, u) in util.iter_mut().enumerate() {
            *u = profile.utilization(
                dcf_trace::SimTime::from_hours(h as u64), // day 0 weekday
            );
        }
        let t = Temporal::new(&trace);
        let rho_hdd = t
            .workload_correlation(Some(ComponentClass::Hdd), &util)
            .unwrap();
        // Positive and substantial (detection delay smears the phase a
        // little, so rho sits below the raw utilization swing).
        assert!(rho_hdd > 0.25, "HDD workload correlation {rho_hdd}");
        let rho_misc = t
            .workload_correlation(Some(ComponentClass::Miscellaneous), &util)
            .unwrap();
        assert!(rho_misc > 0.25, "misc workload correlation {rho_misc}");
    }

    #[test]
    fn mtbf_varies_across_dcs() {
        let trace = synthetic_trace();
        let per_dc = Temporal::new(&trace).mtbf_by_dc(50);
        assert!(per_dc.len() >= 2);
        let min = per_dc.iter().map(|(_, m)| *m).fold(f64::INFINITY, f64::min);
        let max = per_dc.iter().map(|(_, m)| *m).fold(0.0, f64::max);
        assert!(max > 1.5 * min, "MTBF range {min}..{max}");
    }

    #[test]
    fn ecdf_points_are_monotone() {
        let trace = synthetic_trace();
        let pts = Temporal::new(&trace).tbf_ecdf(200).unwrap();
        assert!(pts.len() <= 200);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn tiny_population_errors_cleanly() {
        let trace = synthetic_trace();
        // CPU failures are extremely rare in a 2k-server fleet.
        let r = Temporal::new(&trace).tbf_of_class(ComponentClass::Cpu);
        assert!(r.is_err());
    }
}
