//! Live replay with online detection (§VII tools, streamed).
//!
//! The paper's §VII tools — the warning→failure predictor and the FOT
//! context miner — are evaluated offline over a finished trace. This
//! module replays a trace as a **virtual-time ticket feed** and runs
//! *causal* versions of those analyses over the stream, the way an FMS
//! operator console would consume them live:
//!
//! * [`ReplayConfig::sigma_window_days`] — a sliding-window μ ± kσ rate
//!   detector per `(class, data center)`, built on
//!   [`dcf_stats::anomaly::sigma_outliers`] (the §IV anomaly test).
//! * A batch-burst detector mirroring [`crate::mining::FotMiner`]'s
//!   `BatchDay` flag with a causal, trend-extrapolated estimate of the
//!   full-window daily median (fleet intake ramps over the window, so a
//!   plain running median lags the miner's threshold and over-fires).
//! * An incremental form of [`crate::prediction::Prediction::evaluate`]
//!   that resolves warnings as their confirming fatals arrive.
//!
//! Every event — ticket or detection — is rendered as one canonical JSON
//! line with a virtual-time offset, and the whole stream is digested with
//! FNV-1a, so a replay is byte-identical at any playback speed. The final
//! [`ReplaySummary`] scores each online detector against the offline
//! study (precision/recall/F1 over the flagged `(class, dc, day)` /
//! `(class, day)` / predicted-fatal sets).

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use dcf_trace::{ComponentClass, Fot, Severity, SimDuration, Trace, SECS_PER_DAY};

use crate::prediction::{Prediction, PredictorEval};

/// Number of component classes (Table II).
const CLASSES: usize = 11;

/// Tuning knobs for the online detectors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Trailing window (days, including the day under test) for the
    /// sliding σ-outlier rate detector.
    pub sigma_window_days: usize,
    /// The paper's `k` in μ ± kσ (§IV uses 2).
    pub sigma_k: f64,
    /// Days of history before the burst detector starts firing — a trend
    /// fit over very few days is meaningless.
    pub burst_warmup_days: usize,
    /// Horizon for the incremental warning→fatal predictor.
    pub predictor_horizon_days: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            sigma_window_days: 30,
            sigma_k: 2.0,
            burst_warmup_days: 14,
            predictor_horizon_days: 30,
        }
    }
}

/// One event of the replay stream: a ticket or an online detection, with
/// its virtual-time offset from the window start and its canonical JSON
/// line (newline not included).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayEvent {
    /// Seconds of virtual time since the observation-window start.
    pub offset_secs: u64,
    /// Canonical single-line JSON rendering (stable field order, fixed
    /// float precision) — the unit the stream digest is computed over.
    pub line: String,
    /// `true` for detector events, `false` for replayed tickets.
    pub is_detection: bool,
}

/// Precision/recall of one online detector against the offline study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorScore {
    /// Events the online detector emitted.
    pub detections: usize,
    /// Items the offline analysis flags (the ground truth).
    pub truth: usize,
    /// Online detections also flagged offline.
    pub true_positives: usize,
    /// `true_positives / detections`.
    pub precision: f64,
    /// `true_positives / truth`.
    pub recall: f64,
}

impl DetectorScore {
    fn from_sets<T: Ord>(online: &[T], truth: &[T]) -> Self {
        debug_assert!(online.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        debug_assert!(truth.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        let tp = online
            .iter()
            .filter(|item| truth.binary_search(item).is_ok())
            .count();
        Self {
            detections: online.len(),
            truth: truth.len(),
            true_positives: tp,
            precision: tp as f64 / online.len().max(1) as f64,
            recall: tp as f64 / truth.len().max(1) as f64,
        }
    }

    /// Harmonic mean of precision and recall (0, never NaN, when empty).
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision, self.recall);
        let sum = p + r;
        if sum.is_nan() || sum <= 0.0 {
            0.0
        } else {
            2.0 * p * r / sum
        }
    }
}

/// End-of-stream scorecard: per-detector precision/recall against the
/// offline study, plus the stream digest for byte-identity checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplaySummary {
    /// Tickets replayed (all categories — the feed carries false alarms
    /// too, exactly as the FMS would).
    pub tickets: usize,
    /// Detection events emitted across all three detectors.
    pub detections: usize,
    /// FNV-1a digest over every event line (tickets + detections), in
    /// stream order, before this summary.
    pub event_digest: u64,
    /// Sliding-window σ-outlier detector vs offline
    /// [`dcf_stats::anomaly::sigma_outliers`] over each full
    /// `(class, dc)` daily series.
    pub sigma: DetectorScore,
    /// Causal batch-burst detector vs [`crate::mining::FotMiner`]'s
    /// full-window `BatchDay` criterion.
    pub burst: DetectorScore,
    /// Incremental predictor's predicted-fatal events vs the offline
    /// §VII-A evaluation (exact replication: expect precision = recall = 1).
    pub predictor: DetectorScore,
    /// The predictor's own quality, computed online; byte-identical to
    /// [`Prediction::evaluate`] at the same horizon.
    pub predictor_eval: PredictorEval,
}

/// A finished replay: the full event stream plus its scorecard.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Tickets and detections in virtual-time order.
    pub events: Vec<ReplayEvent>,
    /// The end-of-stream scorecard.
    pub summary: ReplaySummary,
    /// The scorecard rendered as the stream's final JSON line (it embeds
    /// the event digest, so it is *not* part of the digest itself).
    pub summary_line: String,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Escapes `s` for embedding in a JSON string literal. Class and failure
/// type names are plain ASCII, so this only guards the general case.
fn json_escape(s: &str) -> String {
    if s.chars().all(|c| c != '"' && c != '\\' && c >= ' ') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if c < ' ' => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Per-component state of the incremental predictor.
#[derive(Default)]
struct ComponentStream {
    /// All failure events of the component, in arrival order.
    events: Vec<(dcf_trace::SimTime, Severity)>,
    /// Non-censored warnings awaiting their first subsequent fatal.
    pending: Vec<dcf_trace::SimTime>,
}

/// Replays `trace` as a virtual-time ticket feed with the three online
/// detectors attached, and scores them against the offline study.
///
/// The result is a pure function of `(trace, config)` — playback speed is
/// a delivery concern layered on top by the CLI and the HTTP streamer.
pub fn replay(trace: &Trace, config: &ReplayConfig) -> ReplayOutcome {
    let info = trace.info();
    let start = info.start;
    let start_day = start.day_index();
    let days = info.days as usize;
    let end = trace.end_time();
    let horizon = SimDuration::from_days(config.predictor_horizon_days);

    let mut events: Vec<ReplayEvent> = Vec::with_capacity(trace.fots().len() + 1024);
    let mut digest = FNV_OFFSET;
    let push = |events: &mut Vec<ReplayEvent>,
                digest: &mut u64,
                offset_secs: u64,
                line: String,
                is_detection: bool| {
        fnv1a(digest, line.as_bytes());
        fnv1a(digest, b"\n");
        events.push(ReplayEvent {
            offset_secs,
            line,
            is_detection,
        });
    };

    // Daily failure counts per class (full window, zeros included) — the
    // burst detector's causal view grows day by day; the same array is the
    // offline truth input once the stream ends.
    let mut daily = vec![vec![0usize; days]; CLASSES];
    // Daily failure counts per (class, dc); BTreeMap so day-close events
    // come out in a deterministic order.
    let mut dc_daily: BTreeMap<(usize, u16), Vec<usize>> = BTreeMap::new();
    // Online detection sets for scoring.
    let mut online_burst: Vec<(usize, usize)> = Vec::new(); // (class, day)
    let mut online_sigma: Vec<(usize, u16, usize)> = Vec::new(); // (class, dc, day)
    let mut online_predicted: Vec<((u32, u8, u8), usize)> = Vec::new(); // (component, seq)

    // Incremental predictor state.
    let mut streams: HashMap<(u32, u8, u8), ComponentStream> = HashMap::new();
    let (mut warnings, mut confirmed, mut fatals, mut predicted) = (0usize, 0usize, 0usize, 0usize);
    let mut leads: Vec<f64> = Vec::new();
    let mut detections = 0usize;

    // Closes day `d`: runs the day-granular detectors over everything seen
    // up to and including `d`, emitting events at the day boundary.
    macro_rules! close_day {
        ($d:expr) => {{
            let d: usize = $d;
            let off = ((start_day + d as u64 + 1) * SECS_PER_DAY).saturating_sub(start.as_secs());
            // Batch-burst: causal estimate of the *full-window* daily
            // median. Fleet intake ramps over the window, so the plain
            // running median lags the miner's full-window median and
            // over-fires early. Instead, fit a spike-robust trend (slope
            // between the medians of the two observed halves — burst days
            // barely move a median, unlike a least-squares fit), extend
            // the observed series to the announced window length along
            // that trend, and take the median of observed + extrapolated.
            // Once past the window midpoint this converges on the true
            // full-window median for any ~monotone rate curve.
            if d + 1 >= config.burst_warmup_days {
                for (class_idx, counts) in daily.iter().enumerate() {
                    let count = counts[d];
                    if count == 0 {
                        continue;
                    }
                    let threshold = {
                        let half = d.div_ceil(2);
                        let median_of = |mut v: Vec<usize>| -> usize {
                            v.sort_unstable();
                            v[v.len() / 2]
                        };
                        let m1 = median_of(counts[..half.max(1)].to_vec()) as f64;
                        let m2 = median_of(counts[half..=d].to_vec()) as f64;
                        // Each half's median sits at the half's center day.
                        let c1 = (half.max(1) as f64 - 1.0) / 2.0;
                        let c2 = half as f64 + (d - half) as f64 / 2.0;
                        let slope = if c2 > c1 { (m2 - m1) / (c2 - c1) } else { 0.0 };
                        let mut padded: Vec<usize> = counts[..=d].to_vec();
                        for x in (d + 1)..days {
                            padded.push((m2 + slope * (x as f64 - c2)).max(0.0).round() as usize);
                        }
                        (median_of(padded) * 5).max(10)
                    };
                    if count > threshold {
                        let class = ComponentClass::ALL[class_idx];
                        online_burst.push((class_idx, d));
                        detections += 1;
                        push(
                            &mut events,
                            &mut digest,
                            off,
                            format!(
                                "{{\"t\":\"burst\",\"off\":{off},\"day\":{day},\"class\":\"{class}\",\"count\":{count},\"threshold\":{threshold}}}",
                                day = start_day + d as u64,
                                class = json_escape(class.name()),
                            ),
                            true,
                        );
                    }
                }
            }
            // Sliding-window σ-outlier per (class, dc).
            let w = config.sigma_window_days;
            if d + 1 >= w && w >= 3 {
                for (&(class_idx, dc), series) in dc_daily.iter() {
                    let window: Vec<f64> =
                        series[d + 1 - w..=d].iter().map(|&c| c as f64).collect();
                    let Ok(hits) = dcf_stats::anomaly::sigma_outliers(&window, config.sigma_k)
                    else {
                        continue; // degenerate/flat window: nothing to flag
                    };
                    if let Some(hit) = hits.iter().find(|a| a.index == w - 1) {
                        let class = ComponentClass::ALL[class_idx];
                        online_sigma.push((class_idx, dc, d));
                        detections += 1;
                        push(
                            &mut events,
                            &mut digest,
                            off,
                            format!(
                                "{{\"t\":\"sigma\",\"off\":{off},\"day\":{day},\"class\":\"{class}\",\"dc\":{dc},\"count\":{count},\"z\":{z:.4}}}",
                                day = start_day + d as u64,
                                class = json_escape(class.name()),
                                count = series[d],
                                z = hit.z_score,
                            ),
                            true,
                        );
                    }
                }
            }
        }};
    }

    let mut cur_day = 0usize;
    let mut tickets = 0usize;
    for fot in trace.fots() {
        let d = (fot.error_time.day_index() - start_day) as usize;
        while cur_day < d {
            close_day!(cur_day);
            cur_day += 1;
        }
        tickets += 1;
        let off = fot.error_time.since(start).as_secs();
        push(&mut events, &mut digest, off, ticket_line(fot, off), false);
        if !fot.is_failure() {
            continue; // false alarms ride the feed but feed no detector
        }
        let class_idx = fot.device.index();
        if d < days {
            daily[class_idx][d] += 1;
            dc_daily
                .entry((class_idx, fot.data_center.raw()))
                .or_insert_with(|| vec![0usize; days])[d] += 1;
        }
        if fot.device == ComponentClass::Miscellaneous {
            continue; // manual tickets have no component to predict
        }
        let key = (fot.server.raw(), class_idx as u8, fot.device_slot);
        let stream = streams.entry(key).or_default();
        let t = fot.error_time;
        match fot.failure_type.severity() {
            Severity::Warning => {
                if t + horizon < end {
                    warnings += 1;
                    stream.pending.push(t);
                } // else: not confirmable before the window ends — censored
                stream.events.push((t, Severity::Warning));
            }
            Severity::Fatal => {
                fatals += 1;
                let was_predicted = stream
                    .events
                    .iter()
                    .rev()
                    .take_while(|(t2, _)| t.since(*t2) <= horizon)
                    .any(|(_, s)| *s == Severity::Warning);
                if was_predicted {
                    predicted += 1;
                    online_predicted.push((key, stream.events.len()));
                    detections += 1;
                    push(
                        &mut events,
                        &mut digest,
                        off,
                        format!(
                            "{{\"t\":\"predict\",\"off\":{off},\"day\":{day},\"server\":{server},\"class\":\"{class}\",\"slot\":{slot}}}",
                            day = fot.error_time.day_index(),
                            server = fot.server.raw(),
                            class = json_escape(fot.device.name()),
                            slot = fot.device_slot,
                        ),
                        true,
                    );
                }
                // The first subsequent fatal resolves every pending
                // warning: within the horizon it confirms, beyond it the
                // warning can never be confirmed (later fatals are later
                // still) — exactly `Prediction::evaluate`'s find-first.
                for &tw in &stream.pending {
                    if t.since(tw) <= horizon {
                        confirmed += 1;
                        leads.push(t.since(tw).as_days_f64());
                    }
                }
                stream.pending.clear();
                stream.events.push((t, Severity::Fatal));
            }
        }
    }
    while cur_day < days {
        close_day!(cur_day);
        cur_day += 1;
    }

    let predictor_eval = PredictorEval {
        horizon_days: config.predictor_horizon_days,
        warnings,
        confirmed_warnings: confirmed,
        fatals,
        predicted_fatals: predicted,
        precision: confirmed as f64 / warnings.max(1) as f64,
        recall: predicted as f64 / fatals.max(1) as f64,
        median_lead_days: dcf_stats::median(&leads),
    };

    // ---- Offline ground truths ----
    // Burst: FotMiner's BatchDay criterion with the full-window median.
    let mut truth_burst: Vec<(usize, usize)> = Vec::new();
    for (class_idx, counts) in daily.iter().enumerate() {
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let threshold = (median * 5).max(10);
        for (d, &count) in counts.iter().enumerate() {
            if count > threshold {
                truth_burst.push((class_idx, d));
            }
        }
    }
    truth_burst.sort_unstable();
    // Sigma: the §IV test over each full (class, dc) daily series.
    let mut truth_sigma: Vec<(usize, u16, usize)> = Vec::new();
    for (&(class_idx, dc), series) in dc_daily.iter() {
        let values: Vec<f64> = series.iter().map(|&c| c as f64).collect();
        if let Ok(hits) = dcf_stats::anomaly::sigma_outliers(&values, config.sigma_k) {
            for hit in hits {
                truth_sigma.push((class_idx, dc, hit.index));
            }
        }
    }
    truth_sigma.sort_unstable();
    // Predictor: the offline §VII-A scan, collecting the predicted-fatal
    // set (the same scan `Prediction::evaluate` counts over).
    let truth_predicted = offline_predicted_set(trace, horizon);

    online_burst.sort_unstable();
    online_sigma.sort_unstable();
    online_predicted.sort_unstable();

    let summary = ReplaySummary {
        tickets,
        detections,
        event_digest: digest,
        sigma: DetectorScore::from_sets(&online_sigma, &truth_sigma),
        burst: DetectorScore::from_sets(&online_burst, &truth_burst),
        predictor: DetectorScore::from_sets(&online_predicted, &truth_predicted),
        predictor_eval,
    };
    let summary_line = summary_line(&summary);
    ReplayOutcome {
        events,
        summary,
        summary_line,
    }
}

fn ticket_line(fot: &Fot, off: u64) -> String {
    let sev = match fot.failure_type.severity() {
        Severity::Warning => "warning",
        Severity::Fatal => "fatal",
    };
    format!(
        "{{\"t\":\"fot\",\"off\":{off},\"id\":{id},\"day\":{day},\"server\":{server},\"dc\":{dc},\"class\":\"{class}\",\"slot\":{slot},\"type\":\"{ftype}\",\"sev\":\"{sev}\",\"cat\":\"{cat}\"}}",
        id = fot.id.raw(),
        day = fot.error_time.day_index(),
        server = fot.server.raw(),
        dc = fot.data_center.raw(),
        class = json_escape(fot.device.name()),
        slot = fot.device_slot,
        ftype = json_escape(fot.failure_type.name()),
        cat = fot.category.name(),
    )
}

fn score_json(score: &DetectorScore) -> String {
    format!(
        "{{\"detections\":{},\"truth\":{},\"tp\":{},\"precision\":{:.4},\"recall\":{:.4},\"f1\":{:.4}}}",
        score.detections,
        score.truth,
        score.true_positives,
        score.precision,
        score.recall,
        score.f1(),
    )
}

fn summary_line(s: &ReplaySummary) -> String {
    let e = &s.predictor_eval;
    format!(
        "{{\"t\":\"summary\",\"tickets\":{tickets},\"detections\":{detections},\"digest\":\"{digest:016x}\",\"sigma\":{sigma},\"burst\":{burst},\"predictor\":{predictor},\"predictor_eval\":{{\"horizon_days\":{h},\"warnings\":{w},\"confirmed\":{c},\"fatals\":{f},\"predicted\":{p},\"precision\":{prec:.4},\"recall\":{rec:.4},\"f1\":{f1:.4}}}}}",
        tickets = s.tickets,
        detections = s.detections,
        digest = s.event_digest,
        sigma = score_json(&s.sigma),
        burst = score_json(&s.burst),
        predictor = score_json(&s.predictor),
        h = e.horizon_days,
        w = e.warnings,
        c = e.confirmed_warnings,
        f = e.fatals,
        p = e.predicted_fatals,
        prec = e.precision,
        rec = e.recall,
        f1 = e.f1(),
    )
}

/// The offline predicted-fatal set: component key plus the fatal's index
/// in its per-component event stream — the identity
/// [`Prediction::evaluate`] counts as `predicted_fatals`.
fn offline_predicted_set(trace: &Trace, horizon: SimDuration) -> Vec<((u32, u8, u8), usize)> {
    let mut streams: HashMap<(u32, u8, u8), Vec<(dcf_trace::SimTime, Severity)>> = HashMap::new();
    for fot in trace.failures() {
        if fot.device == ComponentClass::Miscellaneous {
            continue;
        }
        let key = (fot.server.raw(), fot.device.index() as u8, fot.device_slot);
        streams
            .entry(key)
            .or_default()
            .push((fot.error_time, fot.failure_type.severity()));
    }
    let mut out = Vec::new();
    for (key, stream) in &streams {
        for (i, &(t, sev)) in stream.iter().enumerate() {
            if sev != Severity::Fatal {
                continue;
            }
            let was_predicted = stream[..i]
                .iter()
                .rev()
                .take_while(|(t2, _)| t.since(*t2) <= horizon)
                .any(|(_, s2)| *s2 == Severity::Warning);
            if was_predicted {
                out.push((*key, i));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Convenience: the offline [`Prediction::evaluate`] at the replay
/// horizon — what [`ReplaySummary::predictor_eval`] must equal.
pub fn offline_eval(trace: &Trace, config: &ReplayConfig) -> PredictorEval {
    Prediction::new(trace).evaluate(config.predictor_horizon_days, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::medium_trace;

    #[test]
    fn replay_is_deterministic_and_digest_matches_lines() {
        let trace = medium_trace();
        let config = ReplayConfig::default();
        let a = replay(&trace, &config);
        let b = replay(&trace, &config);
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.summary_line, b.summary_line);
        // Recompute the digest from the lines.
        let mut h = FNV_OFFSET;
        for e in &a.events {
            fnv1a(&mut h, e.line.as_bytes());
            fnv1a(&mut h, b"\n");
        }
        assert_eq!(h, a.summary.event_digest);
    }

    #[test]
    fn offsets_are_monotone_and_events_well_formed() {
        let trace = medium_trace();
        let out = replay(&trace, &ReplayConfig::default());
        assert!(out
            .events
            .windows(2)
            .all(|w| w[0].offset_secs <= w[1].offset_secs));
        for e in &out.events {
            assert!(e.line.starts_with('{') && e.line.ends_with('}'));
            assert!(!e.line.contains('\n'));
        }
        let tickets = out.events.iter().filter(|e| !e.is_detection).count();
        assert_eq!(tickets, trace.len());
        assert_eq!(out.summary.tickets, trace.len());
    }

    #[test]
    fn online_predictor_matches_offline_exactly() {
        let trace = medium_trace();
        let config = ReplayConfig::default();
        let out = replay(&trace, &config);
        let offline = offline_eval(&trace, &config);
        assert_eq!(out.summary.predictor_eval, offline);
        // Exact replication: the predicted-fatal sets are identical.
        assert_eq!(out.summary.predictor.precision, 1.0);
        assert_eq!(out.summary.predictor.recall, 1.0);
        assert!(out.summary.predictor.truth > 0, "fixture has repeats");
    }

    #[test]
    fn burst_detector_tracks_the_offline_miner_closely() {
        let trace = medium_trace();
        let out = replay(&trace, &ReplayConfig::default());
        let burst = out.summary.burst;
        assert!(burst.truth > 0, "medium fixture has batch days: {burst:?}");
        assert!(
            burst.f1() >= 0.8,
            "causal burst detector should closely track the miner: {burst:?}"
        );
    }

    #[test]
    fn sigma_detector_fires_and_scores_sanely() {
        let trace = medium_trace();
        let out = replay(&trace, &ReplayConfig::default());
        let sigma = out.summary.sigma;
        assert!(sigma.detections > 0, "{sigma:?}");
        assert!((0.0..=1.0).contains(&sigma.precision));
        assert!((0.0..=1.0).contains(&sigma.recall));
    }

    #[test]
    fn detection_counts_are_consistent() {
        let trace = medium_trace();
        let out = replay(&trace, &ReplayConfig::default());
        let detection_events = out.events.iter().filter(|e| e.is_detection).count();
        assert_eq!(detection_events, out.summary.detections);
        assert_eq!(
            out.summary.detections,
            out.summary.sigma.detections
                + out.summary.burst.detections
                + out.summary.predictor.detections
        );
    }

    /// The acceptance seeds: at every seed, the replayed event sequence
    /// is a pure function of the trace (so byte-identical no matter how
    /// or how fast it is later streamed), and the incremental predictor
    /// reproduces the offline `Prediction::evaluate` exactly.
    #[test]
    fn replay_matches_offline_scoring_across_seeds() {
        for seed in [1u64, 7, 42] {
            let trace = dcf_sim::Scenario::small()
                .seed(seed)
                .simulate(&dcf_sim::RunOptions::default())
                .expect("small scenario runs");
            let config = ReplayConfig::default();
            let a = replay(&trace, &config);
            let b = replay(&trace, &config);
            let lines_a: Vec<&str> = a.events.iter().map(|e| e.line.as_str()).collect();
            let lines_b: Vec<&str> = b.events.iter().map(|e| e.line.as_str()).collect();
            assert_eq!(
                lines_a, lines_b,
                "seed {seed}: event sequence not reproducible"
            );
            assert_eq!(a.summary_line, b.summary_line, "seed {seed}");
            assert_eq!(
                a.summary.predictor_eval,
                offline_eval(&trace, &config),
                "seed {seed}: online predictor diverged from offline evaluate"
            );
            assert_eq!(a.summary.predictor.precision, 1.0, "seed {seed}");
            assert_eq!(a.summary.predictor.recall, 1.0, "seed {seed}");
        }
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("HDD"), "HDD");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb"), "a\\u000ab");
    }
}
