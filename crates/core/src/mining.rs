//! FOT context mining (§VII-B).
//!
//! The paper's critique of the "stateless" FMS: "many FOTs are strongly
//! connected — there are repeating or batch failures. The correlation
//! information is lost in FMS, and thus operators have to treat each FOT
//! independently. … we need to provide operators with related information
//! about an FOT, such as the history of the component, the server, its
//! environment, and the workload."
//!
//! [`FotMiner`] is that tool: given a ticket id, it assembles the context
//! an operator would want before deciding how to respond.

use serde::{Deserialize, Serialize};

use dcf_trace::{FotId, ServerId, SimTime, Trace};

/// How urgent/suspicious a ticket looks given its context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContextFlag {
    /// Same component failed before: the previous repair did not stick —
    /// look for the real root cause (the paper's BBU story).
    RepeatingComponent,
    /// The class is spiking fleet-wide today: likely a batch event; check
    /// firmware/PDU before issuing per-server repair orders.
    BatchDay,
    /// Another component on this server failed the same day: correlated
    /// multi-component incident; the alarming part may not be the broken
    /// part (§V-B's fan-vs-PSU example).
    CorrelatedNeighbor,
    /// The server is past warranty: policy says decommission or ignore.
    OutOfWarranty,
    /// The server is in its deployment phase: expect installation noise.
    DeploymentPhase,
}

/// Everything the miner knows about one ticket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FotContext {
    /// The ticket in question.
    pub fot: FotId,
    /// Earlier failures of the *same component* `(server, class, slot,
    /// type)` — the component history.
    pub component_history: Vec<(FotId, SimTime)>,
    /// All failures ever recorded on this server (the server history size).
    pub server_failure_count: usize,
    /// Same-class fleet-wide failures on the ticket's calendar day, and the
    /// trace's median daily count for that class.
    pub class_count_today: usize,
    /// Median daily count of the class over the window.
    pub class_daily_median: usize,
    /// Other components of this server that failed the same day.
    pub same_day_neighbors: Vec<FotId>,
    /// Servers that failed with the same class within ±60 s (synchronous
    /// partners / batch cohort sample, capped at 8).
    pub co_failing_servers: Vec<ServerId>,
    /// Advisory flags derived from the above.
    pub flags: Vec<ContextFlag>,
}

/// The §VII-B mining tool over one trace.
#[derive(Debug)]
pub struct FotMiner<'a> {
    trace: &'a Trace,
    /// Per-class daily counts, for batch-day detection.
    daily: Vec<Vec<usize>>,
    daily_median: Vec<usize>,
}

impl<'a> FotMiner<'a> {
    /// Builds the miner (one pass over the trace for the daily index).
    pub fn new(trace: &'a Trace) -> Self {
        let start_day = trace.info().start.day_index();
        let days = trace.info().days as usize;
        let mut daily = vec![vec![0usize; days]; 11];
        for fot in trace.failures() {
            let d = (fot.error_time.day_index() - start_day) as usize;
            if d < days {
                daily[fot.device.index()][d] += 1;
            }
        }
        let daily_median = daily
            .iter()
            .map(|counts| {
                let mut sorted = counts.clone();
                sorted.sort_unstable();
                sorted[sorted.len() / 2]
            })
            .collect();
        Self {
            trace,
            daily,
            daily_median,
        }
    }

    /// Assembles the context for ticket `id`; `None` for unknown ids.
    pub fn context(&self, id: FotId) -> Option<FotContext> {
        let fot = self.trace.fots().iter().find(|f| f.id == id)?;
        let server = self.trace.server(fot.server);
        let day = fot.error_time.day_index();

        let mut component_history = Vec::new();
        let mut same_day_neighbors = Vec::new();
        let mut server_failure_count = 0usize;
        for other in self.trace.fots_of_server(fot.server) {
            if !other.is_failure() {
                continue;
            }
            server_failure_count += 1;
            if other.id != fot.id
                && other.component_key() == fot.component_key()
                && other.failure_type == fot.failure_type
                && other.error_time <= fot.error_time
            {
                component_history.push((other.id, other.error_time));
            }
            if other.id != fot.id
                && other.device != fot.device
                && other.error_time.day_index() == day
            {
                same_day_neighbors.push(other.id);
            }
        }

        // Same-class co-failures within ±60 s (batch cohort / sync partner).
        let window = 60u64;
        let mut co_failing_servers = Vec::new();
        for other in self.trace.failures() {
            if co_failing_servers.len() >= 8 {
                break;
            }
            if other.server != fot.server
                && other.device == fot.device
                && other.error_time.since(fot.error_time).as_secs() <= window
                && fot.error_time.since(other.error_time).as_secs() <= window
                && !co_failing_servers.contains(&other.server)
            {
                co_failing_servers.push(other.server);
            }
        }

        let start_day = self.trace.info().start.day_index();
        let d = (day - start_day) as usize;
        let class_count_today = self.daily[fot.device.index()].get(d).copied().unwrap_or(0);
        let class_daily_median = self.daily_median[fot.device.index()];

        let mut flags = Vec::new();
        if !component_history.is_empty() {
            flags.push(ContextFlag::RepeatingComponent);
        }
        if class_count_today > (class_daily_median * 5).max(10) {
            flags.push(ContextFlag::BatchDay);
        }
        if !same_day_neighbors.is_empty() {
            flags.push(ContextFlag::CorrelatedNeighbor);
        }
        if server.out_of_warranty_at(fot.error_time) {
            flags.push(ContextFlag::OutOfWarranty);
        }
        if fot.error_time.since(server.deploy_time) < dcf_trace::SimDuration::from_days(60) {
            flags.push(ContextFlag::DeploymentPhase);
        }

        Some(FotContext {
            fot: id,
            component_history,
            server_failure_count,
            class_count_today,
            class_daily_median,
            same_day_neighbors,
            co_failing_servers,
            flags,
        })
    }

    /// Contexts for every failure of one server (operator drill-down view).
    pub fn server_contexts(&self, server: ServerId) -> Vec<FotContext> {
        self.trace
            .fots_of_server(server)
            .filter(|f| f.is_failure())
            .filter_map(|f| self.context(f.id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::synthetic_trace;
    use dcf_trace::FotCategory;

    #[test]
    fn unknown_id_yields_none() {
        let trace = synthetic_trace();
        let miner = FotMiner::new(&trace);
        assert!(miner.context(FotId::new(u64::MAX)).is_none());
    }

    #[test]
    fn every_failure_gets_a_context() {
        let trace = synthetic_trace();
        let miner = FotMiner::new(&trace);
        for fot in trace.failures().take(200) {
            let ctx = miner.context(fot.id).expect("context exists");
            assert_eq!(ctx.fot, fot.id);
            assert!(ctx.server_failure_count >= 1);
            assert!(ctx.class_count_today >= 1, "the ticket itself counts");
        }
    }

    #[test]
    fn out_of_warranty_tickets_are_flagged() {
        let trace = synthetic_trace();
        let miner = FotMiner::new(&trace);
        let error_fot = trace
            .in_category(FotCategory::Error)
            .next()
            .expect("small trace has D_error tickets");
        let ctx = miner.context(error_fot.id).unwrap();
        assert!(ctx.flags.contains(&ContextFlag::OutOfWarranty));
    }

    #[test]
    fn repeating_components_are_flagged_on_later_occurrences() {
        let trace = synthetic_trace();
        let miner = FotMiner::new(&trace);
        // Find any component with >= 2 failures of the same type.
        let mut seen = std::collections::HashMap::new();
        let mut repeat_id = None;
        for fot in trace.failures() {
            let key = (fot.component_key(), fot.failure_type);
            if seen.contains_key(&key) {
                repeat_id = Some(fot.id);
                break;
            }
            seen.insert(key, fot.id);
        }
        let Some(id) = repeat_id else {
            return; // no repeats in this fixture — nothing to assert
        };
        let ctx = miner.context(id).unwrap();
        assert!(ctx.flags.contains(&ContextFlag::RepeatingComponent));
        assert!(!ctx.component_history.is_empty());
    }

    #[test]
    fn server_contexts_cover_all_failures() {
        let trace = synthetic_trace();
        let miner = FotMiner::new(&trace);
        let busiest = trace
            .servers()
            .iter()
            .max_by_key(|s| {
                trace
                    .fots_of_server(s.id)
                    .filter(|f| f.is_failure())
                    .count()
            })
            .unwrap();
        let contexts = miner.server_contexts(busiest.id);
        let failures = trace
            .fots_of_server(busiest.id)
            .filter(|f| f.is_failure())
            .count();
        assert_eq!(contexts.len(), failures);
    }
}
