//! §VI operator-response analysis: RT distributions overall (Figure 9),
//! per component class (Figure 10), and per product line (Figure 11).
//!
//! # Examples
//!
//! ```
//! use dcf_core::response::Response;
//! use dcf_trace::FotCategory;
//!
//! let trace = dcf_sim::Scenario::small().seed(1).simulate(&dcf_sim::RunOptions::default()).unwrap();
//! let rt = Response::new(&trace).rt_of_category(FotCategory::Fixing).unwrap();
//! assert!(rt.mean_days > rt.median_days); // heavy right tail
//! ```

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use dcf_stats::{median, Ecdf, StatsError};
use dcf_trace::{ComponentClass, FotCategory, OperatorId, ProductLineId, Trace};

/// Summary of one response-time population (days).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RtStats {
    /// Number of responded tickets.
    pub n: usize,
    /// Mean RT in days (the paper's MTTR view).
    pub mean_days: f64,
    /// Median RT in days.
    pub median_days: f64,
    /// 90th percentile in days.
    pub p90_days: f64,
    /// Fraction of tickets with RT > 140 days (paper: 10% overall).
    pub over_140d: f64,
    /// Fraction of tickets with RT > 200 days (paper: 2% overall).
    pub over_200d: f64,
}

/// A Figure 11 scatter point: one product line's HDD failures vs median RT.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineRtPoint {
    /// The product line.
    pub line: ProductLineId,
    /// Number of HDD failures with responses in the window.
    pub hdd_failures: usize,
    /// Median RT over those failures, days.
    pub median_rt_days: f64,
}

/// One operator's closing workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatorLoad {
    /// The operator.
    pub operator: OperatorId,
    /// Tickets this operator closed.
    pub tickets: usize,
    /// Median response time over those tickets, days.
    pub median_rt_days: f64,
}

/// Figure 11's headline statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineRtSummary {
    /// Median RT of the top-1% lines by failure count (paper: 47 days).
    pub top1pct_median_days: f64,
    /// Among lines with < 100 failures, share with median RT > 100 days
    /// (paper: 21%).
    pub small_line_over_100d_share: f64,
    /// Standard deviation of per-line median RT (paper: 30.2 days).
    pub std_dev_days: f64,
}

/// §VI analysis over one trace.
#[derive(Debug, Clone)]
pub struct Response<'a> {
    trace: &'a Trace,
}

impl<'a> Response<'a> {
    /// Creates the analysis.
    pub fn new(trace: &'a Trace) -> Self {
        Self { trace }
    }

    fn stats_from(rts_days: Vec<f64>) -> Result<RtStats, StatsError> {
        let e = Ecdf::new(rts_days)?;
        Ok(RtStats {
            n: e.len(),
            mean_days: e.mean(),
            median_days: e.median(),
            p90_days: e.quantile(0.9),
            over_140d: e.tail_fraction(140.0),
            over_200d: e.tail_fraction(200.0),
        })
    }

    /// RT in days for every responded ticket of `category`.
    pub fn rts_of_category(&self, category: FotCategory) -> Vec<f64> {
        match self.trace.columns() {
            Some(cols) => self
                .trace
                .index()
                .category_ids(category)
                .iter()
                .filter_map(|&p| cols.response_days(p as usize))
                .collect(),
            None => self
                .trace
                .in_category(category)
                .filter_map(|f| f.response_time())
                .map(|d| d.as_days_f64())
                .collect(),
        }
    }

    /// Figure 9: RT statistics for one category (`D_fixing` or
    /// `D_falsealarm`).
    ///
    /// # Errors
    ///
    /// Fails when the category has no responded tickets.
    pub fn rt_of_category(&self, category: FotCategory) -> Result<RtStats, StatsError> {
        Self::stats_from(self.rts_of_category(category))
    }

    /// Figure 9's CDF series for a category, downsampled.
    ///
    /// # Errors
    ///
    /// Fails when the category has no responded tickets.
    pub fn rt_cdf(
        &self,
        category: FotCategory,
        max_points: usize,
    ) -> Result<Vec<(f64, f64)>, StatsError> {
        let e = Ecdf::new(self.rts_of_category(category))?;
        Ok(e.sampled_points(max_points))
    }

    /// Figure 10: RT statistics per component class over all responded
    /// tickets; classes without enough responses are omitted.
    ///
    /// Walks the trace's responded-ticket bucket once per class rather than
    /// re-scanning every ticket — or, columnar, a single demultiplexing pass
    /// over the responded population that splits RTs by class tag. Both
    /// orders are the ticket time order, so results are identical.
    pub fn rt_by_class(&self, min_n: usize) -> Vec<(ComponentClass, RtStats)> {
        let per_class: Vec<Vec<f64>> = match self.trace.columns() {
            Some(cols) => {
                let classes = cols.classes();
                let mut per_class = vec![Vec::new(); ComponentClass::ALL.len()];
                for &p in self.trace.index().responded_ids() {
                    let i = p as usize;
                    if let Some(rt) = cols.response_days(i) {
                        per_class[classes[i] as usize].push(rt);
                    }
                }
                per_class
            }
            None => ComponentClass::ALL
                .iter()
                .map(|&class| {
                    self.trace
                        .responded()
                        .filter(|f| f.device == class)
                        .filter_map(|f| f.response_time())
                        .map(|d| d.as_days_f64())
                        .collect()
                })
                .collect(),
        };
        ComponentClass::ALL
            .iter()
            .zip(per_class)
            .filter_map(|(&class, rts)| {
                if rts.len() < min_n {
                    return None;
                }
                Self::stats_from(rts).ok().map(|s| (class, s))
            })
            .collect()
    }

    /// Figure 11: per-line HDD failure count vs median RT, for lines with
    /// at least `min_failures` responded HDD tickets.
    ///
    /// Groups the responded-ticket bucket into an ordered map, so the
    /// output (including tie order after the sort below) is deterministic.
    pub fn rt_by_product_line_hdd(&self, min_failures: usize) -> Vec<LineRtPoint> {
        let mut per_line: BTreeMap<ProductLineId, Vec<f64>> = BTreeMap::new();
        for fot in self.trace.responded() {
            if fot.device != ComponentClass::Hdd {
                continue;
            }
            if let Some(rt) = fot.response_time() {
                per_line
                    .entry(fot.product_line)
                    .or_default()
                    .push(rt.as_days_f64());
            }
        }
        let mut points: Vec<LineRtPoint> = per_line
            .into_iter()
            .filter(|(_, rts)| rts.len() >= min_failures)
            .map(|(line, rts)| LineRtPoint {
                line,
                hdd_failures: rts.len(),
                median_rt_days: median(&rts).expect("non-empty by filter"),
            })
            .collect();
        points.sort_by_key(|p| std::cmp::Reverse(p.hdd_failures));
        points
    }

    /// Per-operator workload: tickets closed and median RT for each
    /// operator id seen in the trace (operators handling at least `min_n`
    /// tickets), busiest first. §VI notes each product line has its own
    /// team; this view shows how unevenly the closing work lands.
    pub fn by_operator(&self, min_n: usize) -> Vec<OperatorLoad> {
        let mut per_op: BTreeMap<OperatorId, Vec<f64>> = BTreeMap::new();
        for fot in self.trace.responded() {
            if let (Some(resp), Some(rt)) = (fot.response, fot.response_time()) {
                per_op
                    .entry(resp.operator)
                    .or_default()
                    .push(rt.as_days_f64());
            }
        }
        let mut rows: Vec<OperatorLoad> = per_op
            .into_iter()
            .filter(|(_, rts)| rts.len() >= min_n)
            .map(|(operator, rts)| OperatorLoad {
                operator,
                tickets: rts.len(),
                median_rt_days: median(&rts).expect("non-empty by filter"),
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.tickets));
        rows
    }

    /// Figure 11's summary statistics over `points` (as returned by
    /// [`Response::rt_by_product_line_hdd`]). `small_line_cutoff` is the
    /// paper's "fewer than 100 failures" boundary, scaled by callers for
    /// smaller fleets.
    pub fn line_rt_summary(
        &self,
        points: &[LineRtPoint],
        small_line_cutoff: usize,
    ) -> Option<LineRtSummary> {
        if points.is_empty() {
            return None;
        }
        // Points arrive sorted by failure count descending. The paper's
        // "top 1% product lines have a median RT of 47 days" pools the
        // tickets of those lines, so weight each line by its volume.
        let top_k = (points.len() / 100).max(1);
        let top_lines: std::collections::HashSet<ProductLineId> =
            points[..top_k].iter().map(|p| p.line).collect();
        let pooled: Vec<f64> = self
            .trace
            .responded()
            .filter(|f| f.device == ComponentClass::Hdd && top_lines.contains(&f.product_line))
            .filter_map(|f| f.response_time())
            .map(|d| d.as_days_f64())
            .collect();
        let top1pct_median_days = median(&pooled)?;

        let small: Vec<&LineRtPoint> = points
            .iter()
            .filter(|p| p.hdd_failures < small_line_cutoff)
            .collect();
        let small_line_over_100d_share = if small.is_empty() {
            0.0
        } else {
            small.iter().filter(|p| p.median_rt_days > 100.0).count() as f64 / small.len() as f64
        };

        let medians: Vec<f64> = points.iter().map(|p| p.median_rt_days).collect();
        let mean = medians.iter().sum::<f64>() / medians.len() as f64;
        let var = medians.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / medians.len() as f64;

        Some(LineRtSummary {
            top1pct_median_days,
            small_line_over_100d_share,
            std_dev_days: var.sqrt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{medium_trace, synthetic_trace};

    #[test]
    fn rt_is_heavy_tailed_overall() {
        let trace = synthetic_trace();
        let r = Response::new(&trace)
            .rt_of_category(FotCategory::Fixing)
            .unwrap();
        assert!(r.n > 100);
        // Heavy tail: mean far above median (paper: 42.2 vs 6.1 days).
        assert!(
            r.mean_days > 2.0 * r.median_days,
            "mean {} median {}",
            r.mean_days,
            r.median_days
        );
        assert!(r.over_140d > 0.0, "some tickets stay open beyond 140 days");
        assert!(r.over_140d >= r.over_200d);
    }

    #[test]
    fn false_alarms_have_their_own_distribution() {
        let trace = medium_trace();
        let r = Response::new(&trace)
            .rt_of_category(FotCategory::FalseAlarm)
            .unwrap();
        assert!(r.n > 30);
        assert!(r.median_days > 0.0);
    }

    #[test]
    fn ssd_responses_are_fastest_hdd_among_slowest() {
        let trace = medium_trace();
        let by_class = Response::new(&trace).rt_by_class(30);
        let get = |c: ComponentClass| {
            by_class
                .iter()
                .find(|(class, _)| *class == c)
                .map(|(_, s)| s.median_days)
        };
        let hdd = get(ComponentClass::Hdd).expect("HDD has responses");
        if let Some(ssd) = get(ComponentClass::Ssd) {
            assert!(hdd > 5.0 * ssd, "hdd {hdd} vs ssd {ssd}");
        }
    }

    #[test]
    fn error_category_has_no_rts() {
        let trace = synthetic_trace();
        assert!(Response::new(&trace)
            .rts_of_category(FotCategory::Error)
            .is_empty());
    }

    #[test]
    fn line_scatter_and_summary_are_consistent() {
        let trace = medium_trace();
        let resp = Response::new(&trace);
        let points = resp.rt_by_product_line_hdd(5);
        assert!(
            points.len() >= 5,
            "lines with HDD responses: {}",
            points.len()
        );
        for w in points.windows(2) {
            assert!(w[0].hdd_failures >= w[1].hdd_failures);
        }
        let summary = resp.line_rt_summary(&points, 100).unwrap();
        assert!(summary.top1pct_median_days > 0.0);
        assert!(summary.std_dev_days >= 0.0);
        assert!((0.0..=1.0).contains(&summary.small_line_over_100d_share));
    }

    #[test]
    fn big_lines_are_slower_than_typical() {
        let trace = medium_trace();
        let resp = Response::new(&trace);
        let points = resp.rt_by_product_line_hdd(5);
        let summary = resp.line_rt_summary(&points, 100).unwrap();
        let all_medians: Vec<f64> = points.iter().map(|p| p.median_rt_days).collect();
        let overall = dcf_stats::median(&all_medians).unwrap();
        assert!(
            summary.top1pct_median_days > overall,
            "top-1% {} vs overall line median {}",
            summary.top1pct_median_days,
            overall
        );
    }

    #[test]
    fn operator_workload_partitions_responses() {
        let trace = medium_trace();
        let rows = Response::new(&trace).by_operator(1);
        let total: usize = rows.iter().map(|r| r.tickets).sum();
        let responded = trace.fots().iter().filter(|f| f.response.is_some()).count();
        assert_eq!(total, responded);
        for w in rows.windows(2) {
            assert!(w[0].tickets >= w[1].tickets);
        }
        // Work is uneven: the busiest operator handles far more than the
        // median operator (big lines concentrate tickets on small teams).
        let median_load = rows[rows.len() / 2].tickets;
        assert!(rows[0].tickets > 3 * median_load.max(1));
    }

    #[test]
    fn cdf_points_are_monotone() {
        let trace = synthetic_trace();
        let pts = Response::new(&trace)
            .rt_cdf(FotCategory::Fixing, 100)
            .unwrap();
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }
}
