//! Open-ticket backlog and degraded capacity (§VII-A).
//!
//! The paper argues delayed repair has real costs: "hardware failures
//! reduce the overall capacity of the system. Even worse, unhandled
//! hardware failures add up…". This module quantifies both:
//!
//! * the **repair backlog** — how many `D_fixing` tickets are open
//!   (detected but not yet closed by an operator) at any instant; and
//! * the **degraded fleet** — servers carrying unrepaired (`D_error`)
//!   failures that stay in production.

use serde::{Deserialize, Serialize};

use dcf_trace::{ComponentClass, FotCategory, ServerId, Trace};

/// One point of a backlog timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BacklogPoint {
    /// Day index (absolute, since simulation origin).
    pub day: u64,
    /// Open tickets (or degraded servers) on that day.
    pub count: usize,
}

/// Summary of the repair backlog over the window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BacklogSummary {
    /// Mean number of open `D_fixing` tickets.
    pub mean_open: f64,
    /// Peak open tickets.
    pub peak_open: usize,
    /// Day of the peak.
    pub peak_day: u64,
    /// Mean open tickets per 1,000 servers.
    pub mean_open_per_1k_servers: f64,
    /// Share of the fleet degraded (≥1 unrepaired `D_error` failure) at
    /// the end of the window — the §VII-A "failures add up" number.
    pub degraded_share_at_end: f64,
}

/// §VII-A backlog analysis over one trace.
#[derive(Debug, Clone)]
pub struct Backlog<'a> {
    trace: &'a Trace,
}

impl<'a> Backlog<'a> {
    /// Creates the analysis.
    pub fn new(trace: &'a Trace) -> Self {
        Self { trace }
    }

    /// Open `D_fixing` tickets per day (optionally for one class):
    /// a ticket is open from `error_time` until its `op_time`.
    pub fn open_timeline(&self, class: Option<ComponentClass>) -> Vec<BacklogPoint> {
        let start_day = self.trace.info().start.day_index();
        let days = self.trace.info().days as usize;
        // +1 at open day, −1 the day after close.
        let mut delta = vec![0i64; days + 1];
        for fot in self.trace.in_category(FotCategory::Fixing) {
            if class.is_some_and(|c| fot.device != c) {
                continue;
            }
            let open = (fot.error_time.day_index() - start_day) as usize;
            if open >= days {
                continue;
            }
            delta[open] += 1;
            let close = fot
                .response
                .map(|r| r.op_time.day_index().saturating_sub(start_day) as usize + 1)
                .unwrap_or(days);
            delta[close.min(days)] -= 1;
        }
        let mut open = 0i64;
        (0..days)
            .map(|d| {
                open += delta[d];
                BacklogPoint {
                    day: start_day + d as u64,
                    count: open.max(0) as usize,
                }
            })
            .collect()
    }

    /// Cumulative count of *degraded* servers per day: servers that have
    /// accumulated at least one unrepaired (`D_error`) failure and remain
    /// in the fleet.
    pub fn degraded_timeline(&self) -> Vec<BacklogPoint> {
        let start_day = self.trace.info().start.day_index();
        let days = self.trace.info().days as usize;
        let mut first_error_day: std::collections::HashMap<ServerId, usize> =
            std::collections::HashMap::new();
        for fot in self.trace.in_category(FotCategory::Error) {
            let d = (fot.error_time.day_index() - start_day) as usize;
            first_error_day
                .entry(fot.server)
                .and_modify(|cur| *cur = (*cur).min(d))
                .or_insert(d);
        }
        let mut new_per_day = vec![0usize; days];
        for (_, d) in first_error_day {
            if d < days {
                new_per_day[d] += 1;
            }
        }
        let mut cum = 0usize;
        (0..days)
            .map(|d| {
                cum += new_per_day[d];
                BacklogPoint {
                    day: start_day + d as u64,
                    count: cum,
                }
            })
            .collect()
    }

    /// Backlog summary statistics.
    pub fn summary(&self) -> BacklogSummary {
        let timeline = self.open_timeline(None);
        let n = timeline.len().max(1) as f64;
        let mean_open = timeline.iter().map(|p| p.count as f64).sum::<f64>() / n;
        let peak = timeline
            .iter()
            .max_by_key(|p| p.count)
            .copied()
            .unwrap_or(BacklogPoint { day: 0, count: 0 });
        let servers = self.trace.servers().len().max(1) as f64;
        let degraded = self
            .degraded_timeline()
            .last()
            .map(|p| p.count)
            .unwrap_or(0);
        BacklogSummary {
            mean_open,
            peak_open: peak.count,
            peak_day: peak.day,
            mean_open_per_1k_servers: mean_open * 1_000.0 / servers,
            degraded_share_at_end: degraded as f64 / servers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{medium_trace, synthetic_trace};

    #[test]
    fn timeline_is_consistent_with_ticket_lifetimes() {
        let trace = synthetic_trace();
        let backlog = Backlog::new(&trace);
        let timeline = backlog.open_timeline(None);
        assert_eq!(timeline.len(), trace.info().days as usize);
        // Brute-force check a few sampled days.
        let start_day = trace.info().start.day_index();
        for &probe in &[30usize, 120, 300] {
            let day = start_day + probe as u64;
            let expect = trace
                .in_category(dcf_trace::FotCategory::Fixing)
                .filter(|f| {
                    let opened = f.error_time.day_index() <= day;
                    let closed = f
                        .response
                        .map(|r| r.op_time.day_index() < day)
                        .unwrap_or(false);
                    opened && !closed
                })
                .count();
            // Day-granularity edge conventions can differ by same-day closes.
            let got = timeline[probe].count;
            assert!(
                (got as i64 - expect as i64).unsigned_abs() <= expect as u64 / 5 + 3,
                "day {probe}: got {got}, expected ≈{expect}"
            );
        }
    }

    #[test]
    fn degraded_fleet_grows_monotonically() {
        let trace = synthetic_trace();
        let timeline = Backlog::new(&trace).degraded_timeline();
        for w in timeline.windows(2) {
            assert!(w[1].count >= w[0].count);
        }
        assert!(timeline.last().unwrap().count > 0, "D_error servers exist");
    }

    #[test]
    fn summary_reflects_slow_operators() {
        let trace = medium_trace();
        let s = Backlog::new(&trace).summary();
        // With median RT around a week over tens of thousands of tickets,
        // hundreds of tickets sit open at any moment.
        assert!(s.mean_open > 50.0, "mean open {}", s.mean_open);
        assert!(s.peak_open >= s.mean_open as usize);
        assert!(s.mean_open_per_1k_servers > 0.0);
        assert!((0.0..=1.0).contains(&s.degraded_share_at_end));
        assert!(s.degraded_share_at_end > 0.01, "degradation accumulates");
    }

    #[test]
    fn class_filter_reduces_backlog() {
        let trace = synthetic_trace();
        let backlog = Backlog::new(&trace);
        let all: usize = backlog.open_timeline(None).iter().map(|p| p.count).sum();
        let hdd: usize = backlog
            .open_timeline(Some(ComponentClass::Hdd))
            .iter()
            .map(|p| p.count)
            .sum();
        assert!(hdd <= all);
        assert!(hdd > 0);
    }
}
