//! # dcf-core
//!
//! The analysis suite of *"What Can We Learn from Four Years of Data Center
//! Hardware Failures?"* (DSN 2017) — the paper's primary contribution,
//! reimplemented over the [`dcf_trace::Trace`] schema.
//!
//! Every table and figure of the paper's evaluation maps to a module here:
//!
//! | Paper | Module |
//! |-------|--------|
//! | Tables I–III, Fig. 2 | [`overview`] |
//! | Figs. 3–5, Hypotheses 1–4 | [`temporal`] |
//! | Fig. 6 | [`lifecycle`] |
//! | Fig. 7, repeats | [`skew`] |
//! | Table IV, Fig. 8, Hypothesis 5 | [`spatial`] |
//! | Table V | [`batch`] |
//! | Tables VI–VIII | [`correlation`] |
//! | Figs. 9–11 | [`response`] |
//!
//! [`FailureStudy`] bundles them; [`paper`] holds the published reference
//! values for paper-vs-measured reporting. Two §VII "future work" tools are
//! also implemented: [`prediction`] (the warning→failure predictor the
//! paper's FMS team built), [`mining`] (the FOT context miner the paper
//! calls for), and [`backlog`] (the §VII-A open-ticket / degraded-capacity
//! accounting). [`replay`] streams a finished trace back as a virtual-time
//! ticket feed with causal, online versions of those detectors attached.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backlog;
pub mod batch;
pub mod comparison;
pub mod correlation;
pub mod lifecycle;
pub mod mining;
pub mod overview;
pub mod paper;
pub mod prediction;
pub mod replay;
pub mod response;
pub mod skew;
pub mod spatial;
mod study;
pub mod temporal;

#[cfg(test)]
mod test_support;

pub use study::{FailureStudy, StudyOptions, StudyReport};

pub(crate) use skew::type_tag as skew_type_tag;
