//! Workload (utilization) rhythms.
//!
//! §III-A: hard-drive, memory and miscellaneous failure *detections*
//! correlate with workload, because log-based detection only notices a
//! fault once the component is exercised, and manual reports follow working
//! hours. This module models per-workload utilization as a function of
//! simulated time; the FMS detection model samples against it.

use serde::{Deserialize, Serialize};

use dcf_trace::{SimTime, Weekday, WorkloadKind};

/// A diurnal/weekly utilization profile in `[floor, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationProfile {
    /// Minimum relative utilization (trough of the curves).
    pub floor: f64,
    /// Relative utilization per hour of day (24 entries, peak = 1.0 scale).
    hourly: [f64; 24],
    /// Relative utilization per weekday (Monday first, 7 entries).
    weekly: [f64; 7],
}

impl UtilizationProfile {
    /// The profile for a workload kind.
    ///
    /// * Batch processing: high and steady, modest night dip (jobs queue
    ///   around the clock), weekends nearly full.
    /// * Online service: strong diurnal swing following users, weekday-peaked.
    /// * Storage: between the two.
    /// * Mixed: average shape.
    pub fn for_workload(kind: WorkloadKind) -> Self {
        match kind {
            WorkloadKind::BatchProcessing => Self::shaped(0.72, 0.18, 0.18),
            WorkloadKind::OnlineService => Self::shaped(0.35, 0.55, 0.35),
            WorkloadKind::Storage => Self::shaped(0.55, 0.30, 0.25),
            WorkloadKind::Mixed => Self::shaped(0.50, 0.35, 0.25),
        }
    }

    /// Builds a sinusoid-shaped profile: `base` floor, `diurnal` swing
    /// peaking mid-afternoon, `weekend_dip` reduction on Sat/Sun.
    fn shaped(base: f64, diurnal: f64, weekend_dip: f64) -> Self {
        let mut hourly = [0.0; 24];
        for (h, slot) in hourly.iter_mut().enumerate() {
            // Peak near 15:00, trough near 03:00.
            let phase = (h as f64 - 15.0) / 24.0 * std::f64::consts::TAU;
            *slot = base + diurnal * (0.5 + 0.5 * phase.cos());
        }
        let mut weekly = [1.0; 7];
        weekly[Weekday::Saturday.index()] = 1.0 - weekend_dip;
        weekly[Weekday::Sunday.index()] = 1.0 - weekend_dip;
        let floor = base;
        Self {
            floor,
            hourly,
            weekly,
        }
    }

    /// Relative utilization in `(0, 1]` at time `t`.
    pub fn utilization(&self, t: SimTime) -> f64 {
        let h = self.hourly[t.hour_of_day() as usize];
        let w = self.weekly[t.weekday().index()];
        (h * w).clamp(1e-3, 1.0)
    }

    /// Fraction of hours `t` with utilization above `threshold` over one
    /// week, a convenience for calibration tests.
    pub fn busy_fraction(&self, threshold: f64) -> f64 {
        let mut busy = 0usize;
        for d in 0..7u64 {
            for h in 0..24u64 {
                let t = SimTime::from_days(d) + dcf_trace::SimDuration::from_hours(h);
                if self.utilization(t) > threshold {
                    busy += 1;
                }
            }
        }
        busy as f64 / (7.0 * 24.0)
    }
}

/// Working-hours weight for *manual* reporting: operators file miscellaneous
/// tickets mostly on weekdays during office hours (§III-A reason 2).
pub fn working_hours_weight(t: SimTime) -> f64 {
    let wd = t.weekday();
    let h = t.hour_of_day();
    let day_factor = if wd.is_weekend() { 0.25 } else { 1.0 };
    let hour_factor = match h {
        9..=11 | 14..=17 => 1.0,
        12 | 13 => 0.7, // lunch dip
        8 | 18 | 19 => 0.5,
        20..=22 => 0.25,
        _ => 0.08, // on-call only at night
    };
    day_factor * hour_factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcf_trace::SimDuration;

    fn at(day: u64, hour: u64) -> SimTime {
        SimTime::from_days(day) + SimDuration::from_hours(hour)
    }

    #[test]
    fn online_swings_more_than_batch() {
        let online = UtilizationProfile::for_workload(WorkloadKind::OnlineService);
        let batch = UtilizationProfile::for_workload(WorkloadKind::BatchProcessing);
        let swing = |p: &UtilizationProfile| {
            let peak = p.utilization(at(0, 15));
            let trough = p.utilization(at(0, 3));
            peak - trough
        };
        assert!(swing(&online) > 2.0 * swing(&batch));
    }

    #[test]
    fn peak_is_afternoon_trough_is_night() {
        let p = UtilizationProfile::for_workload(WorkloadKind::OnlineService);
        assert!(p.utilization(at(0, 15)) > p.utilization(at(0, 3)));
        assert!(p.utilization(at(0, 15)) > p.utilization(at(0, 23)));
    }

    #[test]
    fn weekends_dip() {
        let p = UtilizationProfile::for_workload(WorkloadKind::OnlineService);
        // Day 0 is Tuesday; day 4 is Saturday.
        assert!(p.utilization(at(4, 15)) < p.utilization(at(0, 15)));
    }

    #[test]
    fn utilization_is_bounded() {
        for kind in [
            WorkloadKind::BatchProcessing,
            WorkloadKind::OnlineService,
            WorkloadKind::Storage,
            WorkloadKind::Mixed,
        ] {
            let p = UtilizationProfile::for_workload(kind);
            for d in 0..7 {
                for h in 0..24 {
                    let u = p.utilization(at(d, h));
                    assert!((0.0..=1.0).contains(&u), "{kind:?} d{d} h{h}: {u}");
                }
            }
        }
    }

    #[test]
    fn batch_stays_busy() {
        let p = UtilizationProfile::for_workload(WorkloadKind::BatchProcessing);
        assert!(p.busy_fraction(0.5) > 0.9);
    }

    #[test]
    fn manual_reporting_follows_office_hours() {
        // Tuesday 10:00 vs Tuesday 03:00 vs Saturday 10:00.
        assert!(working_hours_weight(at(0, 10)) > 5.0 * working_hours_weight(at(0, 3)));
        assert!(working_hours_weight(at(0, 10)) > 2.0 * working_hours_weight(at(4, 10)));
    }
}
