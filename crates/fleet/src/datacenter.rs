//! Data center physical model: racks, slot positions, cooling-driven
//! per-position failure multipliers, and PDU blast-radius groups.
//!
//! §IV of the paper: in older under-floor-cooled data centers the top rack
//! slots (last reached by cooling air) and slots adjacent to rack-level
//! power modules run several degrees hotter and fail more; post-2014
//! designs are spatially uniform.

use serde::{Deserialize, Serialize};

use dcf_trace::{DataCenterId, DataCenterMeta, RackId};

/// How a data center's cooling affects per-position failure rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoolingDesign {
    /// Modern (post-2014) design: spatially uniform.
    Modern,
    /// Under-floor cooling with a thermal gradient toward the rack top,
    /// scaled by `gradient` (0 = flat, 0.5 = top slots +50%).
    UnderFloor {
        /// Relative failure-rate increase at the topmost slot.
        gradient: f64,
    },
}

/// A data center: metadata plus the spatial failure-rate profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataCenter {
    /// Snapshot metadata (id, name, build year, …).
    pub meta: DataCenterMeta,
    /// Cooling design.
    pub cooling: CoolingDesign,
    /// Per-position failure-rate multipliers (length = `meta.rack_positions`).
    /// 1.0 everywhere for modern designs; includes gradient and hot spots
    /// for under-floor designs.
    position_multiplier: Vec<f64>,
    /// Slot positions designated as hot spots (e.g. next to the rack power
    /// module), beyond the smooth gradient.
    pub hot_positions: Vec<u8>,
    /// Number of racks in this data center.
    pub racks: u32,
    /// Racks per power distribution unit.
    pub racks_per_pdu: u8,
}

impl DataCenter {
    /// Builds a data center's spatial profile.
    ///
    /// `hot_positions` get an extra `hot_boost` multiplier on top of any
    /// cooling gradient (ignored for [`CoolingDesign::Modern`]).
    pub fn new(
        meta: DataCenterMeta,
        cooling: CoolingDesign,
        hot_positions: Vec<u8>,
        hot_boost: f64,
        racks: u32,
        racks_per_pdu: u8,
    ) -> Self {
        let n = meta.rack_positions as usize;
        let mut position_multiplier = vec![1.0; n];
        if let CoolingDesign::UnderFloor { gradient } = cooling {
            for (i, m) in position_multiplier.iter_mut().enumerate() {
                // Linear thermal gradient from bottom (cool) to top (hot).
                *m = 1.0 + gradient * i as f64 / (n.max(2) - 1) as f64;
            }
            for &p in &hot_positions {
                if let Some(m) = position_multiplier.get_mut(p as usize) {
                    *m *= hot_boost;
                }
            }
        }
        Self {
            meta,
            cooling,
            position_multiplier,
            hot_positions,
            racks,
            racks_per_pdu,
        }
    }

    /// The data center id.
    pub fn id(&self) -> DataCenterId {
        self.meta.id
    }

    /// Failure-rate multiplier at a rack position.
    ///
    /// # Panics
    ///
    /// Panics for positions outside the rack design.
    pub fn position_multiplier(&self, position: u8) -> f64 {
        self.position_multiplier[position as usize]
    }

    /// All position multipliers, bottom slot first.
    pub fn position_multipliers(&self) -> &[f64] {
        &self.position_multiplier
    }

    /// Which PDU feeds a rack — failures of that PDU take out every rack in
    /// the group (§V-A Case 3).
    pub fn pdu_of_rack(&self, rack: RackId) -> u32 {
        rack.raw() / self.racks_per_pdu as u32
    }

    /// Number of PDUs in the data center.
    pub fn pdu_count(&self) -> u32 {
        self.racks.div_ceil(self.racks_per_pdu as u32)
    }

    /// Racks belonging to PDU group `pdu` (dense rack ids).
    pub fn racks_of_pdu(&self, pdu: u32) -> impl Iterator<Item = RackId> {
        let per = self.racks_per_pdu as u32;
        let start = pdu * per;
        let end = ((pdu + 1) * per).min(self.racks);
        (start..end).map(RackId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(positions: u8) -> DataCenterMeta {
        DataCenterMeta {
            id: DataCenterId::new(0),
            name: "DC-00".into(),
            built_year: 2012,
            modern_cooling: false,
            rack_positions: positions,
        }
    }

    #[test]
    fn modern_design_is_flat() {
        let dc = DataCenter::new(meta(40), CoolingDesign::Modern, vec![22], 2.0, 100, 8);
        assert!(dc.position_multipliers().iter().all(|&m| m == 1.0));
    }

    #[test]
    fn underfloor_gradient_rises_toward_top() {
        let dc = DataCenter::new(
            meta(40),
            CoolingDesign::UnderFloor { gradient: 0.4 },
            vec![],
            1.0,
            100,
            8,
        );
        assert!((dc.position_multiplier(0) - 1.0).abs() < 1e-12);
        assert!((dc.position_multiplier(39) - 1.4).abs() < 1e-12);
        assert!(dc.position_multiplier(20) > dc.position_multiplier(10));
    }

    #[test]
    fn hot_spots_stack_on_gradient() {
        let dc = DataCenter::new(
            meta(40),
            CoolingDesign::UnderFloor { gradient: 0.0 },
            vec![22, 35],
            1.5,
            100,
            8,
        );
        assert!((dc.position_multiplier(22) - 1.5).abs() < 1e-12);
        assert!((dc.position_multiplier(35) - 1.5).abs() < 1e-12);
        assert!((dc.position_multiplier(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pdu_grouping() {
        let dc = DataCenter::new(meta(40), CoolingDesign::Modern, vec![], 1.0, 20, 8);
        assert_eq!(dc.pdu_of_rack(RackId::new(0)), 0);
        assert_eq!(dc.pdu_of_rack(RackId::new(7)), 0);
        assert_eq!(dc.pdu_of_rack(RackId::new(8)), 1);
        assert_eq!(dc.pdu_count(), 3);
        let racks: Vec<u32> = dc.racks_of_pdu(2).map(|r| r.raw()).collect();
        assert_eq!(racks, vec![16, 17, 18, 19]); // last group truncated at 20
    }
}
