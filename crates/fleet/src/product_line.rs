//! Product lines: the organizational unit owning servers.
//!
//! The company partitions hundreds of thousands of servers into hundreds of
//! product lines, each with its own workload, software fault-tolerance
//! level and operator team (§VI-C). Line size is heavily skewed — the
//! §V-A case study is a single line with tens of thousands of servers.

use serde::{Deserialize, Serialize};

use dcf_trace::{FaultTolerance, ProductLineId, ProductLineMeta, WorkloadKind};

use crate::workload::UtilizationProfile;

/// A product line and everything the simulator needs to know about it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductLine {
    /// Snapshot metadata (id, name, workload, fault tolerance).
    pub meta: ProductLineMeta,
    /// Utilization rhythm of the line's workload.
    pub utilization: UtilizationProfile,
    /// Target share of the fleet's servers (Zipf-skewed, sums to ~1).
    pub target_share: f64,
}

impl ProductLine {
    /// Builds a line with the utilization profile implied by its workload.
    pub fn new(meta: ProductLineMeta, target_share: f64) -> Self {
        let utilization = UtilizationProfile::for_workload(meta.workload);
        Self {
            meta,
            utilization,
            target_share,
        }
    }

    /// The line id.
    pub fn id(&self) -> ProductLineId {
        self.meta.id
    }
}

/// Deterministically picks a workload kind for line `rank` (0 = largest).
///
/// The mix matches the paper's description: batch processing dominates
/// (most servers run Hadoop-style jobs), online services are fewer but
/// operationally strict. Rank 0 — the dominant line of the §V-A case
/// study — is always batch processing.
pub fn workload_for_rank(rank: usize) -> WorkloadKind {
    if rank == 0 {
        return WorkloadKind::BatchProcessing;
    }
    match rank % 10 {
        0..=4 => WorkloadKind::BatchProcessing,
        5 | 6 => WorkloadKind::OnlineService,
        7 | 8 => WorkloadKind::Storage,
        _ => WorkloadKind::Mixed,
    }
}

/// Fault tolerance implied by a workload: batch/Hadoop lines are highly
/// fault tolerant, online services much less so (§VI).
pub fn fault_tolerance_for(workload: WorkloadKind, rank: usize) -> FaultTolerance {
    match workload {
        WorkloadKind::BatchProcessing => FaultTolerance::High,
        WorkloadKind::Storage => FaultTolerance::High,
        WorkloadKind::OnlineService => {
            if rank.is_multiple_of(2) {
                FaultTolerance::Low
            } else {
                FaultTolerance::Medium
            }
        }
        WorkloadKind::Mixed => FaultTolerance::Medium,
    }
}

/// Zipf-like size shares for `n` lines with exponent `s`, normalized to 1.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn zipf_shares(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one product line");
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    weights.into_iter().map(|w| w / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_shares_sum_to_one_and_decrease() {
        let shares = zipf_shares(50, 0.9);
        let total: f64 = shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        for w in shares.windows(2) {
            assert!(w[0] > w[1]);
        }
        // The head line dominates.
        assert!(shares[0] > 5.0 * shares[49]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zipf_rejects_zero() {
        zipf_shares(0, 1.0);
    }

    #[test]
    fn rank_zero_is_big_batch_line() {
        assert_eq!(workload_for_rank(0), WorkloadKind::BatchProcessing);
        assert_eq!(
            fault_tolerance_for(WorkloadKind::BatchProcessing, 0),
            FaultTolerance::High
        );
    }

    #[test]
    fn workload_mix_has_all_kinds() {
        let kinds: std::collections::HashSet<_> = (0..40).map(workload_for_rank).collect();
        assert_eq!(kinds.len(), 4);
    }

    #[test]
    fn online_lines_have_low_tolerance() {
        let ft = fault_tolerance_for(WorkloadKind::OnlineService, 6);
        assert!(ft < FaultTolerance::High);
    }

    #[test]
    fn line_construction_wires_profile() {
        let meta = ProductLineMeta {
            id: ProductLineId::new(1),
            name: "pl-x".into(),
            workload: WorkloadKind::OnlineService,
            fault_tolerance: FaultTolerance::Low,
        };
        let line = ProductLine::new(meta, 0.1);
        assert_eq!(line.id(), ProductLineId::new(1));
        assert!(line.utilization.floor < 0.5); // online profile
    }
}
