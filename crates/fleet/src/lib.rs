//! # dcf-fleet
//!
//! Data center fleet substrate for the `dcfail` reproduction of the DSN'17
//! hardware-failure study.
//!
//! Builds the physical environment the paper's dataset comes from: dozens
//! of data centers (old under-floor-cooled ones with hot rack positions and
//! modern uniform ones, §IV), racks with partially occupied slot positions,
//! PDU power groups (§V-A Case 3), hundreds of Zipf-sized product lines
//! with distinct workload rhythms (§VI-C), five server generations deployed
//! incrementally over years, and per-workload hardware inventories.
//!
//! ```
//! use dcf_fleet::{FleetBuilder, FleetConfig};
//!
//! let fleet = FleetBuilder::new(FleetConfig::small()).seed(1).build().unwrap();
//! // DC 0 reproduces the paper's "data center A": two hot rack positions.
//! assert_eq!(fleet.data_centers()[0].hot_positions, vec![22, 35]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod config;
mod datacenter;
mod error;
mod fleet;
mod hardware;
mod product_line;
pub mod temperature;
pub mod workload;

pub use builder::FleetBuilder;
pub use config::FleetConfig;
pub use datacenter::{CoolingDesign, DataCenter};
pub use error::FleetError;
pub use fleet::Fleet;
pub use hardware::HardwareProfile;
pub use product_line::{fault_tolerance_for, workload_for_rank, zipf_shares, ProductLine};
pub use workload::{working_hours_weight, UtilizationProfile};
