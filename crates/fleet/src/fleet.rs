//! The assembled [`Fleet`]: servers, data centers and product lines, with
//! the indices the failure models and FMS need.

use dcf_trace::{
    DataCenterId, DataCenterMeta, ProductLineId, ProductLineMeta, RackId, ServerId, ServerMeta,
};

use crate::datacenter::DataCenter;
use crate::product_line::ProductLine;
use crate::FleetConfig;

/// A fully built fleet. Construct via [`crate::FleetBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Fleet {
    config: FleetConfig,
    data_centers: Vec<DataCenter>,
    product_lines: Vec<ProductLine>,
    servers: Vec<ServerMeta>,
    /// `racks[dc][rack]` → servers in that rack.
    racks: Vec<Vec<Vec<ServerId>>>,
    /// `by_line[line]` → servers of that product line.
    by_line: Vec<Vec<ServerId>>,
}

impl Fleet {
    /// Assembles a fleet from parts (used by the builder).
    pub(crate) fn from_parts(
        config: FleetConfig,
        data_centers: Vec<DataCenter>,
        product_lines: Vec<ProductLine>,
        servers: Vec<ServerMeta>,
        racks: Vec<Vec<Vec<ServerId>>>,
    ) -> Self {
        let mut by_line = vec![Vec::new(); product_lines.len()];
        for s in &servers {
            by_line[s.product_line.index()].push(s.id);
        }
        Self {
            config,
            data_centers,
            product_lines,
            servers,
            racks,
            by_line,
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// All servers, indexed by [`ServerId`].
    pub fn servers(&self) -> &[ServerMeta] {
        &self.servers
    }

    /// One server.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn server(&self, id: ServerId) -> &ServerMeta {
        &self.servers[id.index()]
    }

    /// All data centers.
    pub fn data_centers(&self) -> &[DataCenter] {
        &self.data_centers
    }

    /// One data center.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn data_center(&self, id: DataCenterId) -> &DataCenter {
        &self.data_centers[id.index()]
    }

    /// All product lines.
    pub fn product_lines(&self) -> &[ProductLine] {
        &self.product_lines
    }

    /// One product line.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn product_line(&self, id: ProductLineId) -> &ProductLine {
        &self.product_lines[id.index()]
    }

    /// Servers of one product line.
    pub fn servers_of_line(&self, id: ProductLineId) -> &[ServerId] {
        &self.by_line[id.index()]
    }

    /// Rack index: `racks()[dc][rack]` → servers in that rack.
    pub fn racks(&self) -> &[Vec<Vec<ServerId>>] {
        &self.racks
    }

    /// Servers in one rack.
    ///
    /// # Panics
    ///
    /// Panics on foreign ids.
    pub fn servers_of_rack(&self, dc: DataCenterId, rack: RackId) -> &[ServerId] {
        &self.racks[dc.index()][rack.index()]
    }

    /// Servers on one PDU (all racks in the PDU group), the §V-A Case 3
    /// blast radius.
    pub fn servers_of_pdu(&self, dc: DataCenterId, pdu: u32) -> Vec<ServerId> {
        let dcenter = self.data_center(dc);
        dcenter
            .racks_of_pdu(pdu)
            .flat_map(|rack| self.servers_of_rack(dc, rack).iter().copied())
            .collect()
    }

    /// The spatial failure multiplier for a server (its DC's cooling profile
    /// at its rack position).
    pub fn spatial_multiplier(&self, id: ServerId) -> f64 {
        let s = self.server(id);
        self.data_center(s.data_center)
            .position_multiplier(s.position.raw())
    }

    /// Snapshot of the metadata bundled into a [`dcf_trace::Trace`].
    pub fn snapshot(&self) -> (Vec<ServerMeta>, Vec<DataCenterMeta>, Vec<ProductLineMeta>) {
        (
            self.servers.clone(),
            self.data_centers.iter().map(|d| d.meta.clone()).collect(),
            self.product_lines.iter().map(|p| p.meta.clone()).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FleetBuilder, FleetConfig};

    fn small_fleet() -> Fleet {
        FleetBuilder::new(FleetConfig::small())
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn indices_are_consistent() {
        let fleet = small_fleet();
        // Every server reachable through its rack.
        for (dc_idx, dc_racks) in fleet.racks().iter().enumerate() {
            for (rack_idx, rack) in dc_racks.iter().enumerate() {
                for &sid in rack {
                    let s = fleet.server(sid);
                    assert_eq!(s.data_center.index(), dc_idx);
                    assert_eq!(s.rack.index(), rack_idx);
                }
            }
        }
        // by_line partition covers every server exactly once.
        let total: usize = fleet
            .product_lines()
            .iter()
            .map(|l| fleet.servers_of_line(l.id()).len())
            .sum();
        assert_eq!(total, fleet.servers().len());
    }

    #[test]
    fn pdu_groups_cover_multiple_racks() {
        let fleet = small_fleet();
        let dc = fleet.data_centers()[0].id();
        let on_pdu = fleet.servers_of_pdu(dc, 0);
        let per_rack = fleet.servers_of_rack(dc, dcf_trace::RackId::new(0)).len();
        assert!(on_pdu.len() > per_rack, "PDU spans several racks");
    }

    #[test]
    fn spatial_multiplier_reflects_hot_positions() {
        let fleet = small_fleet();
        let dc0 = &fleet.data_centers()[0];
        let hot = dc0.hot_positions.clone();
        let hot_server = fleet
            .servers()
            .iter()
            .find(|s| s.data_center.index() == 0 && hot.contains(&s.position.raw()));
        if let Some(s) = hot_server {
            assert!(fleet.spatial_multiplier(s.id) > 1.2);
        }
        // Modern DCs are flat everywhere.
        let modern = fleet
            .data_centers()
            .iter()
            .find(|d| d.meta.modern_cooling)
            .unwrap();
        for s in fleet
            .servers()
            .iter()
            .filter(|s| s.data_center == modern.id())
        {
            assert_eq!(fleet.spatial_multiplier(s.id), 1.0);
        }
    }

    #[test]
    fn snapshot_matches_fleet() {
        let fleet = small_fleet();
        let (servers, dcs, lines) = fleet.snapshot();
        assert_eq!(servers.len(), fleet.servers().len());
        assert_eq!(dcs.len(), fleet.data_centers().len());
        assert_eq!(lines.len(), fleet.product_lines().len());
    }
}
