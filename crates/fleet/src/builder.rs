//! Deterministic fleet construction from a [`FleetConfig`] and a seed.

use dcf_obs::MetricsRegistry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dcf_trace::{
    DataCenterId, DataCenterMeta, ProductLineId, ProductLineMeta, RackId, RackPosition, ServerId,
    ServerMeta, SimDuration, SimTime,
};

use crate::datacenter::{CoolingDesign, DataCenter};
use crate::error::FleetError;
use crate::fleet::Fleet;
use crate::hardware::HardwareProfile;
use crate::product_line::{fault_tolerance_for, workload_for_rank, zipf_shares, ProductLine};
use crate::FleetConfig;

/// Builds fleets deterministically: the same `(config, seed)` always yields
/// the same fleet, independent of everything else.
///
/// # Examples
///
/// ```
/// use dcf_fleet::{FleetBuilder, FleetConfig};
///
/// let fleet = FleetBuilder::new(FleetConfig::small()).seed(7).build().unwrap();
/// assert_eq!(fleet.servers().len(), 2_000);
/// let again = FleetBuilder::new(FleetConfig::small()).seed(7).build().unwrap();
/// assert_eq!(fleet.servers(), again.servers());
/// ```
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    config: FleetConfig,
    seed: u64,
    metrics: MetricsRegistry,
}

impl FleetBuilder {
    /// Starts a builder with the given configuration.
    pub fn new(config: FleetConfig) -> Self {
        Self {
            config,
            seed: 0,
            metrics: MetricsRegistry::disabled(),
        }
    }

    /// Sets the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches a metrics registry: `build` records a `fleet.build` phase
    /// span (with a nested `fleet.place_servers` span) and `fleet.*`
    /// counters. Metrics never consume RNG draws, so the built fleet is
    /// identical with or without them.
    pub fn metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Builds the fleet.
    ///
    /// # Errors
    ///
    /// Returns the [`FleetError`] for the first violated configuration
    /// constraint.
    pub fn build(self) -> Result<Fleet, FleetError> {
        self.config.validate()?;
        let metrics = self.metrics;
        let build_span = metrics.phase("fleet.build");
        let cfg = self.config;
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5eed_f1ee_7000_0001);

        let data_centers = build_data_centers(&cfg, &mut rng);
        let product_lines = build_product_lines(&cfg);
        let line_dcs = assign_lines_to_dcs(&cfg, &product_lines, &mut rng);
        let place_span = metrics.phase("fleet.place_servers");
        let (servers, racks) =
            place_servers(&cfg, &data_centers, &product_lines, &line_dcs, &mut rng);
        drop(place_span);

        // Patch actual rack counts into the DataCenter records.
        let mut data_centers = data_centers;
        for (dc, dc_racks) in data_centers.iter_mut().zip(&racks) {
            dc.racks = dc_racks.len() as u32;
        }

        metrics.add("fleet.data_centers.built", data_centers.len() as u64);
        metrics.add("fleet.product_lines.built", product_lines.len() as u64);
        metrics.add("fleet.servers.built", servers.len() as u64);
        metrics.add(
            "fleet.racks.built",
            racks.iter().map(|dc| dc.len() as u64).sum(),
        );
        drop(build_span);

        Ok(Fleet::from_parts(
            cfg,
            data_centers,
            product_lines,
            servers,
            racks,
        ))
    }
}

/// Builds the data-center roster.
///
/// Indices 0 and 1 are pinned to the paper's §IV examples:
/// * **DC 0 ("data center A")** — old build, nearly flat gradient but two
///   hot positions (22: next to the rack power module, 35: near the rack
///   top) mildly elevated — uniformity is *not* rejected but μ±2σ anomaly
///   detection flags both positions.
/// * **DC 1 ("data center B")** — old build with a strong thermal gradient;
///   uniformity is rejected at 0.01.
///
/// The remaining old DCs draw gradients from a wide range and modern DCs
/// are flat, which reproduces Table IV's rejected/borderline/accepted split.
fn build_data_centers(cfg: &FleetConfig, rng: &mut StdRng) -> Vec<DataCenter> {
    let n = cfg.data_centers;
    let modern_target = (cfg.modern_cooling_fraction * n as f64).round() as usize;
    // Pinned example DCs (0 and 1) are old builds, so cap the modern count
    // at n − 2 — unless the config asks for a fully modern fleet (the
    // `modern-cooling` ablation), which overrides the pins.
    let modern_count = if cfg.modern_cooling_fraction >= 1.0 {
        n
    } else {
        modern_target.min(n.saturating_sub(2))
    };

    (0..n)
        .map(|i| {
            // The last `modern_count` indices are the modern builds.
            let modern = i >= n - modern_count;
            let built_year = if modern {
                2015 + (i % 2) as u16
            } else {
                2011 + (i % 4) as u16
            };
            let meta = DataCenterMeta {
                id: DataCenterId::new(i as u16),
                name: format!("DC-{i:02}"),
                built_year,
                modern_cooling: modern,
                rack_positions: cfg.rack_positions,
            };
            let top = cfg.rack_positions.saturating_sub(5);
            let (cooling, hot, boost) = if modern {
                (CoolingDesign::Modern, vec![], 1.0)
            } else if i == 0 {
                // "Data center A": flat but with two anomalous positions.
                (
                    CoolingDesign::UnderFloor { gradient: 0.02 },
                    vec![22.min(top), top],
                    // Mild enough that the DC-wide chi-squared cannot reject,
                    // strong enough that mu±2sigma still flags both slots.
                    1.33,
                )
            } else if i == 1 {
                // "Data center B": strong thermal gradient.
                (CoolingDesign::UnderFloor { gradient: 0.85 }, vec![], 1.0)
            } else {
                // Old builds come in three severities: clearly bad cooling
                // (rejected at 0.01), mildly uneven (the Table IV borderline
                // band), and nearly flat (accepted).
                let (gradient, with_hot) = match i % 3 {
                    0 => (rng.random_range(0.50..1.00), rng.random_bool(0.7)),
                    1 => (rng.random_range(0.45..0.60), false),
                    _ => (rng.random_range(0.10..0.18), false),
                };
                let hot = if with_hot { vec![22.min(top)] } else { vec![] };
                let boost = rng.random_range(1.25..1.7);
                (CoolingDesign::UnderFloor { gradient }, hot, boost)
            };
            // Rack count is patched after placement; start with 0.
            DataCenter::new(meta, cooling, hot, boost, 0, cfg.racks_per_pdu)
        })
        .collect()
}

fn build_product_lines(cfg: &FleetConfig) -> Vec<ProductLine> {
    let shares = zipf_shares(cfg.product_lines, 0.95);
    shares
        .iter()
        .enumerate()
        .map(|(rank, &share)| {
            let workload = workload_for_rank(rank);
            let meta = ProductLineMeta {
                id: ProductLineId::new(rank as u16),
                name: format!("pl-{:?}-{rank:03}", workload).to_lowercase(),
                workload,
                fault_tolerance: fault_tolerance_for(workload, rank),
            };
            ProductLine::new(meta, share)
        })
        .collect()
}

/// Which data centers each product line may occupy. Line 0 (the big batch
/// line of the §V-A case study) is pinned to DC 0 alone.
fn assign_lines_to_dcs(
    cfg: &FleetConfig,
    lines: &[ProductLine],
    rng: &mut StdRng,
) -> Vec<Vec<usize>> {
    lines
        .iter()
        .enumerate()
        .map(|(rank, _)| {
            if rank == 0 {
                vec![0]
            } else {
                let spread = rng.random_range(1..=3usize.min(cfg.data_centers));
                let mut dcs: Vec<usize> = Vec::with_capacity(spread);
                while dcs.len() < spread {
                    let dc = rng.random_range(0..cfg.data_centers);
                    if !dcs.contains(&dc) {
                        dcs.push(dc);
                    }
                }
                dcs.sort_unstable();
                dcs
            }
        })
        .collect()
}

/// Occupied slot positions for a rack: always leaves `skip` slots empty at
/// the extremes, alternating the exact band with rack parity so per-position
/// populations differ (the paper normalizes failure rates by them).
fn occupied_positions(cfg: &FleetConfig, rack_parity: u64) -> Vec<u8> {
    let n = cfg.rack_positions;
    let skip = (n - cfg.servers_per_rack) as usize;
    let low = skip / 2;
    let high = skip - low;
    let offset = (rack_parity % 2) as u8;
    (0..n)
        .filter(|&p| {
            let lo_band = p >= offset && p < offset + low as u8;
            let hi_band = p + offset + high as u8 >= n && p + offset < n;
            !(lo_band || hi_band)
        })
        .take(cfg.servers_per_rack as usize)
        .collect()
}

type RackIndex = Vec<Vec<Vec<ServerId>>>;

fn place_servers(
    cfg: &FleetConfig,
    dcs: &[DataCenter],
    lines: &[ProductLine],
    line_dcs: &[Vec<usize>],
    rng: &mut StdRng,
) -> (Vec<ServerMeta>, RackIndex) {
    // Per-DC server budgets, Zipf-skewed with DC 0 the largest.
    let dc_shares = zipf_shares(cfg.data_centers, 0.4);
    let mut budgets: Vec<usize> = dc_shares
        .iter()
        .map(|s| (s * cfg.servers as f64).floor() as usize)
        .collect();
    let mut assigned: usize = budgets.iter().sum();
    let n_budgets = budgets.len();
    let mut i = 0;
    while assigned < cfg.servers {
        budgets[i % n_budgets] += 1;
        assigned += 1;
        i += 1;
    }

    // Per-DC weighted line choices.
    let mut dc_lines: Vec<Vec<(usize, f64)>> = vec![Vec::new(); cfg.data_centers];
    for (rank, dcs_of_line) in line_dcs.iter().enumerate() {
        for &dc in dcs_of_line {
            dc_lines[dc].push((rank, lines[rank].target_share / dcs_of_line.len() as f64));
        }
    }
    for per_dc in &mut dc_lines {
        if per_dc.is_empty() {
            per_dc.push((lines.len() - 1, 1.0)); // fallback: smallest line
        }
    }

    let deploy_span_days = cfg.pre_window_days + cfg.deploy_until_day;
    let mut servers = Vec::with_capacity(cfg.servers);
    let mut racks: RackIndex = vec![Vec::new(); cfg.data_centers];

    for (dc_idx, &budget) in budgets.iter().enumerate() {
        let dc = &dcs[dc_idx];
        let choices = &dc_lines[dc_idx];
        let weight_total: f64 = choices.iter().map(|(_, w)| w).sum();
        let mut remaining = budget;
        let mut rack_no: u32 = 0;
        while remaining > 0 {
            // Pick the rack's product line by weighted draw.
            let mut pick = rng.random::<f64>() * weight_total;
            let mut line_rank = choices[0].0;
            for &(rank, w) in choices {
                if pick < w {
                    line_rank = rank;
                    break;
                }
                pick -= w;
            }
            let line = &lines[line_rank];

            // Rack-level deployment date: growth-weighted (fleet expands),
            // so u^0.7 skews toward later days.
            let u: f64 = rng.random();
            let deploy_day = (u.powf(0.7) * deploy_span_days as f64) as u64;
            let deploy_time = SimTime::from_days(deploy_day);
            let generation = ((deploy_day * cfg.generations as u64) / (deploy_span_days + 1))
                .min(cfg.generations as u64 - 1) as u8;
            let hw = HardwareProfile::for_workload(line.meta.workload, generation);

            let positions = occupied_positions(cfg, rack_no as u64);
            let mut rack_servers = Vec::with_capacity(positions.len());
            for &pos in &positions {
                if remaining == 0 {
                    break;
                }
                let id = ServerId::new(servers.len() as u32);
                rack_servers.push(id);
                servers.push(ServerMeta {
                    id,
                    hostname: hostname(dc_idx, rack_no, pos, id.raw()),
                    data_center: dc.id(),
                    product_line: line.id(),
                    rack: RackId::new(rack_no),
                    position: RackPosition::new(pos),
                    generation,
                    deploy_time,
                    warranty: SimDuration::from_days(cfg.warranty_days),
                    hdd_count: hw.hdd_count,
                    ssd_count: hw.ssd_count,
                    cpu_count: hw.cpu_count,
                    dimm_count: hw.dimm_count,
                    fan_count: hw.fan_count,
                    psu_count: hw.psu_count,
                    has_raid_card: hw.has_raid_card,
                    has_flash_card: hw.has_flash_card,
                });
                remaining -= 1;
            }
            racks[dc_idx].push(rack_servers);
            rack_no += 1;
        }
    }

    (servers, racks)
}

/// Zero-padded decimal append, byte-identical to `{v:0width$}` formatting
/// (values wider than `width` print all their digits).
fn push_padded(buf: &mut Vec<u8>, mut v: u64, width: usize) {
    let mut tmp = [b'0'; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    i = i.min(tmp.len() - width);
    buf.extend_from_slice(&tmp[i..]);
}

/// Builds `dcNN-rNNNN-uNN-sNNNNNN` without going through `format!` — one
/// hostname per server made this the bulk of `fleet.place_servers` at
/// paper scale.
fn hostname(dc_idx: usize, rack_no: u32, pos: u8, id: u32) -> String {
    let mut buf = Vec::with_capacity(22);
    buf.extend_from_slice(b"dc");
    push_padded(&mut buf, dc_idx as u64, 2);
    buf.extend_from_slice(b"-r");
    push_padded(&mut buf, u64::from(rack_no), 4);
    buf.extend_from_slice(b"-u");
    push_padded(&mut buf, u64::from(pos), 2);
    buf.extend_from_slice(b"-s");
    push_padded(&mut buf, u64::from(id), 6);
    String::from_utf8(buf).expect("hostnames are ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupied_positions_vary_with_parity() {
        let cfg = FleetConfig::small(); // 40 positions, 36 per rack
        let even = occupied_positions(&cfg, 0);
        let odd = occupied_positions(&cfg, 1);
        assert_eq!(even.len(), 36);
        assert_eq!(odd.len(), 36);
        assert_ne!(even, odd);
        // Middle positions are always occupied.
        assert!(even.contains(&20) && odd.contains(&20));
    }

    #[test]
    fn hostnames_match_format_machinery() {
        for (dc_idx, rack_no, pos, id) in [
            (0usize, 0u32, 0u8, 0u32),
            (7, 4321, 35, 159_999),
            (123, 99_999, 255, 4_000_000_000),
        ] {
            assert_eq!(
                hostname(dc_idx, rack_no, pos, id),
                format!("dc{dc_idx:02}-r{rack_no:04}-u{pos:02}-s{id:06}"),
            );
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = FleetBuilder::new(FleetConfig::small())
            .seed(3)
            .build()
            .unwrap();
        let b = FleetBuilder::new(FleetConfig::small())
            .seed(3)
            .build()
            .unwrap();
        assert_eq!(a.servers(), b.servers());
        let c = FleetBuilder::new(FleetConfig::small())
            .seed(4)
            .build()
            .unwrap();
        assert_ne!(a.servers(), c.servers());
    }

    #[test]
    fn build_respects_budget_and_ids_are_dense() {
        let fleet = FleetBuilder::new(FleetConfig::small())
            .seed(1)
            .build()
            .unwrap();
        assert_eq!(fleet.servers().len(), 2_000);
        for (i, s) in fleet.servers().iter().enumerate() {
            assert_eq!(s.id.index(), i);
        }
    }

    #[test]
    fn dc_zero_is_old_with_two_hot_positions() {
        let fleet = FleetBuilder::new(FleetConfig::small())
            .seed(1)
            .build()
            .unwrap();
        let dc0 = &fleet.data_centers()[0];
        assert!(!dc0.meta.modern_cooling);
        assert_eq!(dc0.hot_positions.len(), 2);
        assert!(dc0.hot_positions.contains(&22));
        // DC 1 has the strong gradient.
        let dc1 = &fleet.data_centers()[1];
        let mults = dc1.position_multipliers();
        assert!(mults.last().unwrap() > &1.3);
    }

    #[test]
    fn modern_fraction_is_respected() {
        let fleet = FleetBuilder::new(FleetConfig::paper())
            .seed(1)
            .build()
            .unwrap();
        let modern = fleet
            .data_centers()
            .iter()
            .filter(|d| d.meta.modern_cooling)
            .count();
        assert_eq!(modern, 10);
        for dc in fleet
            .data_centers()
            .iter()
            .filter(|d| d.meta.modern_cooling)
        {
            assert!(dc.meta.built_after_2014());
        }
    }

    #[test]
    fn line_zero_lives_only_in_dc_zero() {
        let fleet = FleetBuilder::new(FleetConfig::small())
            .seed(2)
            .build()
            .unwrap();
        for s in fleet.servers() {
            if s.product_line == ProductLineId::new(0) {
                assert_eq!(s.data_center, DataCenterId::new(0));
            }
        }
        // And it is the biggest line.
        let line0 = fleet
            .servers()
            .iter()
            .filter(|s| s.product_line == ProductLineId::new(0))
            .count();
        assert!(line0 * 4 > fleet.servers().len() / fleet.product_lines().len());
    }

    #[test]
    fn deployment_spans_pre_window_and_window() {
        let cfg = FleetConfig::small();
        let fleet = FleetBuilder::new(cfg.clone()).seed(5).build().unwrap();
        let window_start = cfg.pre_window_days;
        let before = fleet
            .servers()
            .iter()
            .filter(|s| s.deploy_time.day_index() < window_start)
            .count();
        let after = fleet.servers().len() - before;
        assert!(before > 0, "some servers predate the window");
        assert!(after > 0, "deployment continues into the window");
    }

    #[test]
    fn racks_are_homogeneous_in_line_and_deploy_time() {
        let fleet = FleetBuilder::new(FleetConfig::small())
            .seed(6)
            .build()
            .unwrap();
        for (dc_idx, dc_racks) in fleet.racks().iter().enumerate() {
            for rack in dc_racks.iter().take(10) {
                let first = fleet.server(rack[0]);
                for &sid in rack {
                    let s = fleet.server(sid);
                    assert_eq!(s.product_line, first.product_line);
                    assert_eq!(s.deploy_time, first.deploy_time);
                    assert_eq!(s.data_center.raw() as usize, dc_idx);
                }
            }
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = FleetConfig::small();
        cfg.window_days = 0;
        assert!(matches!(
            FleetBuilder::new(cfg).build(),
            Err(FleetError::EmptyWindow)
        ));
    }
}
