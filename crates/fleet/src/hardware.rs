//! Server hardware profiles.
//!
//! The paper's fleet mixes storage-heavy batch machines (many HDDs, RAID
//! cards, some flash cards) with SSD-equipped online-service machines
//! ("only crucial and user-facing online service product lines afford
//! SSDs", §VI-B). Profiles determine per-server component inventories.

use serde::{Deserialize, Serialize};

use dcf_trace::WorkloadKind;

/// A server hardware profile: the component inventory stamped onto servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Spinning disks.
    pub hdd_count: u8,
    /// SSDs.
    pub ssd_count: u8,
    /// CPU sockets.
    pub cpu_count: u8,
    /// DIMMs.
    pub dimm_count: u8,
    /// Chassis fans.
    pub fan_count: u8,
    /// Power supplies.
    pub psu_count: u8,
    /// RAID controller present.
    pub has_raid_card: bool,
    /// PCIe flash card present.
    pub has_flash_card: bool,
}

impl HardwareProfile {
    /// Dense-storage batch machine: 12 HDDs behind a RAID card.
    pub fn storage_batch() -> Self {
        Self {
            hdd_count: 12,
            ssd_count: 0,
            cpu_count: 2,
            dimm_count: 8,
            fan_count: 4,
            psu_count: 2,
            has_raid_card: true,
            has_flash_card: false,
        }
    }

    /// Batch compute machine with a flash-card accelerator.
    pub fn compute_flash() -> Self {
        Self {
            hdd_count: 4,
            ssd_count: 0,
            cpu_count: 2,
            dimm_count: 12,
            fan_count: 4,
            psu_count: 2,
            has_raid_card: true,
            has_flash_card: true,
        }
    }

    /// Online-service machine: SSDs, more memory, no RAID card.
    pub fn online_ssd() -> Self {
        Self {
            hdd_count: 2,
            ssd_count: 4,
            cpu_count: 2,
            dimm_count: 16,
            fan_count: 5,
            psu_count: 2,
            has_raid_card: false,
            has_flash_card: false,
        }
    }

    /// Storage-service machine: many disks plus a couple of SSDs for journals.
    pub fn storage_service() -> Self {
        Self {
            hdd_count: 12,
            ssd_count: 2,
            cpu_count: 2,
            dimm_count: 8,
            fan_count: 4,
            psu_count: 2,
            has_raid_card: true,
            has_flash_card: false,
        }
    }

    /// The typical profile for a workload kind. `variant` (0-based, e.g. the
    /// hardware generation) nudges counts so generations differ slightly.
    pub fn for_workload(workload: WorkloadKind, variant: u8) -> Self {
        let mut p = match workload {
            WorkloadKind::BatchProcessing => {
                if variant % 3 == 2 {
                    Self::compute_flash()
                } else {
                    Self::storage_batch()
                }
            }
            WorkloadKind::OnlineService => Self::online_ssd(),
            WorkloadKind::Storage => Self::storage_service(),
            WorkloadKind::Mixed => {
                if variant.is_multiple_of(2) {
                    Self::storage_batch()
                } else {
                    Self::online_ssd()
                }
            }
        };
        // Newer generations pack slightly more memory.
        p.dimm_count = p.dimm_count.saturating_add(2 * (variant % 3));
        p
    }

    /// Total number of individually failing modules on the server
    /// (used for sanity checks and capacity estimates).
    pub fn module_count(&self) -> u32 {
        self.hdd_count as u32
            + self.ssd_count as u32
            + self.cpu_count as u32
            + self.dimm_count as u32
            + self.fan_count as u32
            + self.psu_count as u32
            + self.has_raid_card as u32
            + self.has_flash_card as u32
            + 2 // motherboard + backboard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_machines_have_ssds_and_no_raid() {
        let p = HardwareProfile::online_ssd();
        assert!(p.ssd_count > 0);
        assert!(!p.has_raid_card);
    }

    #[test]
    fn batch_machines_are_hdd_heavy() {
        let p = HardwareProfile::storage_batch();
        assert_eq!(p.hdd_count, 12);
        assert!(p.has_raid_card);
        assert_eq!(p.ssd_count, 0);
    }

    #[test]
    fn workload_mapping_is_deterministic() {
        let a = HardwareProfile::for_workload(WorkloadKind::BatchProcessing, 1);
        let b = HardwareProfile::for_workload(WorkloadKind::BatchProcessing, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn generations_vary_memory() {
        let g0 = HardwareProfile::for_workload(WorkloadKind::OnlineService, 0);
        let g1 = HardwareProfile::for_workload(WorkloadKind::OnlineService, 1);
        assert!(g1.dimm_count > g0.dimm_count);
    }

    #[test]
    fn module_count_adds_up() {
        let p = HardwareProfile::storage_batch();
        assert_eq!(p.module_count(), 12 + 2 + 8 + 4 + 2 + 1 + 2);
    }

    #[test]
    fn some_batch_variant_has_flash() {
        let p = HardwareProfile::for_workload(WorkloadKind::BatchProcessing, 2);
        assert!(p.has_flash_card);
    }
}
