//! Fleet generation configuration and scale presets.

use serde::{Deserialize, Serialize};

use crate::FleetError;

/// Configuration for building a fleet.
///
/// The defaults mirror the paper's environment: dozens of data centers,
/// hundreds of thousands of servers, hundreds of product lines, five server
/// generations deployed incrementally, with part of the fleet predating the
/// observation window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of data centers (the paper studies 24 in §IV).
    pub data_centers: usize,
    /// Total server count across all data centers.
    pub servers: usize,
    /// Number of product lines ("hundreds" in the paper).
    pub product_lines: usize,
    /// Rack slot positions per rack.
    pub rack_positions: u8,
    /// Servers installed per rack (≤ `rack_positions`; the paper notes
    /// operators often leave top/bottom slots empty).
    pub servers_per_rack: u8,
    /// Days of fleet deployment *before* the observation window opens,
    /// so the window sees servers up to this old on day one.
    pub pre_window_days: u64,
    /// Length of the observation window in days.
    pub window_days: u64,
    /// Deployment keeps adding servers until this day of the window
    /// (incremental roll-out, §V-A: "incrementally deployed during the
    /// past three to four years").
    pub deploy_until_day: u64,
    /// Warranty length in days (out-of-warranty failures become `D_error`).
    pub warranty_days: u64,
    /// Number of hardware generations.
    pub generations: u8,
    /// Fraction of data centers built after 2014 with modern, spatially
    /// uniform cooling (~10/24 in Table IV's "cannot reject" bucket).
    pub modern_cooling_fraction: f64,
    /// Racks sharing one power distribution unit (PDU) — the batch-failure
    /// blast radius for power events (§V-A Case 3).
    pub racks_per_pdu: u8,
}

impl FleetConfig {
    /// Full paper-scale fleet: 24 DCs, 160k servers, 280 product lines,
    /// 1,411-day window with two years of pre-window deployment.
    pub fn paper() -> Self {
        Self {
            data_centers: 24,
            servers: 160_000,
            product_lines: 280,
            rack_positions: 40,
            servers_per_rack: 36,
            pre_window_days: 730,
            window_days: dcf_trace::TRACE_DAYS,
            deploy_until_day: 1_300,
            warranty_days: 985,
            generations: 5,
            modern_cooling_fraction: 10.0 / 24.0,
            racks_per_pdu: 8,
        }
    }

    /// Small fleet for fast tests: 4 DCs, 2,000 servers, a 360-day window.
    pub fn small() -> Self {
        Self {
            data_centers: 4,
            servers: 2_000,
            product_lines: 24,
            rack_positions: 40,
            servers_per_rack: 36,
            pre_window_days: 360,
            window_days: 360,
            deploy_until_day: 300,
            warranty_days: 430,
            generations: 3,
            modern_cooling_fraction: 0.5,
            racks_per_pdu: 4,
        }
    }

    /// Medium fleet (~20k servers) for benches that need realistic shape
    /// without paper-scale runtime.
    pub fn medium() -> Self {
        Self {
            data_centers: 12,
            servers: 20_000,
            product_lines: 80,
            ..Self::paper()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the [`FleetError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.data_centers == 0 {
            return Err(FleetError::NoDataCenters);
        }
        if self.servers < self.data_centers {
            return Err(FleetError::TooFewServers {
                servers: self.servers,
                data_centers: self.data_centers,
            });
        }
        if self.product_lines == 0 {
            return Err(FleetError::NoProductLines);
        }
        if self.servers_per_rack == 0 || self.servers_per_rack > self.rack_positions {
            return Err(FleetError::InvalidRackFill {
                servers_per_rack: self.servers_per_rack,
                rack_positions: self.rack_positions,
            });
        }
        if self.window_days == 0 {
            return Err(FleetError::EmptyWindow);
        }
        if !(0.0..=1.0).contains(&self.modern_cooling_fraction) {
            return Err(FleetError::InvalidModernCoolingFraction(
                self.modern_cooling_fraction,
            ));
        }
        if self.generations == 0 {
            return Err(FleetError::NoGenerations);
        }
        if self.racks_per_pdu == 0 {
            return Err(FleetError::NoRacksPerPdu);
        }
        Ok(())
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        FleetConfig::paper().validate().unwrap();
        FleetConfig::small().validate().unwrap();
        FleetConfig::medium().validate().unwrap();
    }

    #[test]
    fn paper_scale_matches_study() {
        let c = FleetConfig::paper();
        assert_eq!(c.data_centers, 24);
        assert_eq!(c.window_days, 1_411);
        assert!(c.servers >= 100_000);
    }

    #[test]
    fn validation_catches_nonsense() {
        let mut c = FleetConfig::small();
        c.servers_per_rack = 0;
        assert!(matches!(
            c.validate(),
            Err(FleetError::InvalidRackFill {
                servers_per_rack: 0,
                ..
            })
        ));
        let mut c = FleetConfig::small();
        c.servers_per_rack = c.rack_positions + 1;
        assert!(matches!(
            c.validate(),
            Err(FleetError::InvalidRackFill { .. })
        ));
        let mut c = FleetConfig::small();
        c.modern_cooling_fraction = 1.5;
        assert!(matches!(
            c.validate(),
            Err(FleetError::InvalidModernCoolingFraction(_))
        ));
        let mut c = FleetConfig::small();
        c.data_centers = 0;
        assert!(matches!(c.validate(), Err(FleetError::NoDataCenters)));
    }
}
