//! Error type for fleet configuration and construction.

/// Errors from validating a [`crate::FleetConfig`] or building a
/// [`crate::Fleet`].
///
/// Each variant names the violated constraint and carries the offending
/// values, so callers can match on the failure instead of parsing a string
/// (the pre-redesign API returned `Result<_, String>`).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// `data_centers` was zero.
    NoDataCenters,
    /// Fewer servers than data centers — at least one server per DC.
    TooFewServers {
        /// Configured total server count.
        servers: usize,
        /// Configured data-center count.
        data_centers: usize,
    },
    /// `product_lines` was zero.
    NoProductLines,
    /// `servers_per_rack` outside `1..=rack_positions`.
    InvalidRackFill {
        /// Configured servers per rack.
        servers_per_rack: u8,
        /// Configured rack slot positions.
        rack_positions: u8,
    },
    /// `window_days` was zero.
    EmptyWindow,
    /// `modern_cooling_fraction` outside `[0, 1]`.
    InvalidModernCoolingFraction(f64),
    /// `generations` was zero.
    NoGenerations,
    /// `racks_per_pdu` was zero.
    NoRacksPerPdu,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoDataCenters => write!(f, "data_centers must be positive"),
            FleetError::TooFewServers {
                servers,
                data_centers,
            } => write!(
                f,
                "need at least one server per data center ({servers} servers, {data_centers} DCs)"
            ),
            FleetError::NoProductLines => write!(f, "product_lines must be positive"),
            FleetError::InvalidRackFill {
                servers_per_rack,
                rack_positions,
            } => write!(
                f,
                "servers_per_rack ({servers_per_rack}) must be in 1..={rack_positions}"
            ),
            FleetError::EmptyWindow => write!(f, "window_days must be positive"),
            FleetError::InvalidModernCoolingFraction(v) => {
                write!(f, "modern_cooling_fraction must be in [0, 1], got {v}")
            }
            FleetError::NoGenerations => write!(f, "generations must be positive"),
            FleetError::NoRacksPerPdu => write!(f, "racks_per_pdu must be positive"),
        }
    }
}

impl std::error::Error for FleetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_constraint() {
        let e = FleetError::TooFewServers {
            servers: 3,
            data_centers: 8,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('8'), "{s}");
        assert!(FleetError::EmptyWindow.to_string().contains("window_days"));
    }

    #[test]
    fn variants_are_matchable() {
        let e = FleetError::InvalidModernCoolingFraction(1.5);
        assert!(matches!(e, FleetError::InvalidModernCoolingFraction(v) if v > 1.0));
    }
}
