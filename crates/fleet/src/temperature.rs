//! Position temperature estimates.
//!
//! §IV: "Our motherboard temperature readings at these places are indeed
//! several degrees higher than the average motherboard temperature in each
//! rack. This higher temperature might result in higher failure rate…"
//!
//! The fleet's spatial failure multipliers abstract that thermal effect;
//! this module maps multipliers back to estimated inlet temperatures using
//! the common rule of thumb that component failure rates roughly double
//! per 10–15 °C (an Arrhenius-style sensitivity), so operators can read
//! the profile in °C rather than in multipliers.

use crate::datacenter::DataCenter;

/// Baseline cold-aisle inlet temperature, °C (typical ASHRAE-ish setpoint).
pub const BASELINE_INLET_C: f64 = 24.0;

/// Degrees of extra temperature per doubling of the failure rate —
/// the Arrhenius-style sensitivity used for the inverse mapping.
pub const DEGREES_PER_DOUBLING: f64 = 12.0;

/// Estimated inlet temperature at a rack position, from the data center's
/// failure multiplier profile: `T = T0 + k · log2(multiplier)`.
///
/// # Examples
///
/// ```
/// use dcf_fleet::{temperature, CoolingDesign, DataCenter};
/// use dcf_trace::{DataCenterId, DataCenterMeta};
///
/// let meta = DataCenterMeta {
///     id: DataCenterId::new(0),
///     name: "DC-00".into(),
///     built_year: 2012,
///     modern_cooling: false,
///     rack_positions: 40,
/// };
/// let dc = DataCenter::new(meta, CoolingDesign::UnderFloor { gradient: 0.0 },
///                          vec![22], 2.0, 10, 4);
/// // A 2x failure multiplier reads as one doubling: +12 °C.
/// let t = temperature::estimated_inlet_c(&dc, 22);
/// assert!((t - 36.0).abs() < 1e-9);
/// assert!((temperature::estimated_inlet_c(&dc, 10) - 24.0).abs() < 1e-9);
/// ```
pub fn estimated_inlet_c(dc: &DataCenter, position: u8) -> f64 {
    let mult = dc.position_multiplier(position);
    BASELINE_INLET_C + DEGREES_PER_DOUBLING * mult.max(1e-6).log2()
}

/// The full temperature profile of a data center, bottom slot first.
pub fn profile_c(dc: &DataCenter) -> Vec<f64> {
    (0..dc.meta.rack_positions)
        .map(|p| estimated_inlet_c(dc, p))
        .collect()
}

/// Positions estimated at least `delta_c` hotter than the data center's
/// median position — the "bad spots" §VII-3 says to avoid.
pub fn hot_spots(dc: &DataCenter, delta_c: f64) -> Vec<(u8, f64)> {
    let profile = profile_c(dc);
    let mut sorted = profile.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite temperatures"));
    let median = sorted[sorted.len() / 2];
    profile
        .into_iter()
        .enumerate()
        .filter(|(_, t)| *t >= median + delta_c)
        .map(|(p, t)| (p as u8, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::CoolingDesign;
    use dcf_trace::{DataCenterId, DataCenterMeta};

    fn dc(cooling: CoolingDesign, hot: Vec<u8>, boost: f64) -> DataCenter {
        DataCenter::new(
            DataCenterMeta {
                id: DataCenterId::new(0),
                name: "DC-00".into(),
                built_year: 2012,
                modern_cooling: matches!(cooling, CoolingDesign::Modern),
                rack_positions: 40,
            },
            cooling,
            hot,
            boost,
            10,
            4,
        )
    }

    #[test]
    fn modern_dc_is_isothermal() {
        let d = dc(CoolingDesign::Modern, vec![], 1.0);
        let profile = profile_c(&d);
        assert!(profile.iter().all(|&t| (t - BASELINE_INLET_C).abs() < 1e-9));
        assert!(hot_spots(&d, 1.0).is_empty());
    }

    #[test]
    fn gradient_translates_to_degrees() {
        let d = dc(CoolingDesign::UnderFloor { gradient: 1.0 }, vec![], 1.0);
        // Top slot: multiplier 2.0 → one doubling → +12 °C over baseline.
        let top = estimated_inlet_c(&d, 39);
        assert!((top - (BASELINE_INLET_C + DEGREES_PER_DOUBLING)).abs() < 1e-9);
        // Monotone toward the top.
        let profile = profile_c(&d);
        for w in profile.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn hot_spots_find_the_paper_positions() {
        let d = dc(
            CoolingDesign::UnderFloor { gradient: 0.02 },
            vec![22, 35],
            1.4,
        );
        let spots = hot_spots(&d, 3.0);
        let positions: Vec<u8> = spots.iter().map(|(p, _)| *p).collect();
        assert!(positions.contains(&22), "{positions:?}");
        assert!(positions.contains(&35), "{positions:?}");
        // "Several degrees higher", as the paper reads its sensors.
        for (_, t) in spots {
            assert!(t > BASELINE_INLET_C + 3.0 && t < BASELINE_INLET_C + 10.0);
        }
    }
}
