//! The detection model: when does the FMS *notice* a latent fault?
//!
//! §III-A's key insight is that the diurnal/weekly patterns of Figures 3–4
//! are detection artifacts: log-based detection only fires when the faulty
//! component gets exercised (so detections track workload), and manual
//! miscellaneous reports follow office hours. We therefore model a latent
//! fault time and sample the detection time from one of three channels.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use dcf_fleet::{working_hours_weight, UtilizationProfile};
use dcf_trace::{ComponentClass, SimDuration, SimTime};

/// How a fault becomes an FOT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectionChannel {
    /// An FMS agent matches a syslog/dmesg pattern — only emitted while the
    /// component is being exercised, so detection intensity follows
    /// workload utilization.
    Syslog,
    /// Periodic status polling by the agent — workload independent.
    Polling,
    /// A human operator files the ticket — follows working hours.
    Manual,
}

/// Parameters of the detection process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionModel {
    /// Syslog detection intensity (events/hour) at 100% utilization.
    pub syslog_rate_per_hour: f64,
    /// Polling period in hours (detection delay ~ Uniform(0, period)).
    pub poll_period_hours: f64,
    /// Manual reporting intensity (reports/hour) at peak office hours.
    pub manual_rate_per_hour: f64,
    /// Probability that an auto-detected class goes through syslog rather
    /// than polling.
    pub syslog_share_disks: f64,
    /// Same for the platform classes (RAID, board, power, fan, …).
    pub syslog_share_platform: f64,
}

impl Default for DetectionModel {
    fn default() -> Self {
        Self {
            syslog_rate_per_hour: 0.55,
            poll_period_hours: 8.0,
            manual_rate_per_hour: 0.075,
            syslog_share_disks: 0.85,
            syslog_share_platform: 0.60,
        }
    }
}

impl DetectionModel {
    /// A model where detection is workload-independent (the "active failure
    /// probing" mechanism §III-A says the failure management team is
    /// building). Used by the `ablation_active_probing` bench.
    pub fn active_probing() -> Self {
        Self {
            syslog_share_disks: 0.0,
            syslog_share_platform: 0.0,
            poll_period_hours: 4.0,
            ..Self::default()
        }
    }

    /// Samples the channel a fault of `class` is detected through.
    pub fn sample_channel(&self, rng: &mut dyn RngCore, class: ComponentClass) -> DetectionChannel {
        match class {
            ComponentClass::Miscellaneous => DetectionChannel::Manual,
            ComponentClass::Hdd
            | ComponentClass::Ssd
            | ComponentClass::Memory
            | ComponentClass::FlashCard => {
                if rng.random::<f64>() < self.syslog_share_disks {
                    DetectionChannel::Syslog
                } else {
                    DetectionChannel::Polling
                }
            }
            _ => {
                if rng.random::<f64>() < self.syslog_share_platform {
                    DetectionChannel::Syslog
                } else {
                    DetectionChannel::Polling
                }
            }
        }
    }

    /// Samples the detection time for a fault latent since `fault_time`,
    /// detected through `channel`, on a server with workload `profile`.
    pub fn detection_time(
        &self,
        rng: &mut dyn RngCore,
        channel: DetectionChannel,
        fault_time: SimTime,
        profile: &UtilizationProfile,
    ) -> SimTime {
        match channel {
            DetectionChannel::Syslog => {
                thin_arrival(rng, fault_time, self.syslog_rate_per_hour, |t| {
                    profile.utilization(t)
                })
            }
            DetectionChannel::Polling => {
                let delay_h = rng.random::<f64>() * self.poll_period_hours;
                fault_time + SimDuration::from_secs((delay_h * 3600.0) as u64)
            }
            DetectionChannel::Manual => thin_arrival(
                rng,
                fault_time,
                self.manual_rate_per_hour,
                working_hours_weight,
            ),
        }
    }
}

/// First arrival of a non-homogeneous Poisson process with intensity
/// `max_rate_per_hour × weight(t)` (weight in `[0, 1]`), via thinning.
fn thin_arrival(
    rng: &mut dyn RngCore,
    start: SimTime,
    max_rate_per_hour: f64,
    weight: impl Fn(SimTime) -> f64,
) -> SimTime {
    debug_assert!(max_rate_per_hour > 0.0);
    let mut t = start;
    // Hard cap keeps pathological weights from spinning forever; at the cap
    // the fault is detected regardless (the agent's daily deep scan).
    for _ in 0..10_000 {
        let u: f64 = rng.random::<f64>().max(1e-300);
        let gap_hours = -u.ln() / max_rate_per_hour;
        t += SimDuration::from_secs((gap_hours * 3600.0) as u64 + 1);
        if rng.random::<f64>() < weight(t).clamp(0.0, 1.0) {
            return t;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcf_trace::WorkloadKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn misc_is_always_manual() {
        let m = DetectionModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(
                m.sample_channel(&mut rng, ComponentClass::Miscellaneous),
                DetectionChannel::Manual
            );
        }
    }

    #[test]
    fn disks_are_mostly_syslog() {
        let m = DetectionModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let syslog = (0..10_000)
            .filter(|_| m.sample_channel(&mut rng, ComponentClass::Hdd) == DetectionChannel::Syslog)
            .count();
        let share = syslog as f64 / 10_000.0;
        assert!((share - 0.85).abs() < 0.02, "syslog share {share}");
    }

    #[test]
    fn detection_never_precedes_fault() {
        let m = DetectionModel::default();
        let profile = UtilizationProfile::for_workload(WorkloadKind::OnlineService);
        let mut rng = StdRng::seed_from_u64(3);
        let fault = SimTime::from_days(10);
        for channel in [
            DetectionChannel::Syslog,
            DetectionChannel::Polling,
            DetectionChannel::Manual,
        ] {
            for _ in 0..200 {
                let det = m.detection_time(&mut rng, channel, fault, &profile);
                assert!(det >= fault);
            }
        }
    }

    #[test]
    fn syslog_detections_cluster_in_busy_hours() {
        let m = DetectionModel::default();
        let profile = UtilizationProfile::for_workload(WorkloadKind::OnlineService);
        let mut rng = StdRng::seed_from_u64(4);
        let mut hour_counts = [0usize; 24];
        for i in 0..20_000 {
            // Faults spread uniformly through the day.
            let fault = SimTime::from_secs(i * 4321 % (86_400 * 7));
            let det = m.detection_time(&mut rng, DetectionChannel::Syslog, fault, &profile);
            hour_counts[det.hour_of_day() as usize] += 1;
        }
        let afternoon: usize = (13..18).map(|h| hour_counts[h]).sum();
        let night: usize = (1..6).map(|h| hour_counts[h]).sum();
        assert!(
            afternoon as f64 > 1.35 * night as f64,
            "afternoon {afternoon} vs night {night}"
        );
    }

    #[test]
    fn manual_detections_avoid_weekends() {
        let m = DetectionModel::default();
        let profile = UtilizationProfile::for_workload(WorkloadKind::BatchProcessing);
        let mut rng = StdRng::seed_from_u64(5);
        let mut weekend = 0usize;
        let n = 10_000;
        for i in 0..n {
            let fault = SimTime::from_secs(i * 9173 % (86_400 * 28));
            let det = m.detection_time(&mut rng, DetectionChannel::Manual, fault, &profile);
            if det.weekday().is_weekend() {
                weekend += 1;
            }
        }
        // Uniform would give 2/7 ≈ 28.6%; office hours push well below.
        assert!((weekend as f64 / n as f64) < 0.18);
    }

    #[test]
    fn polling_is_time_of_day_independent_and_bounded() {
        let m = DetectionModel::default();
        let profile = UtilizationProfile::for_workload(WorkloadKind::BatchProcessing);
        let mut rng = StdRng::seed_from_u64(6);
        let fault = SimTime::from_days(1);
        for _ in 0..1_000 {
            let det = m.detection_time(&mut rng, DetectionChannel::Polling, fault, &profile);
            let delay = det.since(fault).as_secs() as f64 / 3600.0;
            assert!(delay <= m.poll_period_hours + 1e-9);
        }
    }

    #[test]
    fn active_probing_disables_syslog_channel() {
        let m = DetectionModel::active_probing();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                m.sample_channel(&mut rng, ComponentClass::Hdd),
                DetectionChannel::Polling
            );
        }
    }
}
