//! Warning → fatal escalation.
//!
//! §II-A/§VII-A: warning-severity tickets (SMART alerts, correctable-error
//! floods) "may be early warnings of fatal failures". If the component is
//! not repaired in time — and §VI shows operators usually are not in time —
//! the same component can fail for real days later. This is the signal the
//! FMS team's prediction tool exploits.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use dcf_stats::{ContinuousDistribution, LogNormal};
use dcf_trace::{SimDuration, SimTime};

/// Parameters of the warning→fatal escalation process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EscalationModel {
    /// Probability that a warning-severity fault escalates to a fatal
    /// failure of the same component (before anyone replaces it).
    pub prob: f64,
    /// Median days from warning to the fatal failure.
    pub delay_median_days: f64,
    /// Lognormal sigma of the escalation delay.
    pub delay_sigma: f64,
}

impl Default for EscalationModel {
    fn default() -> Self {
        Self {
            prob: 0.15,
            delay_median_days: 4.0,
            delay_sigma: 0.9,
        }
    }
}

impl EscalationModel {
    /// A model with escalation disabled.
    pub fn disabled() -> Self {
        Self {
            prob: 0.0,
            ..Self::default()
        }
    }

    /// Rolls whether a warning detected at `warning_time` escalates, and
    /// when; `None` if it does not (or would escalate past `horizon`).
    pub fn roll(
        &self,
        rng: &mut dyn RngCore,
        warning_time: SimTime,
        horizon: SimTime,
    ) -> Option<SimTime> {
        if self.prob <= 0.0 || rng.random::<f64>() >= self.prob {
            return None;
        }
        let d = LogNormal::from_median(self.delay_median_days, self.delay_sigma)
            .expect("valid delay distribution");
        let days = d.sample(rng).clamp(0.05, 60.0);
        let at = warning_time + SimDuration::from_secs((days * 86_400.0) as u64);
        (at < horizon).then_some(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn escalation_rate_matches_probability() {
        let m = EscalationModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let horizon = SimTime::from_days(10_000);
        let n = 100_000;
        let hits = (0..n)
            .filter(|_| m.roll(&mut rng, SimTime::ORIGIN, horizon).is_some())
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.15).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn escalations_come_days_later_not_months() {
        let m = EscalationModel {
            prob: 1.0,
            ..EscalationModel::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let start = SimTime::from_days(100);
        let horizon = SimTime::from_days(1_000);
        let mut delays: Vec<f64> = (0..5_000)
            .filter_map(|_| m.roll(&mut rng, start, horizon))
            .map(|t| t.since(start).as_days_f64())
            .collect();
        delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = delays[delays.len() / 2];
        assert!((median - 4.0).abs() < 0.5, "median delay {median}");
        assert!(delays.iter().all(|&d| d <= 60.0));
    }

    #[test]
    fn horizon_censors_escalations() {
        let m = EscalationModel {
            prob: 1.0,
            ..EscalationModel::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let start = SimTime::from_days(100);
        let horizon = start + SimDuration::from_hours(1);
        // Nearly every escalation lands beyond a 1-hour horizon.
        let hits = (0..1_000)
            .filter(|_| m.roll(&mut rng, start, horizon).is_some())
            .count();
        assert!(hits < 20, "censoring failed: {hits}");
    }

    #[test]
    fn disabled_never_escalates() {
        let m = EscalationModel::disabled();
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0..1_000).all(|_| m
            .roll(&mut rng, SimTime::ORIGIN, SimTime::from_days(999))
            .is_none()));
    }
}
