//! Per-class lifecycle hazard shapes (Figure 6) and calibrated base rates.
//!
//! Each component class gets a 48-month relative shape capturing the
//! paper's findings:
//!
//! * **HDD** — mild infant mortality (first 3 months ~20% above months
//!   4–9), rates rising from month ~6 onward (§III-C), *not* a bathtub.
//! * **RAID card** — strong infant mortality: 47.4% of failures within the
//!   first six months of service.
//! * **Motherboard** — rare early, 72.1% of failures after year 3.
//! * **Flash card** — only 1.4% of failures in the first 12 months, steep
//!   correlated wear-out afterwards.
//! * **Memory** — stable first year, rising between years 2 and 4.
//! * **Fan / power** — mechanical wear: low first year, gradual increase.
//! * **Miscellaneous** — extreme first-month spike (manual debugging at
//!   deployment), then stable.

use dcf_trace::ComponentClass;
use serde::{Deserialize, Serialize};

use crate::hazard::PiecewiseHazard;

/// Number of age months the shapes cover (the Figure 6 horizon).
pub const SHAPE_MONTHS: usize = 48;

/// The relative (dimensionless) lifecycle shape for a component class.
///
/// Multiply by a base rate (failures per component-month) via
/// [`PiecewiseHazard::scaled`] to get an absolute hazard; see
/// [`FailureRates::hazard_for`].
pub fn lifecycle_shape(class: ComponentClass) -> PiecewiseHazard {
    let f: Box<dyn Fn(usize) -> f64> = match class {
        ComponentClass::Hdd => Box::new(|m| match m {
            0..=2 => 1.08,
            3..=9 => 0.90,
            m => 0.90 + (m - 9) as f64 * (1.40 / 38.0),
        }),
        ComponentClass::RaidCard => Box::new(|m| match m {
            0..=5 => 3.60,
            6..=11 => 0.50,
            _ => 0.35,
        }),
        ComponentClass::Motherboard => Box::new(|m| match m {
            0..=23 => 0.08,
            24..=35 => 0.32,
            m => 4.20 + (m - 36) as f64 * 0.20,
        }),
        ComponentClass::FlashCard => Box::new(|m| match m {
            0..=11 => 0.06,
            m => 0.40 + (m - 12) as f64 * 0.125,
        }),
        ComponentClass::Memory => Box::new(|m| match m {
            0..=11 => 0.85,
            12..=23 => 1.00,
            m => 1.00 + (m - 23) as f64 * 0.04,
        }),
        ComponentClass::Fan => Box::new(|m| 0.35 + m as f64 * 0.035),
        ComponentClass::Power => Box::new(|m| 0.40 + m as f64 * 0.030),
        ComponentClass::Ssd => Box::new(|m| 0.70 + m as f64 * 0.015),
        ComponentClass::Cpu => Box::new(|_| 1.0),
        ComponentClass::HddBackboard => Box::new(|_| 1.0),
        ComponentClass::Miscellaneous => Box::new(|m| if m == 0 { 10.0 } else { 0.90 }),
    };
    let monthly: Vec<f64> = (0..SHAPE_MONTHS).map(f).collect();
    PiecewiseHazard::new(monthly).expect("shapes are finite and non-negative")
}

/// Base failure rates per component-month for each class, calibrated so the
/// full-scale simulation reproduces Table II's failure breakdown and the
/// paper's overall volume (~290k FOTs / fleet MTBF ≈ 6.8 min).
///
/// Note these cover only the *background* (independent) failure process;
/// batch events (§V-A) add on top, which matters most for HDD.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRates {
    base: [f64; 11],
}

impl FailureRates {
    /// The calibrated preset used by the paper scenario.
    pub fn calibrated() -> Self {
        let mut base = [0.0; 11];
        base[ComponentClass::Hdd.index()] = 2.18e-3;
        base[ComponentClass::Miscellaneous.index()] = 3.34e-3; // per server
        base[ComponentClass::Memory.index()] = 0.92e-4;
        base[ComponentClass::Power.index()] = 3.40e-4;
        // Rebalanced with the steeper infant-mortality shape (whose 48-month
        // integral grew ~14%) so Table II's RAID-card share stays at ~1.2%.
        base[ComponentClass::RaidCard.index()] = 7.6e-4;
        base[ComponentClass::FlashCard.index()] = 1.50e-3;
        base[ComponentClass::Motherboard.index()] = 2.7e-4;
        base[ComponentClass::Ssd.index()] = 1.17e-4;
        base[ComponentClass::Fan.index()] = 1.85e-5;
        base[ComponentClass::HddBackboard.index()] = 7.6e-5;
        base[ComponentClass::Cpu.index()] = 1.4e-5;
        Self { base }
    }

    /// Base rate (failures per component-month averaged over the shape's
    /// unit level) for a class.
    pub fn base_rate(&self, class: ComponentClass) -> f64 {
        self.base[class.index()]
    }

    /// Overrides one class's base rate (used by ablations and calibration).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite rates.
    pub fn set_base_rate(&mut self, class: ComponentClass, rate: f64) {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "rate must be >= 0, got {rate}"
        );
        self.base[class.index()] = rate;
    }

    /// Scales every class rate by `k` (used to match fleet sizes).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite factors.
    pub fn scaled(&self, k: f64) -> Self {
        assert!(k.is_finite() && k >= 0.0, "factor must be >= 0, got {k}");
        let mut base = self.base;
        for b in &mut base {
            *b *= k;
        }
        Self { base }
    }

    /// The absolute lifecycle hazard for a class
    /// (`lifecycle_shape(class) × base_rate`).
    pub fn hazard_for(&self, class: ComponentClass) -> PiecewiseHazard {
        lifecycle_shape(class).scaled(self.base_rate(class))
    }

    /// All eleven class hazards built once, for hot loops that would
    /// otherwise rebuild the shape per server per class via
    /// [`hazard_for`](Self::hazard_for).
    pub fn hazard_table(&self) -> HazardTable {
        HazardTable {
            hazards: ComponentClass::ALL.map(|class| self.hazard_for(class)),
        }
    }
}

/// Per-class absolute hazards precomputed from a [`FailureRates`].
///
/// [`FailureRates::hazard_for`] allocates a fresh 48-segment shape on each
/// call; building this table once per simulation run turns the per-server
/// hot path's hazard lookups into borrows. The hazards are identical to
/// what `hazard_for` returns.
#[derive(Debug, Clone, PartialEq)]
pub struct HazardTable {
    hazards: [PiecewiseHazard; 11],
}

impl HazardTable {
    /// The precomputed hazard for `class`.
    pub fn hazard(&self, class: ComponentClass) -> &PiecewiseHazard {
        &self.hazards[class.index()]
    }
}

impl Default for FailureRates {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_cover_48_months() {
        for class in ComponentClass::ALL {
            assert_eq!(lifecycle_shape(class).monthly().len(), SHAPE_MONTHS);
        }
    }

    #[test]
    fn hdd_has_mild_infant_mortality_then_wearout() {
        let h = lifecycle_shape(ComponentClass::Hdd);
        let infant = h.rate_at_month(1);
        let trough = h.rate_at_month(6);
        // ~20% above months 4–9 (§III-C).
        assert!((infant / trough - 1.2).abs() < 0.01);
        // Wear-out dominates by year 4.
        assert!(h.rate_at_month(47) > 2.0 * trough);
    }

    #[test]
    fn raid_infant_mortality_dominates() {
        let h = lifecycle_shape(ComponentClass::RaidCard);
        let first6: f64 = (0..6).map(|m| h.rate_at_month(m)).sum();
        let total: f64 = (0..SHAPE_MONTHS).map(|m| h.rate_at_month(m)).sum();
        // Exposure weighting (young fleets dominate) lifts the observed
        // share to the paper's 47.4%; the raw shape carries ~2/5.
        assert!(first6 / total > 0.35, "got {}", first6 / total);
    }

    #[test]
    fn motherboard_fails_late() {
        let h = lifecycle_shape(ComponentClass::Motherboard);
        let after36: f64 = (36..SHAPE_MONTHS).map(|m| h.rate_at_month(m)).sum();
        let total: f64 = (0..SHAPE_MONTHS).map(|m| h.rate_at_month(m)).sum();
        assert!(after36 / total > 0.65, "got {}", after36 / total);
    }

    #[test]
    fn flash_is_quiet_then_wears_out_fast() {
        let h = lifecycle_shape(ComponentClass::FlashCard);
        let first12: f64 = (0..12).map(|m| h.rate_at_month(m)).sum();
        let total: f64 = (0..SHAPE_MONTHS).map(|m| h.rate_at_month(m)).sum();
        assert!(first12 / total < 0.02, "got {}", first12 / total);
        assert!(h.rate_at_month(47) > 10.0 * h.rate_at_month(5));
    }

    #[test]
    fn misc_spikes_in_month_zero() {
        let h = lifecycle_shape(ComponentClass::Miscellaneous);
        assert!(h.rate_at_month(0) > 8.0 * h.rate_at_month(1));
        assert_eq!(h.rate_at_month(5), h.rate_at_month(40));
    }

    #[test]
    fn mechanical_classes_wear() {
        for class in [ComponentClass::Fan, ComponentClass::Power] {
            let h = lifecycle_shape(class);
            assert!(h.rate_at_month(40) > 2.0 * h.rate_at_month(2), "{class}");
        }
    }

    #[test]
    fn rates_api() {
        let mut rates = FailureRates::calibrated();
        let hdd = rates.base_rate(ComponentClass::Hdd);
        assert!(hdd > rates.base_rate(ComponentClass::Cpu) * 100.0);
        rates.set_base_rate(ComponentClass::Cpu, 1.0);
        assert_eq!(rates.base_rate(ComponentClass::Cpu), 1.0);
        let doubled = rates.scaled(2.0);
        assert_eq!(doubled.base_rate(ComponentClass::Cpu), 2.0);
        let h = rates.hazard_for(ComponentClass::Hdd);
        assert!((h.rate_at_month(1) - 1.08 * hdd).abs() < 1e-12);
    }

    #[test]
    fn hazard_table_matches_per_class_construction() {
        let rates = FailureRates::calibrated();
        let table = rates.hazard_table();
        for class in ComponentClass::ALL {
            assert_eq!(table.hazard(class), &rates.hazard_for(class), "{class}");
        }
    }
}
