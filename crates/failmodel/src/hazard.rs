//! Piecewise-constant lifecycle hazards and Poisson arrival sampling.
//!
//! Figure 6 of the paper plots *monthly* failure rates over component age;
//! we therefore model each class's hazard as a piecewise-constant function
//! of age with 30-day resolution. Failure ages are drawn by
//! *count-then-invert*: one Poisson draw for the arrival count over the
//! whole window (off a precomputed cumulative-hazard table), then that many
//! uniform draws inverted through the table — no per-day loops and no
//! per-segment RNG walk.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use dcf_stats::{poisson_count, StatsError};

/// Days per hazard segment (the Figure 6 "month").
pub const DAYS_PER_SEGMENT: f64 = 30.0;

/// A piecewise-constant hazard over component age.
///
/// `monthly[m]` is the expected number of failures per component during its
/// `m`-th 30-day month of service; ages beyond the last segment reuse the
/// final value.
///
/// Alongside the monthly table the hazard precomputes a per-*day* rate
/// table (`monthly[m] / DAYS_PER_SEGMENT`) and a cumulative-hazard prefix
/// table (`cum[i]` = integral of the daily rate over `[0, 30·i)` days) at
/// construction time, so the sampling and integration hot paths never walk
/// segments. The daily rates are float-identical to dividing on the fly —
/// `(a / b) * c` evaluates left to right either way — which the engine's
/// byte-identity suite relies on. Only `monthly` is serialized; the
/// derived tables are rebuilt on deserialization.
///
/// # Examples
///
/// ```
/// use dcf_failmodel::PiecewiseHazard;
///
/// // Classic infant mortality: hot first month, then settling.
/// let h = PiecewiseHazard::new(vec![0.05, 0.01, 0.01]).unwrap();
/// assert!(h.rate_per_day(10.0) > h.rate_per_day(40.0));
/// assert_eq!(h.rate_per_day(500.0), h.rate_per_day(70.0)); // extends last
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(from = "HazardRepr", into = "HazardRepr")]
pub struct PiecewiseHazard {
    monthly: Vec<f64>,
    /// `monthly[m] / DAYS_PER_SEGMENT`, cached at construction.
    daily: Vec<f64>,
    /// Cumulative hazard at segment boundaries: `cum[i]` is the expected
    /// failure count over ages `[0, 30·i)` days, and `cum` has one more
    /// entry than `monthly`. Ages past the last boundary extend linearly
    /// at the final segment's rate.
    cum: Vec<f64>,
}

/// The serialized form of [`PiecewiseHazard`]: the monthly table only, so
/// the wire format is unchanged from before the daily cache existed.
#[derive(Serialize, Deserialize)]
struct HazardRepr {
    monthly: Vec<f64>,
}

impl From<PiecewiseHazard> for HazardRepr {
    fn from(h: PiecewiseHazard) -> Self {
        Self { monthly: h.monthly }
    }
}

impl From<HazardRepr> for PiecewiseHazard {
    fn from(repr: HazardRepr) -> Self {
        // Deserialization performs no validation (matching the former
        // derive), so this mirrors `new` minus the checks.
        Self::from_monthly(repr.monthly)
    }
}

impl PiecewiseHazard {
    /// Creates a hazard from per-month failure expectations.
    ///
    /// # Errors
    ///
    /// Rejects empty input and negative or non-finite rates.
    pub fn new(monthly: Vec<f64>) -> Result<Self, StatsError> {
        if monthly.is_empty() {
            return Err(StatsError::EmptySample);
        }
        for &r in &monthly {
            if !r.is_finite() || r < 0.0 {
                return Err(StatsError::InvalidParameter {
                    what: "hazard segment rate",
                    value: r,
                });
            }
        }
        Ok(Self::from_monthly(monthly))
    }

    /// Builds the hazard and its derived tables without validation.
    fn from_monthly(monthly: Vec<f64>) -> Self {
        let daily: Vec<f64> = monthly.iter().map(|r| r / DAYS_PER_SEGMENT).collect();
        let mut cum = Vec::with_capacity(daily.len() + 1);
        let mut acc = 0.0;
        cum.push(0.0);
        for &d in &daily {
            acc += d * DAYS_PER_SEGMENT;
            cum.push(acc);
        }
        Self {
            monthly,
            daily,
            cum,
        }
    }

    /// A constant hazard of `per_month` failures per component-month.
    ///
    /// # Errors
    ///
    /// Rejects negative or non-finite rates.
    pub fn flat(per_month: f64) -> Result<Self, StatsError> {
        Self::new(vec![per_month])
    }

    /// The per-month rates.
    pub fn monthly(&self) -> &[f64] {
        &self.monthly
    }

    /// Rate during age-month `m` (clamped to the last segment).
    pub fn rate_at_month(&self, m: usize) -> f64 {
        self.monthly[m.min(self.monthly.len() - 1)]
    }

    /// Per-day rate during age-month `m` (clamped to the last segment).
    ///
    /// Reads the precomputed `monthly[m] / DAYS_PER_SEGMENT` table; the
    /// value is bit-identical to dividing on the fly.
    pub fn daily_at_month(&self, m: usize) -> f64 {
        self.daily[m.min(self.daily.len() - 1)]
    }

    /// Instantaneous hazard in failures/day at `age_days`.
    pub fn rate_per_day(&self, age_days: f64) -> f64 {
        if age_days < 0.0 {
            return 0.0;
        }
        self.daily_at_month((age_days / DAYS_PER_SEGMENT) as usize)
    }

    /// Returns this hazard with every segment multiplied by `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative or non-finite.
    pub fn scaled(&self, k: f64) -> Self {
        assert!(
            k.is_finite() && k >= 0.0,
            "scale must be finite and >= 0, got {k}"
        );
        Self::from_monthly(self.monthly.iter().map(|r| r * k).collect())
    }

    /// Cumulative hazard Λ(age): expected failures of one component over
    /// ages `[0, age_days)` at multiplier 1. O(1) off the prefix table;
    /// ages past the last segment boundary extend at the final rate.
    pub fn cumulative(&self, age_days: f64) -> f64 {
        if age_days <= 0.0 {
            return 0.0;
        }
        let m = (age_days / DAYS_PER_SEGMENT) as usize;
        let n = self.daily.len();
        if m < n {
            self.cum[m] + self.daily[m] * (age_days - m as f64 * DAYS_PER_SEGMENT)
        } else {
            self.cum[n] + self.daily[n - 1] * (age_days - n as f64 * DAYS_PER_SEGMENT)
        }
    }

    /// Inverts the cumulative hazard: the age at which Λ(age) first reaches
    /// `target` (≥ 0). Binary search over the boundary table plus a linear
    /// step inside the landing segment.
    fn invert_cumulative(&self, target: f64) -> f64 {
        let n = self.daily.len();
        if target >= self.cum[n] {
            // Beyond the table: extend at the final segment's rate.
            let rate = self.daily[n - 1];
            if rate <= 0.0 {
                return n as f64 * DAYS_PER_SEGMENT;
            }
            return n as f64 * DAYS_PER_SEGMENT + (target - self.cum[n]) / rate;
        }
        // Last boundary with cum[seg] <= target; ties skip zero-rate runs.
        let seg = self.cum.partition_point(|&c| c <= target).saturating_sub(1);
        let seg = seg.min(n - 1);
        let rate = self.daily[seg];
        if rate <= 0.0 {
            // Only reachable when target sits exactly on a boundary whose
            // following segment carries no mass.
            return seg as f64 * DAYS_PER_SEGMENT;
        }
        seg as f64 * DAYS_PER_SEGMENT + (target - self.cum[seg]) / rate
    }

    /// Expected failures of one component between ages `from_day` and
    /// `to_day` with an extra rate multiplier `mult`. O(1) as a difference
    /// of cumulative hazards.
    pub fn expected_count(&self, from_day: f64, to_day: f64, mult: f64) -> f64 {
        if to_day <= from_day {
            return 0.0;
        }
        (self.cumulative(to_day) - self.cumulative(from_day.max(0.0))) * mult
    }

    /// Samples arrival ages (days) of a Poisson process with intensity
    /// `self × mult` over `[from_day, to_day)`, appending to `out` in
    /// ascending order.
    ///
    /// Count-then-invert: one Poisson draw with mean `mult ×
    /// (Λ(to) − Λ(from))` fixes the arrival count, then each arrival is an
    /// independent uniform position in cumulative-hazard space inverted
    /// through the boundary table — the order statistics of exactly the
    /// inhomogeneous Poisson process the old per-segment exponential walk
    /// sampled, at O(arrivals + log months) RNG-and-table cost instead of
    /// O(months) RNG draws per call.
    pub fn sample_arrivals(
        &self,
        rng: &mut dyn RngCore,
        from_day: f64,
        to_day: f64,
        mult: f64,
        out: &mut Vec<f64>,
    ) {
        if mult <= 0.0 || to_day <= from_day {
            return;
        }
        let from = from_day.max(0.0);
        let lo = self.cumulative(from);
        let hi = self.cumulative(to_day);
        let mean = (hi - lo) * mult;
        if mean <= 0.0 {
            return;
        }
        let n = poisson_count(rng, mean);
        if n == 0 {
            return;
        }
        let start = out.len();
        for _ in 0..n {
            let u: f64 = rng.random();
            let day = self.invert_cumulative(lo + u * (hi - lo));
            // Float round-trip through Λ/Λ⁻¹ can graze the window edges;
            // clamp into [from, to) so callers see in-window ages only.
            out.push(day.clamp(from, to_day.next_down()));
        }
        out[start..].sort_unstable_by(f64::total_cmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_segments() {
        assert!(PiecewiseHazard::new(vec![]).is_err());
        assert!(PiecewiseHazard::new(vec![0.1, -0.2]).is_err());
        assert!(PiecewiseHazard::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn rate_lookup_clamps_to_last_segment() {
        let h = PiecewiseHazard::new(vec![0.3, 0.1, 0.2]).unwrap();
        assert_eq!(h.rate_at_month(0), 0.3);
        assert_eq!(h.rate_at_month(2), 0.2);
        assert_eq!(h.rate_at_month(99), 0.2);
        assert!((h.rate_per_day(15.0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn expected_count_integrates_segments() {
        let h = PiecewiseHazard::new(vec![0.3, 0.6]).unwrap();
        // Full first month + half of second: 0.3 + 0.3 = 0.6.
        assert!((h.expected_count(0.0, 45.0, 1.0) - 0.6).abs() < 1e-12);
        // Multiplier scales linearly.
        assert!((h.expected_count(0.0, 45.0, 2.0) - 1.2).abs() < 1e-12);
        assert_eq!(h.expected_count(50.0, 40.0, 1.0), 0.0);
    }

    #[test]
    fn sampling_matches_expectation() {
        let h = PiecewiseHazard::new(vec![0.2, 0.05, 0.4]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut arrivals = Vec::new();
        let trials = 20_000;
        for _ in 0..trials {
            h.sample_arrivals(&mut rng, 0.0, 90.0, 1.0, &mut arrivals);
        }
        let mean = arrivals.len() as f64 / trials as f64;
        let expect = h.expected_count(0.0, 90.0, 1.0);
        assert!(
            (mean - expect).abs() / expect < 0.03,
            "mean {mean} vs expected {expect}"
        );
        // Arrivals land in the right segments proportionally.
        let in_m1 = arrivals
            .iter()
            .filter(|&&a| (30.0..60.0).contains(&a))
            .count();
        let frac_m1 = in_m1 as f64 / arrivals.len() as f64;
        assert!(
            (frac_m1 - 0.05 / 0.65).abs() < 0.02,
            "month-1 share {frac_m1}"
        );
    }

    #[test]
    fn sampling_respects_window() {
        let h = PiecewiseHazard::flat(5.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut arrivals = Vec::new();
        for _ in 0..100 {
            h.sample_arrivals(&mut rng, 12.0, 17.0, 1.0, &mut arrivals);
        }
        assert!(arrivals.iter().all(|&a| (12.0..17.0).contains(&a)));
        assert!(!arrivals.is_empty()); // ~83 expected over 100 trials
    }

    #[test]
    fn zero_mult_yields_nothing() {
        let h = PiecewiseHazard::flat(10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut arrivals = Vec::new();
        h.sample_arrivals(&mut rng, 0.0, 1000.0, 0.0, &mut arrivals);
        assert!(arrivals.is_empty());
    }

    #[test]
    fn scaled_multiplies_rates() {
        let h = PiecewiseHazard::new(vec![0.1, 0.2]).unwrap().scaled(3.0);
        assert_eq!(h.monthly(), &[0.30000000000000004, 0.6000000000000001]);
    }

    #[test]
    fn cumulative_matches_segment_walk() {
        let h = PiecewiseHazard::new(vec![0.3, 0.0, 0.6, 0.1]).unwrap();
        // Hand-integrated checkpoints, including a zero-rate segment and
        // the beyond-table extension at the final rate.
        assert_eq!(h.cumulative(0.0), 0.0);
        assert!((h.cumulative(15.0) - 0.15).abs() < 1e-12);
        assert!((h.cumulative(45.0) - 0.3).abs() < 1e-12);
        assert!((h.cumulative(75.0) - 0.6).abs() < 1e-12);
        assert!((h.cumulative(120.0) - 1.0).abs() < 1e-12);
        assert!((h.cumulative(150.0) - 1.1).abs() < 1e-12);
        assert_eq!(h.cumulative(-3.0), 0.0);
    }

    #[test]
    fn sampling_skips_zero_rate_segments() {
        let h = PiecewiseHazard::new(vec![0.5, 0.0, 0.5]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut arrivals = Vec::new();
        for _ in 0..2_000 {
            h.sample_arrivals(&mut rng, 0.0, 90.0, 1.0, &mut arrivals);
        }
        assert!(!arrivals.is_empty());
        assert!(
            arrivals
                .iter()
                .all(|a| !(30.0..60.0).contains(a) || *a == 30.0),
            "arrival landed inside the zero-rate month"
        );
        assert!(arrivals.iter().all(|a| a.is_finite()));
    }

    #[test]
    fn arrivals_are_sorted_within_a_call() {
        let h = PiecewiseHazard::new(vec![2.0, 1.0, 3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let mut arrivals = Vec::new();
            h.sample_arrivals(&mut rng, 5.0, 85.0, 1.5, &mut arrivals);
            assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "{arrivals:?}");
        }
    }

    #[test]
    fn daily_table_is_bitwise_monthly_over_segment() {
        let h = PiecewiseHazard::new(vec![0.3, 0.07, 0.0, 1.5]).unwrap();
        for m in 0..6 {
            assert_eq!(h.daily_at_month(m), h.rate_at_month(m) / DAYS_PER_SEGMENT);
        }
        // scaled() rebuilds the cache from the scaled monthly rates.
        let s = h.scaled(2.5);
        for m in 0..6 {
            assert_eq!(s.daily_at_month(m), s.rate_at_month(m) / DAYS_PER_SEGMENT);
        }
    }

    #[test]
    fn serde_keeps_monthly_only_and_rebuilds_daily() {
        let h = PiecewiseHazard::new(vec![0.3, 0.1]).unwrap();
        // Minimal build environments stub serde_json; skip if so.
        let Ok(json) = std::panic::catch_unwind(|| serde_json::to_string(&h).unwrap()) else {
            return;
        };
        assert_eq!(json, r#"{"monthly":[0.3,0.1]}"#);
        let back: PiecewiseHazard = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.daily_at_month(0), 0.3 / DAYS_PER_SEGMENT);
    }
}
