//! # dcf-failmodel
//!
//! Generative hardware-failure models for the `dcfail` reproduction of the
//! DSN'17 data-center failure study. Everything the paper *measures* about
//! how failures arise is modeled here as a generator:
//!
//! * [`PiecewiseHazard`] + [`lifecycle_shape`] — per-class monthly hazards
//!   with the Figure 6 lifecycle shapes (RAID infant mortality, motherboard
//!   late wear-out, flash cliff, HDD non-bathtub, misc deployment spike).
//! * [`FailureRates`] — calibrated absolute base rates (Table II volumes).
//! * [`DetectionModel`] — latent fault → detection time through syslog
//!   (workload-coupled), polling, or manual channels (Figures 3–4).
//! * [`BatchModel`] — firmware/PDU/SAS/operator batch events (§V-A,
//!   Table V).
//! * [`RepeatModel`] / [`SyncRepeatModel`] — repeating and synchronously
//!   repeating failures (§III-D, §V-C, Table VIII).
//! * [`CorrelationModel`] — same-server correlated component failures
//!   (§V-B, Tables VI–VII).
//! * [`EscalationModel`] — warning→fatal escalation on the same component,
//!   the signal behind the §VII-A failure predictor.
//! * [`type_mixture`] — per-class failure-type mixes (Figure 2, Table III).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod correlated;
mod detection;
mod escalation;
mod hazard;
mod lifecycle;
mod repeat;
pub mod types;

pub use batch::{BatchCause, BatchEvent, BatchModel};
pub use correlated::{CausalPair, CorrelationModel};
pub use detection::{DetectionChannel, DetectionModel};
pub use escalation::EscalationModel;
pub use hazard::{PiecewiseHazard, DAYS_PER_SEGMENT};
pub use lifecycle::{lifecycle_shape, FailureRates, HazardTable, SHAPE_MONTHS};
pub use repeat::{RepeatModel, SyncRepeatModel};
pub use types::{detail_for, detail_str, sample_type, type_mixture};
