//! Repeating failures (§III-D) and synchronously repeating groups (§V-C).
//!
//! Repairs are replacements and mostly effective — over 85% of fixed
//! components never repeat — but a minority flap: the paper's extreme case
//! is a single server with 400+ FOTs over a year caused by a failing RAID
//! BBU that an automatic reboot kept "solving". Separately, small groups of
//! near-identical servers repeat failures *synchronously* (Table VIII).

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use dcf_stats::{ContinuousDistribution, LogNormal};
use dcf_trace::{SimDuration, SimTime};

/// Parameters of the repeat process attached to a failed component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepeatModel {
    /// Probability that a repaired component repeats its failure at all
    /// (the paper: < 15% of fixed components repeat).
    pub repeat_prob: f64,
    /// Mean number of extra occurrences for an ordinary repeater
    /// (geometric).
    pub mean_repeats: f64,
    /// Median gap between repeats in days (lognormal).
    pub gap_median_days: f64,
    /// Lognormal sigma of the gaps.
    pub gap_sigma: f64,
    /// Probability that a failed component is an extreme *flapper*
    /// (the BBU case: hundreds of automatic "fix"/fail cycles).
    pub flap_prob: f64,
    /// Flapper occurrence count range.
    pub flap_count: (u32, u32),
    /// Flapper gap range in days (log-uniform).
    pub flap_gap_days: (f64, f64),
}

impl Default for RepeatModel {
    fn default() -> Self {
        Self {
            repeat_prob: 0.025,
            mean_repeats: 2.5,
            gap_median_days: 6.0,
            gap_sigma: 1.0,
            flap_prob: 3.0e-5,
            flap_count: (460, 560),
            flap_gap_days: (0.12, 1.8),
        }
    }
}

impl RepeatModel {
    /// A model with no repeats at all — the `ablation_instant_ops`
    /// counterfactual where every repair is fully effective.
    pub fn disabled() -> Self {
        Self {
            repeat_prob: 0.0,
            flap_prob: 0.0,
            ..Self::default()
        }
    }

    /// Decides, for a component that just failed for the first time at
    /// `first`, the times of its *repeat* occurrences (empty for the ~90%
    /// of components whose repair sticks). Times beyond `horizon` are
    /// dropped.
    pub fn sample_repeats(
        &self,
        rng: &mut dyn RngCore,
        first: SimTime,
        horizon: SimTime,
    ) -> Vec<SimTime> {
        let mut out = Vec::new();
        self.sample_repeats_into(rng, first, horizon, &mut out);
        out
    }

    /// [`sample_repeats`](Self::sample_repeats) into a caller-owned buffer,
    /// so hot loops can reuse one allocation across components. Appends to
    /// `out` (does not clear it) and consumes exactly the same RNG draws as
    /// the allocating form.
    pub fn sample_repeats_into(
        &self,
        rng: &mut dyn RngCore,
        first: SimTime,
        horizon: SimTime,
        out: &mut Vec<SimTime>,
    ) {
        let is_flapper = rng.random::<f64>() < self.flap_prob;
        if is_flapper {
            self.sample_flaps_into(rng, first, horizon, out);
            return;
        }
        if rng.random::<f64>() >= self.repeat_prob {
            return;
        }
        // Geometric count with the configured mean.
        let p = 1.0 / (1.0 + self.mean_repeats);
        let mut count = 0u32;
        while rng.random::<f64>() > p && count < 50 {
            count += 1;
        }
        if count == 0 {
            count = 1;
        }
        let gap_dist = LogNormal::from_median(self.gap_median_days, self.gap_sigma)
            .expect("valid gap distribution");
        out.reserve(count as usize);
        let mut t = first;
        for _ in 0..count {
            let gap_days = gap_dist.sample(rng).clamp(0.01, 200.0);
            t += SimDuration::from_secs((gap_days * 86_400.0) as u64);
            if t >= horizon {
                break;
            }
            out.push(t);
        }
    }

    fn sample_flaps_into(
        &self,
        rng: &mut dyn RngCore,
        first: SimTime,
        horizon: SimTime,
        out: &mut Vec<SimTime>,
    ) {
        let (lo, hi) = self.flap_count;
        let count = rng.random_range(lo..=hi.max(lo));
        let (glo, ghi) = self.flap_gap_days;
        out.reserve(count as usize);
        let mut t = first;
        for _ in 0..count {
            let u: f64 = rng.random();
            let gap_days = (glo.ln() + u * (ghi.ln() - glo.ln())).exp();
            t += SimDuration::from_secs((gap_days * 86_400.0) as u64);
            if t >= horizon {
                break;
            }
            out.push(t);
        }
    }
}

/// Synchronous repeat groups (§V-C, Table VIII): pairs of near-identical
/// servers whose disks repeat failures within seconds of each other.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncRepeatModel {
    /// Number of synchronized groups per paper-scale trace (scaled by fleet
    /// size by the simulator).
    pub groups_per_trace: f64,
    /// Servers per group.
    pub group_size: u32,
    /// Occurrences per group.
    pub occurrences: (u32, u32),
    /// Gap between occurrences in days (log-uniform range).
    pub gap_days: (f64, f64),
    /// Maximum skew between group members at each occurrence, in seconds.
    pub skew_secs: u64,
}

impl Default for SyncRepeatModel {
    fn default() -> Self {
        Self {
            groups_per_trace: 6.0,
            group_size: 2,
            occurrences: (4, 8),
            gap_days: (1.0, 15.0),
            skew_secs: 30,
        }
    }
}

impl SyncRepeatModel {
    /// Samples the shared occurrence schedule for one group starting at
    /// `first`, and per-member jitter offsets. Returns
    /// `(occurrence_times, member_offsets_secs)`.
    pub fn sample_group_schedule(
        &self,
        rng: &mut dyn RngCore,
        first: SimTime,
        horizon: SimTime,
    ) -> (Vec<SimTime>, Vec<u64>) {
        let (lo, hi) = self.occurrences;
        let count = rng.random_range(lo..=hi.max(lo));
        let mut times = Vec::with_capacity(count as usize);
        let mut t = first;
        times.push(t);
        for _ in 1..count {
            let u: f64 = rng.random();
            let (glo, ghi) = self.gap_days;
            let gap_days = (glo.ln() + u * (ghi.ln() - glo.ln())).exp();
            t += SimDuration::from_secs((gap_days * 86_400.0) as u64);
            if t >= horizon {
                break;
            }
            times.push(t);
        }
        let offsets = (0..self.group_size)
            .map(|_| rng.random_range(0..=self.skew_secs))
            .collect();
        (times, offsets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn most_components_never_repeat() {
        let m = RepeatModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let horizon = SimTime::from_days(10_000);
        let n = 50_000;
        let repeaters = (0..n)
            .filter(|_| {
                !m.sample_repeats(&mut rng, SimTime::ORIGIN, horizon)
                    .is_empty()
            })
            .count();
        let frac = repeaters as f64 / n as f64;
        // Paper: over 85% of fixed components never repeat.
        assert!(frac < 0.15, "repeat fraction {frac}");
        assert!(frac > 0.015, "repeats should exist: {frac}");
    }

    #[test]
    fn disabled_model_never_repeats() {
        let m = RepeatModel::disabled();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            assert!(m
                .sample_repeats(&mut rng, SimTime::ORIGIN, SimTime::from_days(9999))
                .is_empty());
        }
    }

    #[test]
    fn repeats_are_increasing_and_bounded_by_horizon() {
        let m = RepeatModel {
            repeat_prob: 1.0,
            ..RepeatModel::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let first = SimTime::from_days(100);
        let horizon = SimTime::from_days(130);
        for _ in 0..500 {
            let reps = m.sample_repeats(&mut rng, first, horizon);
            let mut prev = first;
            for &r in &reps {
                assert!(r > prev && r < horizon);
                prev = r;
            }
        }
    }

    #[test]
    fn flappers_produce_hundreds_of_occurrences() {
        let m = RepeatModel {
            flap_prob: 1.0,
            ..RepeatModel::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let reps = m.sample_repeats(&mut rng, SimTime::ORIGIN, SimTime::from_days(100_000));
        assert!(reps.len() >= 300, "flapper count {}", reps.len());
        // Gaps are short — the whole episode spans roughly a year.
        let span_days = reps.last().unwrap().since(reps[0]).as_days_f64();
        assert!(span_days < 3.0 * 450.0);
    }

    #[test]
    fn sync_groups_share_schedule_with_small_skew() {
        let m = SyncRepeatModel::default();
        let mut rng = StdRng::seed_from_u64(5);
        let (times, offsets) =
            m.sample_group_schedule(&mut rng, SimTime::from_days(10), SimTime::from_days(400));
        assert!(times.len() >= 2);
        assert_eq!(offsets.len(), 2);
        for &o in &offsets {
            assert!(o <= m.skew_secs);
        }
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
