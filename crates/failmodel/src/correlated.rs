//! Correlated component failures (§V-B, Tables VI–VII).
//!
//! Two mechanisms:
//!
//! * **Misc companions** — 71.5% of two-component same-day failures involve
//!   a miscellaneous report: the FMS detects a component failure and an
//!   operator *also* notices and immediately files a manual ticket.
//! * **Causal pairs** — one failure physically causes another, e.g. the
//!   paper's Table VII power-supply failures dragging down fans within a
//!   minute or two.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use dcf_trace::{ComponentClass, SimDuration};

/// A causal propagation rule: a failure of `primary` triggers a failure of
/// `secondary` on the same server with probability `prob`, within
/// `max_delay`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CausalPair {
    /// The causing class.
    pub primary: ComponentClass,
    /// The caused class.
    pub secondary: ComponentClass,
    /// Trigger probability per primary failure.
    pub prob: f64,
    /// Maximum propagation delay.
    pub max_delay: SimDuration,
}

/// The correlated-failure model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationModel {
    /// Per-class probability that an auto-detected failure gets a same-day
    /// manual miscellaneous companion ticket.
    misc_companion: [f64; 11],
    /// Physical causation rules.
    pub causal_pairs: Vec<CausalPair>,
    /// Delay of the companion misc ticket (uniform up to this bound).
    pub misc_companion_delay: SimDuration,
}

impl Default for CorrelationModel {
    fn default() -> Self {
        let mut misc_companion = [0.0; 11];
        // Tuned against Table VI: HDD–misc pairs dominate (349 of ~550
        // correlated pairs), rarer classes have higher per-failure rates
        // because a flash/motherboard failure is more alarming.
        misc_companion[ComponentClass::Hdd.index()] = 1.15e-3;
        misc_companion[ComponentClass::Memory.index()] = 4.0e-3;
        misc_companion[ComponentClass::Power.index()] = 4.4e-3;
        misc_companion[ComponentClass::RaidCard.index()] = 4.3e-3;
        misc_companion[ComponentClass::FlashCard.index()] = 1.2e-2;
        misc_companion[ComponentClass::Motherboard.index()] = 1.0e-2;
        misc_companion[ComponentClass::Ssd.index()] = 7.0e-3;
        misc_companion[ComponentClass::Fan.index()] = 6.0e-3;
        misc_companion[ComponentClass::HddBackboard.index()] = 8.0e-3;
        misc_companion[ComponentClass::Cpu.index()] = 2.0e-2;
        Self {
            misc_companion,
            causal_pairs: vec![
                // Table VII: PSU failure takes fans down within ~2 minutes.
                CausalPair {
                    primary: ComponentClass::Power,
                    secondary: ComponentClass::Fan,
                    prob: 4.0e-3,
                    max_delay: SimDuration::from_minutes(2),
                },
                // A failing backboard surfaces as disk errors shortly after.
                CausalPair {
                    primary: ComponentClass::HddBackboard,
                    secondary: ComponentClass::Hdd,
                    prob: 9.0e-2,
                    max_delay: SimDuration::from_hours(1),
                },
                // Board trouble corrupts memory channels.
                CausalPair {
                    primary: ComponentClass::Motherboard,
                    secondary: ComponentClass::Memory,
                    prob: 3.0e-2,
                    max_delay: SimDuration::from_hours(1),
                },
            ],
            misc_companion_delay: SimDuration::from_hours(10),
        }
    }
}

impl CorrelationModel {
    /// A model with all correlation channels off.
    pub fn disabled() -> Self {
        Self {
            misc_companion: [0.0; 11],
            causal_pairs: Vec::new(),
            misc_companion_delay: SimDuration::from_hours(10),
        }
    }

    /// The misc-companion probability for a class.
    pub fn misc_companion_prob(&self, class: ComponentClass) -> f64 {
        self.misc_companion[class.index()]
    }

    /// Sets the misc-companion probability for a class.
    ///
    /// # Panics
    ///
    /// Panics unless `prob` is a probability.
    pub fn set_misc_companion_prob(&mut self, class: ComponentClass, prob: f64) {
        assert!(
            (0.0..=1.0).contains(&prob),
            "prob must be in [0,1], got {prob}"
        );
        self.misc_companion[class.index()] = prob;
    }

    /// Rolls whether a failure of `class` gets a companion misc ticket, and
    /// if so, the delay until the operator files it.
    pub fn roll_misc_companion(
        &self,
        rng: &mut dyn RngCore,
        class: ComponentClass,
    ) -> Option<SimDuration> {
        if class == ComponentClass::Miscellaneous {
            return None;
        }
        let p = self.misc_companion_prob(class);
        (p > 0.0 && rng.random::<f64>() < p).then(|| {
            SimDuration::from_secs(
                (rng.random::<f64>() * self.misc_companion_delay.as_secs() as f64) as u64,
            )
        })
    }

    /// Rolls causal propagations for a failure of `class`, returning the
    /// `(secondary class, delay)` of each triggered failure.
    pub fn roll_causal(
        &self,
        rng: &mut dyn RngCore,
        class: ComponentClass,
    ) -> Vec<(ComponentClass, SimDuration)> {
        let mut out = Vec::new();
        self.roll_causal_into(rng, class, &mut out);
        out
    }

    /// [`roll_causal`](Self::roll_causal) into a caller-owned buffer so hot
    /// loops can reuse one allocation. Appends to `out` (does not clear it)
    /// and consumes exactly the same RNG draws as the allocating form.
    pub fn roll_causal_into(
        &self,
        rng: &mut dyn RngCore,
        class: ComponentClass,
        out: &mut Vec<(ComponentClass, SimDuration)>,
    ) {
        for p in self.causal_pairs.iter().filter(|p| p.primary == class) {
            if rng.random::<f64>() < p.prob {
                let delay = SimDuration::from_secs(
                    (rng.random::<f64>() * p.max_delay.as_secs() as f64) as u64 + 1,
                );
                out.push((p.secondary, delay));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn misc_never_gets_a_misc_companion() {
        let m = CorrelationModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            assert!(m
                .roll_misc_companion(&mut rng, ComponentClass::Miscellaneous)
                .is_none());
        }
    }

    #[test]
    fn companion_rate_tracks_probability() {
        let m = CorrelationModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 400_000;
        let hits = (0..n)
            .filter(|_| {
                m.roll_misc_companion(&mut rng, ComponentClass::Hdd)
                    .is_some()
            })
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 1.15e-3).abs() < 3e-4, "rate {rate}");
    }

    #[test]
    fn companion_delay_is_bounded() {
        let mut m = CorrelationModel::default();
        m.set_misc_companion_prob(ComponentClass::Cpu, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let d = m
                .roll_misc_companion(&mut rng, ComponentClass::Cpu)
                .unwrap();
            assert!(d <= m.misc_companion_delay);
        }
    }

    #[test]
    fn power_failures_can_take_fans_down_quickly() {
        let mut m = CorrelationModel::default();
        m.causal_pairs[0].prob = 1.0;
        let mut rng = StdRng::seed_from_u64(4);
        let hits = m.roll_causal(&mut rng, ComponentClass::Power);
        assert_eq!(hits.len(), 1);
        let (class, delay) = hits[0];
        assert_eq!(class, ComponentClass::Fan);
        assert!(delay <= SimDuration::from_minutes(2));
        assert!(delay.as_secs() >= 1);
    }

    #[test]
    fn unrelated_classes_trigger_nothing() {
        let m = CorrelationModel::default();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            assert!(m.roll_causal(&mut rng, ComponentClass::Cpu).is_empty());
        }
    }

    #[test]
    fn disabled_model_is_silent() {
        let m = CorrelationModel::disabled();
        let mut rng = StdRng::seed_from_u64(6);
        for class in ComponentClass::ALL {
            for _ in 0..100 {
                assert!(m.roll_misc_companion(&mut rng, class).is_none());
                assert!(m.roll_causal(&mut rng, class).is_empty());
            }
        }
    }

    #[test]
    #[should_panic(expected = "prob must be in [0,1]")]
    fn set_prob_validates() {
        CorrelationModel::default().set_misc_companion_prob(ComponentClass::Hdd, 1.5);
    }
}
