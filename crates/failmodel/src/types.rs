//! Failure-type mixtures per component class (Figure 2).
//!
//! The paper's Figure 2 gives per-class failure-type shares for HDD, RAID
//! card, flash card and memory; the miscellaneous split (44% no
//! description / ~25% suspected HDD / ~25% "server crash") comes from
//! §II-A. Remaining classes use representative mixes.

use rand::{Rng, RngCore};

use dcf_trace::{ComponentClass, FailureType};

/// `(type, weight)` mixture for a component class; weights sum to 1.
pub fn type_mixture(class: ComponentClass) -> &'static [(FailureType, f64)] {
    use FailureType::*;
    match class {
        ComponentClass::Hdd => &[
            (SmartFail, 0.40),
            (RaidPdPreErr, 0.15),
            (NotReady, 0.12),
            (TooMany, 0.09),
            (Missing, 0.08),
            (PendingLba, 0.08),
            (DStatus, 0.05),
            (SixthFixing, 0.03),
        ],
        ComponentClass::RaidCard => &[
            (BbtFail, 0.50),
            (HighMaxBbRate, 0.30),
            (RaidVdNoBbuCacheErr, 0.20),
        ],
        ComponentClass::FlashCard => &[
            (FlashBbtFail, 0.45),
            (FlashHighBbRate, 0.35),
            (FlashMissing, 0.20),
        ],
        ComponentClass::Memory => &[(DimmCe, 0.70), (DimmUe, 0.30)],
        ComponentClass::Ssd => &[
            (SsdSmartFail, 0.50),
            (SsdWearOut, 0.30),
            (SsdNotReady, 0.20),
        ],
        ComponentClass::Power => &[
            (PsuVoltageFail, 0.50),
            (PsuFanFail, 0.30),
            (PsuMissing, 0.20),
        ],
        ComponentClass::Fan => &[(FanSpeedLow, 0.70), (FanStall, 0.30)],
        ComponentClass::Motherboard => &[
            (MbSensorFail, 0.50),
            (MbPostFail, 0.40),
            (SasCardFail, 0.10),
        ],
        ComponentClass::HddBackboard => &[(BackboardErr, 1.0)],
        ComponentClass::Cpu => &[(CpuMce, 0.60), (CpuCacheErr, 0.40)],
        ComponentClass::Miscellaneous => &[
            (ManualNoDescription, 0.44),
            (ManualSuspectHdd, 0.25),
            (ManualServerCrash, 0.25),
            (ManualOther, 0.06),
        ],
    }
}

/// Samples a failure type for `class` according to its mixture.
pub fn sample_type(rng: &mut dyn RngCore, class: ComponentClass) -> FailureType {
    let mixture = type_mixture(class);
    let mut pick: f64 = rng.random();
    for &(t, w) in mixture {
        if pick < w {
            return t;
        }
        pick -= w;
    }
    mixture.last().expect("mixtures are non-empty").0
}

/// A short `error_detail` string for a sampled failure.
pub fn detail_for(t: FailureType) -> String {
    detail_str(t).to_string()
}

/// [`detail_for`] as a `&'static str` — every variant's detail is a fixed
/// string, so ticket assembly can borrow instead of formatting per ticket.
pub fn detail_str(t: FailureType) -> &'static str {
    use FailureType::*;
    match t {
        SmartFail => "SMART value exceeds predefined threshold",
        RaidPdPreErr => "prediction error count exceeds threshold",
        Missing => "device file could not be detected",
        NotReady => "device file could not be accessed",
        PendingLba => "failures detected on unaccessed sectors",
        TooMany => "large number of failed sectors detected",
        DStatus => "IO requests stuck in D status",
        SixthFixing => "repeated fix attempt on same device",
        BbtFail => "bad block table could not be accessed",
        HighMaxBbRate => "max bad block rate exceeds threshold",
        RaidVdNoBbuCacheErr => "abnormal cache setting due to BBU",
        DimmCe => "large number of correctable errors",
        DimmUe => "uncorrectable memory errors detected",
        ManualNoDescription => "", // 44% carry no description
        ManualSuspectHdd => "suspect hard drive problem",
        ManualServerCrash => "server crashes, reason unclear",
        // Remaining auto-detected types: "<name> detected by FMS agent",
        // spelled out so the strings stay static (same text the old
        // `format!("{t} detected by FMS agent")` fallback produced).
        FlashBbtFail => "FlashBBTFail detected by FMS agent",
        FlashHighBbRate => "FlashHighBbRate detected by FMS agent",
        FlashMissing => "FlashMissing detected by FMS agent",
        SsdSmartFail => "SSDSmartFail detected by FMS agent",
        SsdWearOut => "SSDWearOut detected by FMS agent",
        SsdNotReady => "SSDNotReady detected by FMS agent",
        PsuVoltageFail => "PSUVoltageFail detected by FMS agent",
        PsuFanFail => "PSUFanFail detected by FMS agent",
        PsuMissing => "PSUMissing detected by FMS agent",
        FanSpeedLow => "FanSpeedLow detected by FMS agent",
        FanStall => "FanStall detected by FMS agent",
        MbSensorFail => "MBSensorFail detected by FMS agent",
        MbPostFail => "MBPostFail detected by FMS agent",
        SasCardFail => "SASCardFail detected by FMS agent",
        BackboardErr => "BackboardErr detected by FMS agent",
        CpuMce => "CPUMce detected by FMS agent",
        CpuCacheErr => "CPUCacheErr detected by FMS agent",
        ManualOther => "Manual-Other detected by FMS agent",
        // FailureType is #[non_exhaustive]; a variant added without a
        // detail arm is caught by `static_details_match_the_allocating_form`.
        _ => "detected by FMS agent",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mixtures_sum_to_one_and_match_class() {
        for class in ComponentClass::ALL {
            let mix = type_mixture(class);
            let total: f64 = mix.iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "{class} weights sum to {total}");
            for (t, w) in mix {
                assert_eq!(t.class(), class, "{t} listed under {class}");
                assert!(*w > 0.0);
            }
        }
    }

    #[test]
    fn sampling_tracks_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let smart = (0..n)
            .filter(|_| sample_type(&mut rng, ComponentClass::Hdd) == FailureType::SmartFail)
            .count();
        let frac = smart as f64 / n as f64;
        assert!((frac - 0.40).abs() < 0.01, "SMARTFail share {frac}");
    }

    #[test]
    fn misc_split_matches_paper() {
        let mix = type_mixture(ComponentClass::Miscellaneous);
        let no_desc = mix
            .iter()
            .find(|(t, _)| *t == FailureType::ManualNoDescription)
            .unwrap()
            .1;
        assert!((no_desc - 0.44).abs() < 1e-12);
    }

    #[test]
    fn details_are_stable() {
        assert!(detail_for(FailureType::SmartFail).contains("SMART"));
        assert!(detail_for(FailureType::ManualNoDescription).is_empty());
        assert!(detail_for(FailureType::FanStall).contains("FanStall"));
    }

    #[test]
    fn static_details_match_the_allocating_form() {
        // The generic arms must spell each type exactly as Display does —
        // the text the pre-static `format!` fallback produced.
        for t in FailureType::ALL {
            let s = detail_str(t);
            assert_eq!(s, detail_for(t));
            if s.ends_with("detected by FMS agent") {
                assert_eq!(s, format!("{t} detected by FMS agent"));
            }
        }
    }
}
