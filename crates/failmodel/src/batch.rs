//! Batch-failure events (§V-A): large groups of servers reporting the same
//! failure within a short window.
//!
//! The paper's case studies drive the event taxonomy:
//!
//! * **Case 1** — thousands of same-model HDDs SMART-failing overnight
//!   (firmware/homogeneity): `FirmwareBug` events target a
//!   (product line, generation) cluster inside one data center.
//! * **Case 2** — ~50 motherboards in two one-hour windows, root-caused to
//!   faulty SAS cards: `SasCardBatch`.
//! * **Case 3** — ~100 servers losing power over 12 hours via a single
//!   PDU: `PduOutage`.
//! * Operator/provider mistakes (the August 2016 PDU misoperation):
//!   `OperatorMistake`, surfacing as bursts of miscellaneous tickets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dcf_fleet::Fleet;
use dcf_stats::{poisson_count, ContinuousDistribution, LogNormal};

use crate::types::sample_type;
use dcf_trace::{ComponentClass, DataCenterId, FailureType, ProductLineId, SimDuration, SimTime};

/// Root cause of a batch event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchCause {
    /// Shared design/firmware flaw in a homogeneous component population.
    FirmwareBug,
    /// Single power distribution unit failing.
    PduOutage,
    /// Faulty SAS cards surfacing as motherboard failures.
    SasCardBatch,
    /// Human mistake (operator or electricity provider).
    OperatorMistake,
}

/// One batch event to be applied by the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchEvent {
    /// Root cause.
    pub cause: BatchCause,
    /// Component class of the resulting FOTs.
    pub class: ComponentClass,
    /// Failure type of the resulting FOTs (homogeneous within the batch).
    pub failure_type: FailureType,
    /// When the event begins.
    pub start: SimTime,
    /// Window over which affected servers report.
    pub window: SimDuration,
    /// Target number of affected servers (capped at the cluster size by the
    /// simulator; `None` means "fraction of the cluster" below applies).
    pub target_size: usize,
    /// For mega events: fraction of the target cluster affected instead of
    /// an absolute size (the paper's Case 1 hit 32% of a product line).
    pub cluster_fraction: Option<f64>,
    /// Data center hit.
    pub dc: DataCenterId,
    /// Product-line cluster (firmware-style events).
    pub line: Option<ProductLineId>,
    /// Hardware generation of the affected model (firmware-style events).
    pub generation: Option<u8>,
    /// PDU group (power events).
    pub pdu: Option<u32>,
    /// Minimum component age in days for a server to be affected — wear-out
    /// related firmware issues (e.g. flash) only hit aged populations.
    pub min_age_days: u64,
}

/// Yearly event rates and size distributions for the batch generator.
///
/// Rates are events/year at paper scale and scale linearly with fleet size;
/// the `small`/`medium` fleets keep realistic *relative* batch pressure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchModel {
    /// Small same-model HDD batches per year (tens of drives).
    pub hdd_small_per_year: f64,
    /// Medium HDD batches per year (low hundreds).
    pub hdd_medium_per_year: f64,
    /// Mega HDD batches per year (Case 1 scale, a large slice of a line).
    pub hdd_mega_per_year: f64,
    /// Memory firmware batches per year.
    pub memory_per_year: f64,
    /// RAID-card firmware batches per year.
    pub raid_per_year: f64,
    /// Flash-card firmware batches per year.
    pub flash_per_year: f64,
    /// Fan batches per year.
    pub fan_per_year: f64,
    /// PDU outages per year.
    pub pdu_per_year: f64,
    /// SAS-card (motherboard) batches per year.
    pub sas_per_year: f64,
    /// Operator-mistake misc bursts per year.
    pub misc_per_year: f64,
}

impl Default for BatchModel {
    fn default() -> Self {
        Self {
            hdd_small_per_year: 70.0,
            hdd_medium_per_year: 140.0,
            hdd_mega_per_year: 3.0,
            memory_per_year: 3.5,
            raid_per_year: 2.2,
            flash_per_year: 1.2,
            fan_per_year: 0.6,
            pdu_per_year: 3.0,
            sas_per_year: 1.0,
            misc_per_year: 20.0,
        }
    }
}

impl BatchModel {
    /// A model with every batch channel disabled — the `ablation_no_batch`
    /// scenario, under which the paper expects TBF to become well behaved.
    pub fn disabled() -> Self {
        Self {
            hdd_small_per_year: 0.0,
            hdd_medium_per_year: 0.0,
            hdd_mega_per_year: 0.0,
            memory_per_year: 0.0,
            raid_per_year: 0.0,
            flash_per_year: 0.0,
            fan_per_year: 0.0,
            pdu_per_year: 0.0,
            sas_per_year: 0.0,
            misc_per_year: 0.0,
        }
    }

    /// Generates all batch events for a fleet over `[start, end)`.
    ///
    /// Deterministic in `(self, fleet, seed)`. Event rates scale with
    /// fleet size relative to paper scale (160k servers).
    pub fn generate(
        &self,
        fleet: &Fleet,
        start: SimTime,
        end: SimTime,
        seed: u64,
    ) -> Vec<BatchEvent> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c_04ee_7000);
        let scale = fleet.servers().len() as f64 / 160_000.0;
        let mut events = Vec::new();

        let spawn = |rng: &mut StdRng,
                     events: &mut Vec<BatchEvent>,
                     per_year: f64,
                     f: &mut dyn FnMut(&mut StdRng, SimTime) -> BatchEvent| {
            let days = end.since(start).as_days_f64();
            let expected = per_year * scale * days / 365.25;
            let count = poisson_count(rng, expected);
            for _ in 0..count {
                let at =
                    start + SimDuration::from_secs((rng.random::<f64>() * days * 86_400.0) as u64);
                events.push(f(rng, at));
            }
        };

        let pick_line_cluster = |rng: &mut StdRng, fleet: &Fleet| {
            // Weighted by line size so big lines attract big batches.
            let total = fleet.servers().len();
            let target = rng.random_range(0..total);
            let mut acc = 0usize;
            for line in fleet.product_lines() {
                acc += fleet.servers_of_line(line.id()).len();
                if target < acc {
                    let servers = fleet.servers_of_line(line.id());
                    let s = &fleet.server(servers[rng.random_range(0..servers.len())]);
                    return (line.id(), s.data_center, s.generation);
                }
            }
            let line = fleet.product_lines().last().expect("non-empty fleet");
            (line.id(), fleet.data_centers()[0].id(), 0)
        };

        // HDD firmware batches, three size tiers.
        let tiers: [(f64, f64, f64, Option<f64>); 3] = [
            (self.hdd_small_per_year, 45.0, 0.9, None),
            (self.hdd_medium_per_year, 360.0, 0.45, None),
            (self.hdd_mega_per_year, 0.0, 0.0, Some(0.32)),
        ];
        for (rate, median, sigma, fraction) in tiers {
            spawn(&mut rng, &mut events, rate, &mut |rng, at| {
                let (line, dc, generation) = pick_line_cluster(rng, fleet);
                let size = if fraction.is_some() {
                    0
                } else {
                    sample_size(rng, median, sigma)
                };
                BatchEvent {
                    cause: BatchCause::FirmwareBug,
                    class: ComponentClass::Hdd,
                    // Each firmware flaw trips its own detector signature.
                    failure_type: sample_type(rng, ComponentClass::Hdd),
                    start: at,
                    window: SimDuration::from_hours(rng.random_range(2..=8)),
                    target_size: size,
                    cluster_fraction: fraction,
                    dc,
                    line: Some(line),
                    // Mega events span all hardware generations of the line
                    // (the paper's Case 1 product line mixed five).
                    generation: if fraction.is_some() {
                        None
                    } else {
                        Some(generation)
                    },
                    pdu: None,
                    min_age_days: 0,
                }
            });
        }

        // Other firmware-style component batches.
        let component_batches: [(f64, ComponentClass, FailureType, f64, f64); 4] = [
            (
                self.memory_per_year,
                ComponentClass::Memory,
                FailureType::DimmCe,
                170.0,
                0.5,
            ),
            (
                self.raid_per_year,
                ComponentClass::RaidCard,
                FailureType::BbtFail,
                150.0,
                0.5,
            ),
            (
                self.flash_per_year,
                ComponentClass::FlashCard,
                FailureType::FlashBbtFail,
                110.0,
                0.5,
            ),
            (
                self.fan_per_year,
                ComponentClass::Fan,
                FailureType::FanSpeedLow,
                80.0,
                0.4,
            ),
        ];
        for (rate, class, _ftype, median, sigma) in component_batches {
            let min_age_days = if class == ComponentClass::FlashCard {
                360
            } else {
                0
            };
            spawn(&mut rng, &mut events, rate, &mut |rng, at| {
                let (line, dc, generation) = pick_line_cluster(rng, fleet);
                BatchEvent {
                    cause: BatchCause::FirmwareBug,
                    class,
                    failure_type: sample_type(rng, class),
                    start: at,
                    window: SimDuration::from_hours(rng.random_range(2..=10)),
                    target_size: sample_size(rng, median, sigma),
                    cluster_fraction: None,
                    dc,
                    line: Some(line),
                    generation: Some(generation),
                    pdu: None,
                    min_age_days,
                }
            });
        }

        // PDU outages (power class, ~100 servers over up to 12 hours).
        spawn(&mut rng, &mut events, self.pdu_per_year, &mut |rng, at| {
            let dc = &fleet.data_centers()[rng.random_range(0..fleet.data_centers().len())];
            let pdu = rng.random_range(0..dc.pdu_count().max(1));
            BatchEvent {
                cause: BatchCause::PduOutage,
                class: ComponentClass::Power,
                failure_type: FailureType::PsuVoltageFail,
                start: at,
                window: SimDuration::from_hours(12),
                target_size: usize::MAX, // everyone on the PDU (capped later)
                cluster_fraction: Some(rng.random_range(0.4..0.9)),
                dc: dc.id(),
                line: None,
                generation: None,
                pdu: Some(pdu),
                min_age_days: 0,
            }
        });

        // SAS-card batches (motherboard class, Case 2).
        spawn(&mut rng, &mut events, self.sas_per_year, &mut |rng, at| {
            let (line, dc, generation) = pick_line_cluster(rng, fleet);
            BatchEvent {
                cause: BatchCause::SasCardBatch,
                class: ComponentClass::Motherboard,
                failure_type: FailureType::SasCardFail,
                start: at,
                window: SimDuration::from_hours(2),
                target_size: sample_size(rng, 50.0, 0.3),
                cluster_fraction: None,
                dc,
                line: Some(line),
                generation: Some(generation),
                pdu: None,
                min_age_days: 0,
            }
        });

        // Operator-mistake bursts (miscellaneous tickets).
        spawn(&mut rng, &mut events, self.misc_per_year, &mut |rng, at| {
            let (line, dc, _) = pick_line_cluster(rng, fleet);
            BatchEvent {
                cause: BatchCause::OperatorMistake,
                class: ComponentClass::Miscellaneous,
                failure_type: FailureType::ManualServerCrash,
                start: at,
                window: SimDuration::from_hours(rng.random_range(3..=12)),
                target_size: sample_size(rng, 130.0, 0.8),
                cluster_fraction: None,
                dc,
                line: Some(line),
                generation: None,
                pdu: None,
                min_age_days: 0,
            }
        });

        events.sort_by_key(|e| e.start);
        events
    }
}

fn sample_size(rng: &mut StdRng, median: f64, sigma: f64) -> usize {
    let d = LogNormal::from_median(median, sigma).expect("valid size distribution");
    (d.sample(rng).round() as usize).max(5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcf_fleet::{FleetBuilder, FleetConfig};

    fn fleet() -> Fleet {
        FleetBuilder::new(FleetConfig::small())
            .seed(1)
            .build()
            .unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let f = fleet();
        let m = BatchModel::default();
        let a = m.generate(&f, SimTime::ORIGIN, SimTime::from_days(360), 9);
        let b = m.generate(&f, SimTime::ORIGIN, SimTime::from_days(360), 9);
        assert_eq!(a, b);
        let c = m.generate(&f, SimTime::ORIGIN, SimTime::from_days(360), 10);
        assert_ne!(a, c);
    }

    #[test]
    fn disabled_model_generates_nothing() {
        let f = fleet();
        let events =
            BatchModel::disabled().generate(&f, SimTime::ORIGIN, SimTime::from_days(360), 1);
        assert!(events.is_empty());
    }

    #[test]
    fn events_are_sorted_and_in_window() {
        let f = fleet();
        let start = SimTime::from_days(100);
        let end = SimTime::from_days(400);
        // Boost rates so the small fleet still gets events.
        let mut m = BatchModel::default();
        m.hdd_small_per_year *= 100.0;
        let events = m.generate(&f, start, end, 2);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        for e in &events {
            assert!(e.start >= start && e.start < end);
        }
    }

    #[test]
    fn rates_scale_with_fleet_size() {
        let f = fleet(); // 2k servers = 1/80 of paper scale
        let mut m = BatchModel::disabled();
        m.hdd_small_per_year = 80.0 * 365.25; // → ~1/day expected at this scale
        let events = m.generate(&f, SimTime::ORIGIN, SimTime::from_days(1000), 3);
        let per_day = events.len() as f64 / 1000.0;
        assert!((per_day - 1.0).abs() < 0.15, "got {per_day}/day");
    }

    #[test]
    fn pdu_events_carry_pdu_and_power_class() {
        let f = fleet();
        let mut m = BatchModel::disabled();
        m.pdu_per_year = 80.0 * 20.0;
        let events = m.generate(&f, SimTime::ORIGIN, SimTime::from_days(365), 4);
        assert!(!events.is_empty());
        for e in &events {
            assert_eq!(e.cause, BatchCause::PduOutage);
            assert_eq!(e.class, ComponentClass::Power);
            assert!(e.pdu.is_some());
            assert!(e.line.is_none());
        }
    }

    #[test]
    fn mega_events_use_cluster_fraction() {
        let f = fleet();
        let mut m = BatchModel::disabled();
        m.hdd_mega_per_year = 80.0 * 50.0;
        let events = m.generate(&f, SimTime::ORIGIN, SimTime::from_days(365), 5);
        assert!(!events.is_empty());
        for e in &events {
            assert_eq!(e.cluster_fraction, Some(0.32));
            // Mega events target a whole line across generations (Case 1).
            assert!(e.line.is_some() && e.generation.is_none());
        }
    }
}
