//! # dcf-fms
//!
//! The failure management system (FMS) of the DSN'17 study: the central
//! service (Figure 1) that turns agent detections and manual reports into
//! failure operation tickets, plus the human-operator behavior model that
//! closes them.
//!
//! * [`TicketFactory`] — the central ticket writer (id sequence, schema
//!   stamping).
//! * [`OperatorModel`] — per-product-line response-time profiles, warranty
//!   handling, decommission decisions (§VI).
//! * [`FalseAlarmModel`] — the 1.7% false-alarm stream (Table I).
//! * [`MonitoringModel`] — the §VIII FMS roll-out artifact (agent coverage
//!   growing over the window).
//! * [`FmsMetrics`] — `dcf-obs` counter handles for the detection /
//!   operator / false-alarm paths, threaded through the engine's hot
//!   loops.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod false_alarm;
mod monitoring;
mod operator;
mod telemetry;
mod ticketing;

pub use false_alarm::FalseAlarmModel;
pub use monitoring::MonitoringModel;
pub use operator::{class_rt_multiplier, OperatorModel, ResponseProfile, DEPLOYMENT_PHASE_DAYS};
pub use telemetry::FmsMetrics;
pub use ticketing::{Detection, TicketFactory};
