//! The operator-response model (§VI).
//!
//! The paper's central §VI findings, all encoded here:
//!
//! * RT is very long in general — MTTR 42.2 days vs a 6.1-day median, with
//!   10% of tickets open beyond 140 days (Figure 9): responses are heavy
//!   tailed because operators of fault-tolerant products batch up failures
//!   and feel little urgency.
//! * Per-class differences (Figure 10): SSD and (deployment-phase)
//!   miscellaneous tickets close within hours; HDD, fan and memory take
//!   7–18 days.
//! * Per-line differences (Figure 11): the top-1% biggest lines (large
//!   Hadoop deployments) have ~47-day median RT, while among lines with
//!   fewer than 100 failures about a fifth have >100-day medians
//!   (rarely-visited queues).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use dcf_stats::{ContinuousDistribution, LogNormal};
use dcf_trace::{
    ComponentClass, FaultTolerance, FotCategory, OperatorAction, OperatorId, OperatorResponse,
    ProductLineId, ProductLineMeta, SimDuration, SimTime,
};

/// Age below which a server counts as "in deployment": manual tickets get
/// streamlined same-day handling (§VI-B).
pub const DEPLOYMENT_PHASE_DAYS: u64 = 60;

/// Response-time distribution of one product line's operator team:
/// lognormal with the given median (days) and log-sigma.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseProfile {
    /// Median response time in days for a nominal (multiplier 1) class.
    pub median_days: f64,
    /// Lognormal sigma; bigger = heavier tail (periodic batch review).
    pub sigma: f64,
}

impl ResponseProfile {
    fn sample_days(&self, rng: &mut dyn RngCore, class_multiplier: f64) -> f64 {
        let d = LogNormal::from_median(self.median_days * class_multiplier, self.sigma)
            .expect("profile medians are positive");
        let mut days = d.sample(rng);
        // Beyond ~4 months the queue eventually gets swept — operators never
        // abandon tickets outright (§VI-A), so the extreme tail compresses.
        if days > 170.0 {
            days = 170.0 + (days - 170.0) * 0.13;
        }
        days.clamp(0.003, 500.0) // ≥ ~4 minutes, ≤ the paper's extremes
    }
}

/// Relative response speed per component class (multiplies the line median).
///
/// SSDs are urgent (costly, little redundancy, online products);
/// HDD/fan/memory are the classic "the software tolerates it" classes.
pub fn class_rt_multiplier(class: ComponentClass) -> f64 {
    match class {
        ComponentClass::Ssd => 0.04,
        ComponentClass::Miscellaneous => 0.25,
        ComponentClass::FlashCard => 0.55,
        ComponentClass::Cpu => 0.6,
        ComponentClass::RaidCard => 0.7,
        ComponentClass::Motherboard => 0.8,
        ComponentClass::Power => 0.85,
        ComponentClass::HddBackboard => 0.85,
        ComponentClass::Memory => 1.1,
        ComponentClass::Hdd => 1.3,
        ComponentClass::Fan => 1.35,
    }
}

/// The full operator model: per-line response profiles plus the operator
/// roster assigned to each line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorModel {
    profiles: Vec<ResponseProfile>,
    operators: Vec<Vec<OperatorId>>,
    false_alarm: ResponseProfile,
    /// Probability that a *fatal* out-of-warranty failure leads to server
    /// decommissioning (vs being left, partially failed, in production).
    pub decommission_prob: f64,
}

impl OperatorModel {
    /// Builds per-line profiles deterministically from `seed`.
    ///
    /// Line ranks follow ids (the fleet builder orders lines largest
    /// first), which drives the Figure 11 structure:
    ///
    /// * top 1% of lines — slow batch-review teams (median ≈ 47 d);
    /// * other lines — medians by fault tolerance (high → slow);
    /// * a quarter of the small-line tail — neglected queues with >100-day
    ///   medians.
    pub fn new(seed: u64, lines: &[ProductLineMeta]) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0be7_a7ed_0f17_ce5e);
        let n = lines.len();
        let top_cut = (n / 100).max(3);
        let tail_start = n * 3 / 5;
        let mut profiles = Vec::with_capacity(n);
        let mut operators = Vec::with_capacity(n);
        let mut next_op: u16 = 0;
        for (rank, line) in lines.iter().enumerate() {
            let jitter = |rng: &mut StdRng, sigma: f64| -> f64 {
                let u1: f64 = rng.random::<f64>().max(1e-300);
                let u2: f64 = rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (sigma * z).exp()
            };
            let profile = if rank < top_cut {
                ResponseProfile {
                    median_days: 47.0 * jitter(&mut rng, 0.15),
                    sigma: 1.70,
                }
            } else if rank >= tail_start && rng.random::<f64>() < 0.32 {
                // Neglected small-line queue.
                ResponseProfile {
                    median_days: 135.0 * jitter(&mut rng, 0.30),
                    sigma: 0.8,
                }
            } else {
                match line.fault_tolerance {
                    FaultTolerance::High => ResponseProfile {
                        median_days: 6.5 * jitter(&mut rng, 0.7),
                        sigma: 1.65,
                    },
                    FaultTolerance::Medium => ResponseProfile {
                        median_days: 1.9 * jitter(&mut rng, 0.6),
                        sigma: 1.05,
                    },
                    FaultTolerance::Low => ResponseProfile {
                        median_days: 0.7 * jitter(&mut rng, 0.5),
                        sigma: 0.85,
                    },
                }
            };
            profiles.push(profile);
            let team_size = rng.random_range(2..=5u16);
            let team: Vec<OperatorId> = (0..team_size)
                .map(|_| {
                    let id = OperatorId::new(next_op);
                    next_op = next_op.wrapping_add(1);
                    id
                })
                .collect();
            operators.push(team);
        }
        Self {
            profiles,
            operators,
            // Paper Figure 9: false alarms close a bit faster (median 4.9 d)
            // but still heavy-tailed (mean 19.1 d ⇒ σ ≈ 1.65).
            false_alarm: ResponseProfile {
                median_days: 4.9,
                sigma: 1.65,
            },
            decommission_prob: 0.3,
        }
    }

    /// The response profile of a product line.
    ///
    /// # Panics
    ///
    /// Panics on a line id the model was not built with.
    pub fn profile(&self, line: ProductLineId) -> &ResponseProfile {
        &self.profiles[line.index()]
    }

    /// Samples the operator response for a ticket, or `None` for `D_error`
    /// tickets (out-of-warranty: nobody responds).
    ///
    /// `server_age` is the server's age at failure time, used for the
    /// deployment-phase fast path of miscellaneous tickets.
    pub fn sample_response(
        &self,
        rng: &mut dyn RngCore,
        line: ProductLineId,
        class: ComponentClass,
        category: FotCategory,
        error_time: SimTime,
        server_age: SimDuration,
    ) -> Option<OperatorResponse> {
        if !category.has_response() {
            return None;
        }
        let (profile, action) = match category {
            FotCategory::FalseAlarm => (&self.false_alarm, OperatorAction::MarkFalseAlarm),
            _ => (self.profile(line), OperatorAction::IssueRepairOrder),
        };
        let mult = if class == ComponentClass::Miscellaneous
            && server_age < SimDuration::from_days(DEPLOYMENT_PHASE_DAYS)
        {
            // Streamlined install/test/debug workflow: hours, not days.
            0.012
        } else {
            class_rt_multiplier(class)
        };
        let days = profile.sample_days(rng, mult);
        let team = &self.operators[line.index()];
        let operator = team[rng.random_range(0..team.len())];
        Some(OperatorResponse {
            operator,
            op_time: error_time + SimDuration::from_secs((days * 86_400.0) as u64),
            action,
        })
    }

    /// Whether an out-of-warranty fatal failure leads to decommissioning
    /// the server (it stops producing tickets afterwards).
    pub fn roll_decommission(&self, rng: &mut dyn RngCore, fatal: bool) -> bool {
        let p = if fatal {
            self.decommission_prob
        } else {
            self.decommission_prob * 0.1
        };
        rng.random::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcf_trace::WorkloadKind;

    fn lines(n: usize) -> Vec<ProductLineMeta> {
        (0..n)
            .map(|i| ProductLineMeta {
                id: ProductLineId::new(i as u16),
                name: format!("pl-{i}"),
                workload: if i % 3 == 0 {
                    WorkloadKind::BatchProcessing
                } else {
                    WorkloadKind::OnlineService
                },
                fault_tolerance: if i % 3 == 0 {
                    FaultTolerance::High
                } else if i % 3 == 1 {
                    FaultTolerance::Low
                } else {
                    FaultTolerance::Medium
                },
            })
            .collect()
    }

    #[test]
    fn construction_is_deterministic() {
        let ls = lines(50);
        let a = OperatorModel::new(7, &ls);
        let b = OperatorModel::new(7, &ls);
        assert_eq!(a, b);
        assert_ne!(a, OperatorModel::new(8, &ls));
    }

    #[test]
    fn top_line_is_slow() {
        let m = OperatorModel::new(1, &lines(200));
        let top = m.profile(ProductLineId::new(0));
        assert!(top.median_days > 30.0, "top median {}", top.median_days);
        // Low-FT lines in the middle are much faster.
        let low_ft = m.profile(ProductLineId::new(10)); // 10 % 3 == 1 → Low
        assert!(
            low_ft.median_days < 5.0,
            "low-FT median {}",
            low_ft.median_days
        );
    }

    #[test]
    fn some_small_lines_are_neglected() {
        let m = OperatorModel::new(2, &lines(300));
        let neglected = (180..300)
            .filter(|&i| m.profile(ProductLineId::new(i as u16)).median_days > 100.0)
            .count();
        let frac = neglected as f64 / 120.0;
        assert!((0.1..0.45).contains(&frac), "neglected fraction {frac}");
    }

    #[test]
    fn error_category_gets_no_response() {
        let m = OperatorModel::new(3, &lines(10));
        let mut rng = StdRng::seed_from_u64(1);
        assert!(m
            .sample_response(
                &mut rng,
                ProductLineId::new(0),
                ComponentClass::Hdd,
                FotCategory::Error,
                SimTime::from_days(10),
                SimDuration::from_days(400),
            )
            .is_none());
    }

    #[test]
    fn response_never_precedes_error_and_action_matches_category() {
        let m = OperatorModel::new(4, &lines(10));
        let mut rng = StdRng::seed_from_u64(2);
        let t = SimTime::from_days(100);
        for _ in 0..200 {
            let r = m
                .sample_response(
                    &mut rng,
                    ProductLineId::new(3),
                    ComponentClass::Memory,
                    FotCategory::Fixing,
                    t,
                    SimDuration::from_days(200),
                )
                .unwrap();
            assert!(r.op_time >= t);
            assert_eq!(r.action, OperatorAction::IssueRepairOrder);
        }
        let fa = m
            .sample_response(
                &mut rng,
                ProductLineId::new(3),
                ComponentClass::Hdd,
                FotCategory::FalseAlarm,
                t,
                SimDuration::from_days(200),
            )
            .unwrap();
        assert_eq!(fa.action, OperatorAction::MarkFalseAlarm);
    }

    #[test]
    fn ssd_is_much_faster_than_hdd() {
        let m = OperatorModel::new(5, &lines(10));
        let mut rng = StdRng::seed_from_u64(3);
        let t = SimTime::from_days(100);
        let median_of = |class: ComponentClass, rng: &mut StdRng| {
            let mut days: Vec<f64> = (0..2_001)
                .map(|_| {
                    m.sample_response(
                        rng,
                        ProductLineId::new(0),
                        class,
                        FotCategory::Fixing,
                        t,
                        SimDuration::from_days(200),
                    )
                    .unwrap()
                    .op_time
                    .since(t)
                    .as_days_f64()
                })
                .collect();
            days.sort_by(|a, b| a.partial_cmp(b).unwrap());
            days[1_000]
        };
        let ssd = median_of(ComponentClass::Ssd, &mut rng);
        let hdd = median_of(ComponentClass::Hdd, &mut rng);
        assert!(
            hdd > 10.0 * ssd,
            "hdd median {hdd} should dwarf ssd median {ssd}"
        );
    }

    #[test]
    fn deployment_phase_misc_closes_within_hours() {
        let m = OperatorModel::new(6, &lines(10));
        let mut rng = StdRng::seed_from_u64(4);
        let t = SimTime::from_days(100);
        let mut days: Vec<f64> = (0..2_001)
            .map(|_| {
                m.sample_response(
                    &mut rng,
                    ProductLineId::new(0),
                    ComponentClass::Miscellaneous,
                    FotCategory::Fixing,
                    t,
                    SimDuration::from_days(10), // brand new server
                )
                .unwrap()
                .op_time
                .since(t)
                .as_days_f64()
            })
            .collect();
        days.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            days[1_000] < 1.5,
            "deployment misc median {} days",
            days[1_000]
        );
    }

    #[test]
    fn decommission_tracks_severity() {
        let m = OperatorModel::new(7, &lines(5));
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let fatal = (0..n)
            .filter(|_| m.roll_decommission(&mut rng, true))
            .count();
        let warn = (0..n)
            .filter(|_| m.roll_decommission(&mut rng, false))
            .count();
        assert!((fatal as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!(warn * 5 < fatal);
    }
}
