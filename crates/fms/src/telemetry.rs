//! FMS-side instrumentation: the counter bundle the engine threads through
//! the detection / operator / false-alarm hot paths.
//!
//! The paper's FMS is itself a telemetry system; this module gives our
//! simulated FMS the same visibility. Handles come from a
//! [`dcf_obs::MetricsRegistry`], so they are free when the registry is
//! disabled, and worker threads can either increment them directly
//! (atomics) or batch per-thread tallies and [`dcf_obs::Counter::add`]
//! once per chunk — the engine does the latter to keep hot loops clean.

use dcf_obs::{Counter, MetricsRegistry};

/// Counter handles for every FMS-owned metric.
///
/// All counters are deterministic in the simulation seed (they count
/// simulation events and never consume RNG draws).
#[derive(Debug, Clone, Default)]
pub struct FmsMetrics {
    /// `fms.detect.latent_resolved`: latent background faults assigned a
    /// detection time through a syslog/polling/manual channel.
    pub latent_resolved: Counter,
    /// `fms.operator.responses`: operator responses sampled (tickets with
    /// a response attached — `D_fixing` and `D_falsealarm`).
    pub responses_sampled: Counter,
    /// `fms.operator.decommissioned`: servers decommissioned after an
    /// out-of-warranty fatal failure.
    pub decommissioned: Counter,
    /// `fms.tickets.issued`: tickets stamped by the central
    /// [`crate::TicketFactory`].
    pub tickets_issued: Counter,
    /// `fms.monitoring.unmonitored_dropped`: hardware failures that went
    /// unrecorded because the server had no FMS agent yet (§VIII).
    pub unmonitored_dropped: Counter,
}

impl FmsMetrics {
    /// Binds all FMS counters in `registry` (no-op handles when disabled).
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        Self {
            latent_resolved: registry.counter("fms.detect.latent_resolved"),
            responses_sampled: registry.counter("fms.operator.responses"),
            decommissioned: registry.counter("fms.operator.decommissioned"),
            tickets_issued: registry.counter("fms.tickets.issued"),
            unmonitored_dropped: registry.counter("fms.monitoring.unmonitored_dropped"),
        }
    }

    /// A bundle of no-op handles.
    pub fn disabled() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_under_fms_names() {
        let registry = MetricsRegistry::new();
        let metrics = FmsMetrics::from_registry(&registry);
        metrics.latent_resolved.add(3);
        metrics.tickets_issued.inc();
        assert_eq!(
            registry.counter_value("fms.detect.latent_resolved"),
            Some(3)
        );
        assert_eq!(registry.counter_value("fms.tickets.issued"), Some(1));
        assert_eq!(registry.counter_value("fms.operator.responses"), Some(0));
    }

    #[test]
    fn disabled_bundle_is_inert() {
        let metrics = FmsMetrics::disabled();
        metrics.responses_sampled.add(10);
        assert_eq!(metrics.responses_sampled.get(), 0);
    }
}
