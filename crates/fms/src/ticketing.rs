//! Ticket construction: turns detections into validated FOTs.
//!
//! The FMS architecture (Figure 1): agents on hosts detect failures and a
//! central service records tickets, which operators then review from the
//! failure pool. [`TicketFactory`] is that central service's write path —
//! it owns the id sequence and stamps every field of the paper's schema.

use dcf_failmodel::types::detail_str;
use dcf_trace::{
    ComponentClass, FailureType, Fot, FotCategory, FotId, OperatorResponse, ServerMeta, SimTime,
};
use serde::{Deserialize, Serialize};

/// A detection event as reported by a host agent or a human operator,
/// before categorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Which server.
    pub server: u32,
    /// Failed component class.
    pub class: ComponentClass,
    /// Component slot within its class.
    pub slot: u8,
    /// Concrete failure type.
    pub failure_type: FailureType,
    /// Detection timestamp (`error_time`).
    pub time: SimTime,
}

/// The central FMS ticket writer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TicketFactory {
    next_id: u64,
}

impl TicketFactory {
    /// A fresh factory starting ids at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tickets issued so far.
    pub fn issued(&self) -> u64 {
        self.next_id
    }

    /// Builds the next ticket from a detection, the server's metadata, the
    /// assigned category and the (already sampled) operator response.
    ///
    /// The caller guarantees the category/response pairing;
    /// [`dcf_trace::Trace::new`] re-validates it at assembly time.
    pub fn make_fot(
        &mut self,
        detection: Detection,
        server: &ServerMeta,
        category: FotCategory,
        response: Option<OperatorResponse>,
    ) -> Fot {
        debug_assert_eq!(server.id.raw(), detection.server);
        let id = FotId::new(self.next_id);
        self.next_id += 1;
        Fot {
            id,
            server: server.id,
            data_center: server.data_center,
            product_line: server.product_line,
            device: detection.class,
            device_slot: detection.slot,
            failure_type: detection.failure_type,
            error_time: detection.time,
            rack_position: server.position,
            // Every detail string is static, so this is one copy — no
            // per-ticket formatting.
            detail: detail_str(detection.failure_type).to_string(),
            category,
            response,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcf_trace::{
        DataCenterId, OperatorAction, OperatorId, ProductLineId, RackId, RackPosition, ServerId,
        SimDuration,
    };

    fn server() -> ServerMeta {
        ServerMeta {
            id: ServerId::new(7),
            hostname: "dc00-r0000-u05-s000007".into(),
            data_center: DataCenterId::new(2),
            product_line: ProductLineId::new(3),
            rack: RackId::new(0),
            position: RackPosition::new(5),
            generation: 1,
            deploy_time: SimTime::ORIGIN,
            warranty: SimDuration::from_days(1000),
            hdd_count: 12,
            ssd_count: 0,
            cpu_count: 2,
            dimm_count: 8,
            fan_count: 4,
            psu_count: 2,
            has_raid_card: true,
            has_flash_card: false,
        }
    }

    #[test]
    fn ids_are_sequential_and_fields_copied() {
        let mut factory = TicketFactory::new();
        let s = server();
        let det = Detection {
            server: 7,
            class: ComponentClass::Hdd,
            slot: 3,
            failure_type: FailureType::SmartFail,
            time: SimTime::from_days(9),
        };
        let a = factory.make_fot(det, &s, FotCategory::Error, None);
        let b = factory.make_fot(det, &s, FotCategory::Error, None);
        assert_eq!(a.id.raw(), 0);
        assert_eq!(b.id.raw(), 1);
        assert_eq!(factory.issued(), 2);
        assert_eq!(a.data_center, DataCenterId::new(2));
        assert_eq!(a.product_line, ProductLineId::new(3));
        assert_eq!(a.rack_position, RackPosition::new(5));
        assert!(a.detail.contains("SMART"));
    }

    #[test]
    fn response_is_attached_verbatim() {
        let mut factory = TicketFactory::new();
        let s = server();
        let det = Detection {
            server: 7,
            class: ComponentClass::Memory,
            slot: 1,
            failure_type: FailureType::DimmUe,
            time: SimTime::from_days(3),
        };
        let resp = OperatorResponse {
            operator: OperatorId::new(9),
            op_time: SimTime::from_days(5),
            action: OperatorAction::IssueRepairOrder,
        };
        let fot = factory.make_fot(det, &s, FotCategory::Fixing, Some(resp));
        assert_eq!(fot.response, Some(resp));
        assert_eq!(fot.response_time().unwrap().as_days_f64(), 2.0);
    }
}
