//! False alarms (§II-A, Table I): 1.7% of FOTs are detector glitches the
//! operators dismiss — the paper highlights this *low* rate as evidence of
//! high detection precision.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Governs the rate of false-alarm tickets relative to real failures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FalseAlarmModel {
    /// Expected false alarms per real failure. Table I: 1.7% of tickets
    /// are false alarms, so per failure the ratio is 0.017 / 0.983.
    pub per_failure_ratio: f64,
}

impl Default for FalseAlarmModel {
    fn default() -> Self {
        Self {
            per_failure_ratio: 0.017 / 0.983,
        }
    }
}

impl FalseAlarmModel {
    /// A model producing no false alarms.
    pub fn disabled() -> Self {
        Self {
            per_failure_ratio: 0.0,
        }
    }

    /// Rolls whether a detected failure spawns an (independent) false-alarm
    /// ticket somewhere in the fleet.
    pub fn roll(&self, rng: &mut dyn RngCore) -> bool {
        self.per_failure_ratio > 0.0 && rng.random::<f64>() < self.per_failure_ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ratio_yields_about_1_7_percent_of_tickets() {
        let m = FalseAlarmModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let failures = 500_000;
        let alarms = (0..failures).filter(|_| m.roll(&mut rng)).count();
        let ticket_share = alarms as f64 / (failures + alarms) as f64;
        assert!(
            (ticket_share - 0.017).abs() < 0.002,
            "false-alarm share {ticket_share}"
        );
    }

    #[test]
    fn disabled_never_fires() {
        let m = FalseAlarmModel::disabled();
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..10_000).all(|_| !m.roll(&mut rng)));
    }
}
