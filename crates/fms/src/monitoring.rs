//! Monitoring coverage (§VIII limitations / §II footnote 1).
//!
//! The paper: "There are still some old unmonitored servers, but the
//! monitoring coverage has increased significantly during the four years"
//! and "people incrementally rolled out FMS during the four years, and
//! thus the actual coverage might vary". An unmonitored server has no FMS
//! agent: its component failures produce no automatic tickets (operators
//! may still file manual ones).
//!
//! The calibrated scenarios run with full coverage (the paper's numbers
//! already *are* the partially-covered measurement); this model exists to
//! study the artifact — see the `partial-monitoring` ablation.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use dcf_trace::{SimDuration, SimTime};

/// FMS agent roll-out model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitoringModel {
    /// Fraction of servers with an agent when the window opens.
    pub coverage_at_start: f64,
    /// Fraction of servers with an agent when the window closes.
    pub coverage_at_end: f64,
}

impl MonitoringModel {
    /// Full coverage from day one (the calibrated default).
    pub fn full() -> Self {
        Self {
            coverage_at_start: 1.0,
            coverage_at_end: 1.0,
        }
    }

    /// The paper's situation: most servers covered up front, the rest
    /// brought in over the window.
    pub fn paper_rollout() -> Self {
        Self {
            coverage_at_start: 0.75,
            coverage_at_end: 0.98,
        }
    }

    /// Validates the coverage fractions.
    ///
    /// # Errors
    ///
    /// Returns a description if either fraction is outside `[0, 1]` or
    /// coverage decreases.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.coverage_at_start) {
            return Err(format!(
                "coverage_at_start {} not in [0,1]",
                self.coverage_at_start
            ));
        }
        if !(0.0..=1.0).contains(&self.coverage_at_end) {
            return Err(format!(
                "coverage_at_end {} not in [0,1]",
                self.coverage_at_end
            ));
        }
        if self.coverage_at_end < self.coverage_at_start {
            return Err("coverage cannot shrink over the window".into());
        }
        Ok(())
    }

    /// Samples when a server's FMS agent comes online:
    /// `Some(window start)` for the initially-covered share, a ramp time
    /// for servers covered during the window, `None` for the never-covered
    /// tail.
    pub fn sample_monitored_from(
        &self,
        rng: &mut dyn RngCore,
        window_start: SimTime,
        window_end: SimTime,
    ) -> Option<SimTime> {
        let u: f64 = rng.random();
        if u < self.coverage_at_start {
            return Some(window_start);
        }
        if u < self.coverage_at_end {
            // Linear roll-out: position within the ramp maps to time.
            let frac = (u - self.coverage_at_start)
                / (self.coverage_at_end - self.coverage_at_start).max(1e-12);
            let span = window_end.since(window_start).as_secs() as f64;
            Some(window_start + SimDuration::from_secs((frac * span) as u64))
        } else {
            None
        }
    }
}

impl Default for MonitoringModel {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_coverage_monitors_everything_immediately() {
        let m = MonitoringModel::full();
        let mut rng = StdRng::seed_from_u64(1);
        let start = SimTime::from_days(100);
        let end = SimTime::from_days(400);
        for _ in 0..1_000 {
            assert_eq!(m.sample_monitored_from(&mut rng, start, end), Some(start));
        }
    }

    #[test]
    fn rollout_shares_match_configuration() {
        let m = MonitoringModel::paper_rollout();
        m.validate().unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let start = SimTime::from_days(0);
        let end = SimTime::from_days(1000);
        let n = 50_000;
        let mut immediate = 0;
        let mut ramped = 0;
        let mut never = 0;
        for _ in 0..n {
            match m.sample_monitored_from(&mut rng, start, end) {
                Some(t) if t == start => immediate += 1,
                Some(t) => {
                    assert!(t > start && t < end);
                    ramped += 1;
                }
                None => never += 1,
            }
        }
        let frac = |x: i32| x as f64 / n as f64;
        assert!((frac(immediate) - 0.75).abs() < 0.01);
        assert!((frac(ramped) - 0.23).abs() < 0.01);
        assert!((frac(never) - 0.02).abs() < 0.005);
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(MonitoringModel {
            coverage_at_start: -0.1,
            coverage_at_end: 0.5
        }
        .validate()
        .is_err());
        assert!(MonitoringModel {
            coverage_at_start: 0.9,
            coverage_at_end: 0.5
        }
        .validate()
        .is_err());
    }
}
