//! Exponential distribution — the null model for time between failures
//! that the paper's Hypotheses 3 and 4 reject.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::distribution::ContinuousDistribution;
use crate::error::StatsError;

/// Exponential distribution with rate `λ > 0` (mean `1/λ`).
///
/// # Examples
///
/// ```
/// use dcf_stats::{ContinuousDistribution, Exponential};
///
/// let d = Exponential::new(0.5).unwrap();
/// assert!((d.mean() - 2.0).abs() < 1e-12);
/// assert!((d.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `rate` is not finite and positive.
    pub fn new(rate: f64) -> Result<Self, StatsError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "exponential rate",
                value: rate,
            });
        }
        Ok(Self { rate })
    }

    /// Creates the distribution from its mean (`mean = 1/rate`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `mean` is not finite and positive.
    pub fn from_mean(mean: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "exponential mean",
                value: mean,
            });
        }
        Self::new(1.0 / mean)
    }

    /// The rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDistribution for Exponential {
    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.rate.ln() - self.rate * x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
        -(-p).ln_1p() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Inverse transform; guard the u = 0 endpoint.
        let u: f64 = rng.random();
        -(-u).ln_1p() / self.rate
    }

    fn name(&self) -> &'static str {
        "Exponential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn from_mean_inverts_rate() {
        let d = Exponential::from_mean(4.0).unwrap();
        assert!((d.rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let d = Exponential::new(1.3).unwrap();
        // Trapezoidal integration of the pdf should approximate the cdf.
        let steps = 20_000;
        let dx = 2.0 / steps as f64;
        let acc: f64 = (0..steps)
            .map(|i| {
                let x = i as f64 * dx;
                0.5 * (d.pdf(x) + d.pdf(x + dx)) * dx
            })
            .sum();
        assert!((acc - d.cdf(2.0)).abs() < 1e-6);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Exponential::new(0.7).unwrap();
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.999] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn sample_mean_converges() {
        let d = Exponential::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "sample mean {mean}");
    }

    #[test]
    fn density_zero_for_negative_x() {
        let d = Exponential::new(1.0).unwrap();
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.cdf(-1.0), 0.0);
    }
}
