//! Lognormal distribution — the fourth TBF null model (§II-B), and the
//! family we use to model operator response-time bodies (§VI).

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::distribution::ContinuousDistribution;
use crate::error::StatsError;
use crate::special::{erfc, inverse_normal_cdf};

/// Lognormal distribution: `ln X ~ Normal(μ, σ²)`.
///
/// # Examples
///
/// ```
/// use dcf_stats::{ContinuousDistribution, LogNormal};
///
/// let d = LogNormal::new(0.0, 1.0).unwrap();
/// assert!((d.cdf(1.0) - 0.5).abs() < 1e-12); // median = e^μ = 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal distribution with log-location `mu` and log-scale `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `mu` is finite and
    /// `sigma` is finite and positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        if !mu.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "lognormal mu",
                value: mu,
            });
        }
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "lognormal sigma",
                value: sigma,
            });
        }
        Ok(Self { mu, sigma })
    }

    /// Creates the lognormal with a given median and `sigma` (log-scale).
    ///
    /// Handy for calibration: the median is `e^μ`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] on a non-positive median or sigma.
    pub fn from_median(median: f64, sigma: f64) -> Result<Self, StatsError> {
        if !median.is_finite() || median <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "lognormal median",
                value: median,
            });
        }
        Self::new(median.ln(), sigma)
    }

    /// The log-location parameter μ.
    pub fn location(&self) -> f64 {
        self.mu
    }

    /// The log-scale parameter σ.
    pub fn shape(&self) -> f64 {
        self.sigma
    }

    /// The distribution median, `e^μ`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl ContinuousDistribution for LogNormal {
    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        -0.5 * z * z - x.ln() - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        0.5 * erfc(-z / std::f64::consts::SQRT_2)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
        (self.mu + self.sigma * inverse_normal_cdf(p)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u1: f64 = rng.random::<f64>().max(1e-300);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }

    fn name(&self) -> &'static str {
        "LogNormal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::from_median(-1.0, 1.0).is_err());
    }

    #[test]
    fn median_is_exp_mu() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        assert!((d.cdf(d.median()) - 0.5).abs() < 1e-12);
        let e = LogNormal::from_median(10.0, 0.5).unwrap();
        assert!((e.median() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = LogNormal::new(-0.3, 1.7).unwrap();
        for &p in &[0.01, 0.2, 0.5, 0.8, 0.99] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-10);
        }
    }

    #[test]
    fn mean_and_variance_formulas() {
        let d = LogNormal::new(0.5, 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 300_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - d.mean()).abs() / d.mean() < 0.02);
    }

    #[test]
    fn density_zero_for_nonpositive() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.pdf(0.0), 0.0);
        assert_eq!(d.pdf(-3.0), 0.0);
        assert_eq!(d.cdf(0.0), 0.0);
    }
}
