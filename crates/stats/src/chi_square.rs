//! Pearson's chi-squared tests — the hypothesis-testing workhorse of the
//! paper (§II-B, Hypotheses 1–5).
//!
//! Two flavors are provided:
//!
//! * [`goodness_of_fit`] — does a continuous sample follow a fitted
//!   distribution? Uses equal-probability binning derived from the fitted
//!   quantiles, with a degrees-of-freedom correction for estimated
//!   parameters (used for Hypotheses 3–4 on TBF data).
//! * [`uniformity`] / [`against_expected`] — do categorical counts match a
//!   uniform (or arbitrary expected) profile? (used for Hypotheses 1, 2, 5).

use serde::{Deserialize, Serialize};

use crate::distribution::ContinuousDistribution;
use crate::error::StatsError;
use crate::special::reg_upper_gamma;

/// Minimum expected count per bin for the chi-squared approximation to hold.
/// Bins below this are merged with their neighbor (standard practice).
const MIN_EXPECTED_PER_BIN: f64 = 5.0;

/// CDF of the chi-squared distribution with `dof` degrees of freedom.
///
/// # Examples
///
/// ```
/// // χ²(1) at its 95th percentile 3.841…
/// let p = dcf_stats::chi_square::chi_square_cdf(3.841_458_820_694_124, 1.0);
/// assert!((p - 0.95).abs() < 1e-9);
/// ```
pub fn chi_square_cdf(x: f64, dof: f64) -> f64 {
    assert!(dof > 0.0, "dof must be positive, got {dof}");
    if x <= 0.0 {
        return 0.0;
    }
    1.0 - reg_upper_gamma(dof / 2.0, x / 2.0)
}

/// Outcome of a chi-squared test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChiSquareOutcome {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom after binning and parameter corrections.
    pub dof: usize,
    /// Right-tail p-value.
    pub p_value: f64,
}

impl ChiSquareOutcome {
    /// Whether the null hypothesis is rejected at significance level `alpha`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dcf_stats::chi_square::ChiSquareOutcome;
    /// let out = ChiSquareOutcome { statistic: 20.0, dof: 6, p_value: 0.003 };
    /// assert!(out.rejects_at(0.01));
    /// assert!(out.rejects_at(0.05));
    /// assert!(!out.rejects_at(0.001));
    /// ```
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

impl std::fmt::Display for ChiSquareOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chi2={:.3}, dof={}, p={:.4}",
            self.statistic, self.dof, self.p_value
        )
    }
}

/// Chi-squared goodness-of-fit test of `data` against a fitted continuous
/// distribution, with `estimated_params` subtracted from the degrees of
/// freedom (the standard correction when parameters were estimated from the
/// same sample).
///
/// Bins are equal-probability intervals of the *fitted* distribution
/// (`bins` of them before low-count merging), so every bin has the same
/// expected count `n / bins`.
///
/// # Errors
///
/// * [`StatsError::EmptySample`] on empty data.
/// * [`StatsError::NotEnoughBins`] if, after merging, fewer than 3 usable
///   bins remain or the dof would be non-positive.
///
/// # Examples
///
/// ```
/// use dcf_stats::{chi_square, fit, Exponential, ContinuousDistribution};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let truth = Exponential::new(1.0).unwrap();
/// let mut rng = StdRng::seed_from_u64(0);
/// let data: Vec<f64> = (0..5000).map(|_| truth.sample(&mut rng)).collect();
/// let fitted = fit::fit_exponential(&data).unwrap();
/// let out = chi_square::goodness_of_fit(&data, &fitted, 30, 1).unwrap();
/// assert!(!out.rejects_at(0.01)); // data genuinely is exponential
/// ```
pub fn goodness_of_fit<D: ContinuousDistribution + ?Sized>(
    data: &[f64],
    dist: &D,
    bins: usize,
    estimated_params: usize,
) -> Result<ChiSquareOutcome, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptySample);
    }
    let bins = capped_bins(data.len(), bins);
    let n = data.len() as f64;
    let edges = interior_edges(dist, bins);

    // Observed counts per bin (binary search per observation).
    let mut observed = vec![0.0f64; bins];
    for &x in data {
        if !x.is_finite() {
            return Err(StatsError::NonFiniteSample { value: x });
        }
        // First edge > x, minus one, is the bin.
        let idx = match edges.binary_search_by(|e| {
            e.partial_cmp(&x)
                .expect("edges and data are finite or +-inf")
        }) {
            Ok(i) => i + 1, // on an edge: right-closed convention
            Err(i) => i,
        };
        observed[idx.min(bins - 1)] += 1.0;
    }
    let expected = vec![n / bins as f64; bins];
    against_expected_with_correction(&observed, &expected, estimated_params)
}

/// [`goodness_of_fit`] over data that is **already sorted ascending** (for
/// example [`crate::Ecdf::values`]).
///
/// Sortedness turns the per-observation binary search inside out: each bin
/// count becomes one `partition_point` against a bin edge, so the test runs
/// in `O(bins · log n)` instead of `O(n · log bins)`. On a 300k-gap TBF
/// sample that is the difference between ~10 ms and microseconds per family.
/// The observed counts — and therefore the statistic, dof and p-value — are
/// exactly those of [`goodness_of_fit`] on any permutation of the data.
///
/// # Errors
///
/// As [`goodness_of_fit`]; non-finite observations are rejected.
///
/// # Panics
///
/// May panic (or miscount) if `sorted` is not actually sorted ascending.
pub fn goodness_of_fit_sorted<D: ContinuousDistribution + ?Sized>(
    sorted: &[f64],
    dist: &D,
    bins: usize,
    estimated_params: usize,
) -> Result<ChiSquareOutcome, StatsError> {
    if sorted.is_empty() {
        return Err(StatsError::EmptySample);
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "goodness_of_fit_sorted requires ascending data"
    );
    for &x in sorted {
        if !x.is_finite() {
            return Err(StatsError::NonFiniteSample { value: x });
        }
    }
    let bins = capped_bins(sorted.len(), bins);
    let n = sorted.len() as f64;
    let edges = interior_edges(dist, bins);

    // An observation on an edge is binned to the edge's right (the same
    // right-closed convention as `goodness_of_fit`), so bin `b` holds the
    // observations in `[edge[b-1], edge[b])` and its count is a difference
    // of strict-lower-bound ranks.
    let mut observed = vec![0.0f64; bins];
    let mut prev = 0usize;
    for (b, &edge) in edges.iter().enumerate() {
        assert!(!edge.is_nan(), "edges and data are finite or +-inf");
        let rank = sorted.partition_point(|&x| x < edge);
        observed[b] = (rank - prev) as f64;
        prev = rank;
    }
    observed[bins - 1] = (sorted.len() - prev) as f64;
    let expected = vec![n / bins as f64; bins];
    against_expected_with_correction(&observed, &expected, estimated_params)
}

/// Caps the requested bin count so expected counts stay above the merge
/// threshold (with a floor of 4 bins either way).
fn capped_bins(n: usize, bins: usize) -> usize {
    let max_bins = ((n as f64 / MIN_EXPECTED_PER_BIN).floor() as usize).max(4);
    bins.max(4).min(max_bins)
}

/// The `bins - 1` interior equal-probability bin edges of `dist`.
fn interior_edges<D: ContinuousDistribution + ?Sized>(dist: &D, bins: usize) -> Vec<f64> {
    (1..bins)
        .map(|i| dist.quantile(i as f64 / bins as f64))
        .collect()
}

/// Chi-squared test that categorical `counts` are uniform across categories.
///
/// Used for Hypothesis 1 (day-of-week), Hypothesis 2 (hour-of-day) and
/// Hypothesis 5 (rack positions with equal populations).
///
/// # Errors
///
/// Fails on empty input or if fewer than 2 categories survive merging.
pub fn uniformity(counts: &[f64]) -> Result<ChiSquareOutcome, StatsError> {
    if counts.is_empty() {
        return Err(StatsError::EmptySample);
    }
    let total: f64 = counts.iter().sum();
    let expected = vec![total / counts.len() as f64; counts.len()];
    against_expected(counts, &expected)
}

/// Chi-squared test of `observed` counts against arbitrary `expected` counts
/// (already on the same total scale).
///
/// This is the weighted form needed for Hypothesis 5 when rack positions
/// host different numbers of servers: pass expected counts proportional to
/// the per-position server population.
///
/// # Errors
///
/// Fails if the slices differ in length, are empty, or if fewer than 2
/// categories have positive expected counts after merging.
pub fn against_expected(
    observed: &[f64],
    expected: &[f64],
) -> Result<ChiSquareOutcome, StatsError> {
    against_expected_with_correction(observed, expected, 0)
}

/// [`against_expected`] with a degrees-of-freedom correction for
/// `estimated_params` parameters estimated from the same data.
pub fn against_expected_with_correction(
    observed: &[f64],
    expected: &[f64],
    estimated_params: usize,
) -> Result<ChiSquareOutcome, StatsError> {
    if observed.is_empty() || expected.is_empty() {
        return Err(StatsError::EmptySample);
    }
    assert_eq!(
        observed.len(),
        expected.len(),
        "observed ({}) and expected ({}) must have the same length",
        observed.len(),
        expected.len()
    );

    // Merge adjacent low-expectation bins so the χ² approximation is valid.
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(observed.len());
    let mut acc_o = 0.0;
    let mut acc_e = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        if !o.is_finite() || o < 0.0 {
            return Err(StatsError::NonFiniteSample { value: o });
        }
        if !e.is_finite() || e < 0.0 {
            return Err(StatsError::NonFiniteSample { value: e });
        }
        acc_o += o;
        acc_e += e;
        if acc_e >= MIN_EXPECTED_PER_BIN {
            merged.push((acc_o, acc_e));
            acc_o = 0.0;
            acc_e = 0.0;
        }
    }
    if acc_e > 0.0 || acc_o > 0.0 {
        if let Some(last) = merged.last_mut() {
            last.0 += acc_o;
            last.1 += acc_e;
        } else {
            merged.push((acc_o, acc_e));
        }
    }

    let k = merged.len();
    if k < 2 || k <= estimated_params + 1 {
        return Err(StatsError::NotEnoughBins {
            found: k,
            required: estimated_params + 2,
        });
    }

    let statistic: f64 = merged
        .iter()
        .filter(|(_, e)| *e > 0.0)
        .map(|(o, e)| (o - e).powi(2) / e)
        .sum();
    let dof = k - 1 - estimated_params;
    let p_value = 1.0 - chi_square_cdf(statistic, dof as f64);
    Ok(ChiSquareOutcome {
        statistic,
        dof,
        p_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{sample_n, ContinuousDistribution};
    use crate::{fit, Exponential, LogNormal, Weibull};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chi_square_cdf_reference_values() {
        // scipy.stats.chi2.cdf
        assert!((chi_square_cdf(3.841_458_820_694_124, 1.0) - 0.95).abs() < 1e-9);
        assert!((chi_square_cdf(18.307_038_053_275_143, 10.0) - 0.95).abs() < 1e-9);
        assert!((chi_square_cdf(23.0, 23.0) - 0.539_229_109_447_707_5).abs() < 1e-9);
    }

    #[test]
    fn uniform_counts_accepted() {
        let counts = vec![100.0, 102.0, 97.0, 101.0, 99.0, 103.0, 98.0];
        let out = uniformity(&counts).unwrap();
        assert!(!out.rejects_at(0.05), "{out}");
        assert_eq!(out.dof, 6);
    }

    #[test]
    fn skewed_counts_rejected() {
        // A strongly weekday-skewed profile like the paper's Figure 3.
        let counts = vec![160.0, 170.0, 165.0, 162.0, 158.0, 90.0, 95.0];
        let out = uniformity(&counts).unwrap();
        assert!(out.rejects_at(0.01), "{out}");
    }

    #[test]
    fn expected_weights_absorb_population_differences() {
        // Observed doubles where population doubles: no signal.
        let observed = [200.0, 100.0, 100.0, 200.0];
        let expected = [200.0, 100.0, 100.0, 200.0];
        let out = against_expected(&observed, &expected).unwrap();
        assert!(out.statistic.abs() < 1e-12);
        assert!(!out.rejects_at(0.05));
    }

    #[test]
    fn gof_accepts_true_model() {
        let truth = Weibull::new(1.4, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let data = sample_n(&truth, &mut rng, 20_000);
        let fitted = fit::fit_weibull(&data).unwrap();
        let out = goodness_of_fit(&data, &fitted, 40, 2).unwrap();
        assert!(!out.rejects_at(0.01), "{out}");
    }

    #[test]
    fn gof_rejects_wrong_model() {
        // Heavy-tailed lognormal data vs fitted exponential: must reject.
        let truth = LogNormal::new(0.0, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let data = sample_n(&truth, &mut rng, 20_000);
        let fitted = fit::fit_exponential(&data).unwrap();
        let out = goodness_of_fit(&data, &fitted, 40, 1).unwrap();
        assert!(out.rejects_at(0.001), "{out}");
    }

    #[test]
    fn gof_rejects_batch_contaminated_exponential() {
        // The paper's H3 story: mostly exponential TBFs plus a burst of tiny
        // values from batch failures makes every smooth family reject.
        let truth = Exponential::new(1.0 / 400.0).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let mut data = sample_n(&truth, &mut rng, 15_000);
        data.extend(std::iter::repeat_n(0.01, 4_000));
        for fitted in fit::fit_tbf_families(&data) {
            let out = goodness_of_fit(&data, &fitted, 40, fitted.parameter_count()).unwrap();
            assert!(
                out.rejects_at(0.05),
                "{} should reject: {out}",
                fitted.name()
            );
        }
    }

    #[test]
    fn sorted_gof_matches_unsorted_exactly() {
        let truth = LogNormal::new(1.0, 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let mut data = sample_n(&truth, &mut rng, 20_000);
        // Duplicates exercise the rank-difference path's tie handling.
        data[100] = data[101];
        let fitted = fit::fit_lognormal(&data).unwrap();
        let unsorted = goodness_of_fit(&data, &fitted, 40, 2).unwrap();
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let sorted = goodness_of_fit_sorted(&data, &fitted, 40, 2).unwrap();
        assert_eq!(sorted, unsorted);
    }

    #[test]
    fn low_count_bins_are_merged() {
        // 20 categories, tiny counts: merging must kick in rather than erroring.
        let counts = vec![2.0; 20];
        let out = uniformity(&counts).unwrap();
        assert!(out.dof < 19);
        assert!(!out.rejects_at(0.05));
    }

    #[test]
    fn empty_and_mismatched_inputs_error() {
        assert!(uniformity(&[]).is_err());
        // Tiny expected counts collapse to a single merged bin → NotEnoughBins.
        assert!(matches!(
            against_expected(&[1.0, 2.0], &[1.0, 2.0]),
            Err(StatsError::NotEnoughBins { .. })
        ));
        assert!(against_expected(&[10.0, 20.0], &[15.0, 15.0]).is_ok());
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let _ = against_expected(&[1.0], &[1.0, 2.0]);
    }
}
