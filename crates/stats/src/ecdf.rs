//! Empirical cumulative distribution functions — every CDF figure in the
//! paper (Figures 5, 7, 9, 10) is an ECDF of some derived quantity.

use serde::{Deserialize, Serialize};

use crate::error::StatsError;

/// An empirical CDF over a finite sample.
///
/// Construction sorts the sample once; evaluation and quantiles are then
/// `O(log n)` / `O(1)`.
///
/// # Examples
///
/// ```
/// use dcf_stats::Ecdf;
///
/// let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert!((e.eval(2.0) - 0.5).abs() < 1e-12);
/// assert!((e.quantile(0.5) - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample (takes ownership and sorts it).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySample`] on an empty sample and
    /// [`StatsError::NonFiniteSample`] if any observation is NaN/±∞.
    pub fn new(mut sample: Vec<f64>) -> Result<Self, StatsError> {
        if sample.is_empty() {
            return Err(StatsError::EmptySample);
        }
        for &x in &sample {
            if !x.is_finite() {
                return Err(StatsError::NonFiniteSample { value: x });
            }
        }
        sample.sort_by(|a, b| a.partial_cmp(b).expect("all finite"));
        Ok(Self { sorted: sample })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of observations `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `p`-quantile (nearest-rank definition) for `p ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile requires 0 <= p <= 1, got {p}"
        );
        if p <= 0.0 {
            return self.sorted[0];
        }
        let n = self.sorted.len();
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }

    /// The sample median (`quantile(0.5)`).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Fraction of observations strictly greater than `x` — the paper's
    /// "10% of FOTs have RT longer than 140 days" style of statement.
    pub fn tail_fraction(&self, x: f64) -> f64 {
        1.0 - self.eval(x)
    }

    /// The sorted observations.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// `(x, F(x))` pairs at each observation — the staircase the figures plot.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &x)| (x, (i + 1) as f64 / n))
    }

    /// Downsamples the staircase to at most `max_points` evenly spaced points,
    /// for plotting large ECDFs.
    pub fn sampled_points(&self, max_points: usize) -> Vec<(f64, f64)> {
        let max_points = max_points.max(2);
        let n = self.sorted.len();
        if n <= max_points {
            return self.points().collect();
        }
        (0..max_points)
            .map(|i| {
                let idx = i * (n - 1) / (max_points - 1);
                (self.sorted[idx], (idx + 1) as f64 / n as f64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Ecdf::new(vec![]).is_err());
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn eval_is_a_step_function() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert!((e.eval(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((e.eval(1.5) - 1.0 / 3.0).abs() < 1e-12);
        assert!((e.eval(2.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn quantiles_and_extremes() {
        let e = Ecdf::new((1..=100).map(f64::from).collect()).unwrap();
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 100.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(0.9), 90.0);
        assert_eq!(e.median(), 50.0);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 100.0);
    }

    #[test]
    fn tail_fraction_matches_paper_style_claims() {
        let e = Ecdf::new((1..=100).map(f64::from).collect()).unwrap();
        // 10 of 100 observations exceed 90.
        assert!((e.tail_fraction(90.0) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn points_are_monotone() {
        let e = Ecdf::new(vec![5.0, 1.0, 4.0, 4.0, 2.0]).unwrap();
        let pts: Vec<_> = e.points().collect();
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 < w[1].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_points_bounds_count_and_keeps_ends() {
        let e = Ecdf::new((0..10_000).map(f64::from).collect()).unwrap();
        let pts = e.sampled_points(100);
        assert_eq!(pts.len(), 100);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts.last().unwrap().0, 9999.0);
    }
}
