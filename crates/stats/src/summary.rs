//! One-pass descriptive summaries used throughout the analysis crates.

use serde::{Deserialize, Serialize};

use crate::error::StatsError;

/// Descriptive statistics of a sample.
///
/// # Examples
///
/// ```
/// use dcf_stats::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
/// assert_eq!(s.count, 5);
/// assert!((s.mean - 3.0).abs() < 1e-12);
/// assert!((s.median - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n = 1).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (nearest rank).
    pub median: f64,
    /// 10th percentile.
    pub p10: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes summary statistics of `data`.
    ///
    /// # Errors
    ///
    /// Fails on an empty sample or non-finite observations.
    pub fn of(data: &[f64]) -> Result<Self, StatsError> {
        if data.is_empty() {
            return Err(StatsError::EmptySample);
        }
        let mut sorted = Vec::with_capacity(data.len());
        for &x in data {
            if !x.is_finite() {
                return Err(StatsError::NonFiniteSample { value: x });
            }
            sorted.push(x);
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("all finite"));

        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let std_dev = if n > 1 {
            (sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        let q = |p: f64| -> f64 {
            let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
            sorted[rank - 1]
        };
        Ok(Summary {
            count: n,
            mean,
            std_dev,
            min: sorted[0],
            max: sorted[n - 1],
            median: q(0.5),
            p10: q(0.1),
            p90: q(0.9),
            p99: q(0.99),
        })
    }
}

/// Mean of a slice; `None` when empty. Convenience for hot paths that do not
/// need the full [`Summary`].
pub fn mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        None
    } else {
        Some(data.iter().sum::<f64>() / data.len() as f64)
    }
}

/// Median of a slice (nearest rank); `None` when empty. Does not require the
/// input to be sorted.
pub fn median(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("comparable values"));
    let n = sorted.len();
    Some(sorted[(n - 1) / 2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 25.0).abs() < 1e-12);
        assert!((s.std_dev - (500.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 40.0);
        assert_eq!(s.median, 20.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p99, 7.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Summary::of(&[]).is_err());
        assert!(Summary::of(&[1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn percentiles_of_uniform_grid() {
        let data: Vec<f64> = (1..=1000).map(f64::from).collect();
        let s = Summary::of(&data).unwrap();
        assert_eq!(s.p10, 100.0);
        assert_eq!(s.p90, 900.0);
        assert_eq!(s.p99, 990.0);
    }

    #[test]
    fn helpers_match_summary() {
        let data = [3.0, 1.0, 2.0];
        assert_eq!(mean(&data), Some(2.0));
        assert_eq!(median(&data), Some(2.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(median(&[]), None);
    }
}
