//! # dcf-stats
//!
//! Statistics substrate for the `dcfail` reproduction of *"What Can We Learn
//! from Four Years of Data Center Hardware Failures?"* (DSN 2017).
//!
//! The paper's methodology (§II-B) is: plot PDFs/CDFs of failure quantities,
//! fit candidate distributions by maximum likelihood, and run Pearson's
//! chi-squared tests against the fits (plus uniformity tests for the
//! temporal/spatial hypotheses). This crate implements exactly that toolkit,
//! from the special functions up:
//!
//! * [`special`] — ln Γ, regularized incomplete gamma, erf, digamma, probit.
//! * Distributions: [`Exponential`], [`Weibull`], [`Gamma`], [`LogNormal`],
//!   [`Normal`], [`Uniform`] behind the [`ContinuousDistribution`] trait.
//! * [`fit`] — MLE fitters returning [`Fitted`] values.
//! * [`chi_square`] — goodness-of-fit and uniformity tests with p-values.
//! * [`ks`] — Kolmogorov–Smirnov cross-check.
//! * [`Ecdf`], [`Histogram`], [`LogHistogram`], [`Summary`] — the empirical
//!   plumbing behind every figure.
//! * [`anomaly`] — the μ ± 2σ rack-position outlier rule from §IV.
//!
//! # Example: the paper's TBF methodology in five lines
//!
//! ```
//! use dcf_stats::{chi_square, fit};
//!
//! // Mostly-exponential gaps contaminated with a batch of tiny TBFs,
//! // like the batch failures in §V.
//! let mut tbf: Vec<f64> = (1..2000).map(|i| (i as f64 * 0.37).sin().abs() * 500.0 + 0.5).collect();
//! tbf.extend(std::iter::repeat(0.01).take(400));
//! for fitted in fit::fit_tbf_families(&tbf) {
//!     let out = chi_square::goodness_of_fit(&tbf, &fitted, 30, fitted.parameter_count()).unwrap();
//!     assert!(out.rejects_at(0.05)); // none of the four families fit — Hypothesis 3
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod anomaly;
pub mod chi_square;
pub mod distribution;
mod ecdf;
mod error;
mod exponential;
pub mod fit;
mod gamma;
mod histogram;
pub mod ks;
mod lognormal;
mod normal;
mod poisson;
pub mod rank;
pub mod special;
mod summary;
mod uniform;
mod weibull;

pub use distribution::{sample_n, ContinuousDistribution, Fitted};
pub use ecdf::Ecdf;
pub use error::StatsError;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use histogram::{Histogram, LogHistogram};
pub use lognormal::LogNormal;
pub use normal::Normal;
pub use poisson::{poisson_count, Poisson};
pub use summary::{mean, median, Summary};
pub use uniform::Uniform;
pub use weibull::Weibull;
