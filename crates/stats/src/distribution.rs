//! The [`ContinuousDistribution`] trait and the [`Fitted`] distribution enum.
//!
//! The paper (§II-B) fits exponential, Weibull, gamma and lognormal
//! distributions to observed time-between-failure data via maximum-likelihood
//! estimation and then runs Pearson's chi-squared test against each fit.
//! This module provides the common interface those steps program against.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::{Exponential, Gamma, LogNormal, Normal, Uniform, Weibull};

/// A univariate continuous probability distribution.
///
/// The trait is object safe so tests and reports can treat heterogeneous
/// fits uniformly (`&dyn ContinuousDistribution`).
pub trait ContinuousDistribution {
    /// Probability density function at `x`.
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    /// Natural log of the density at `x` (`-inf` where the density is zero).
    fn ln_pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile function (inverse CDF) for `p` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Implementations panic when `p` is outside `(0, 1)`.
    fn quantile(&self, p: f64) -> f64;

    /// Distribution mean.
    fn mean(&self) -> f64;

    /// Distribution variance.
    fn variance(&self) -> f64;

    /// Draw one sample.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// Short human-readable name used in reports (e.g. `"Weibull"`).
    fn name(&self) -> &'static str;
}

/// Draw `n` samples from any distribution into a vector.
pub fn sample_n<D: ContinuousDistribution + ?Sized>(
    dist: &D,
    rng: &mut dyn RngCore,
    n: usize,
) -> Vec<f64> {
    (0..n).map(|_| dist.sample(rng)).collect()
}

/// One of the four distribution families the paper fits to TBF data,
/// plus normal/uniform for the spatial analyses.
///
/// This enum is what the MLE fitters in [`crate::fit`] return; it keeps
/// fitted results `Copy` and easily serializable into reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fitted {
    /// Exponential with rate λ.
    Exponential(Exponential),
    /// Weibull with shape k and scale λ.
    Weibull(Weibull),
    /// Gamma with shape k and scale θ.
    Gamma(Gamma),
    /// Lognormal with log-mean μ and log-std σ.
    LogNormal(LogNormal),
    /// Normal with mean μ and standard deviation σ.
    Normal(Normal),
    /// Continuous uniform on `[a, b]`.
    Uniform(Uniform),
}

impl Fitted {
    /// Number of parameters estimated from data, used as the degrees-of-freedom
    /// correction in chi-squared goodness-of-fit tests.
    pub fn parameter_count(&self) -> usize {
        match self {
            Fitted::Exponential(_) => 1,
            Fitted::Weibull(_) | Fitted::Gamma(_) | Fitted::LogNormal(_) => 2,
            Fitted::Normal(_) | Fitted::Uniform(_) => 2,
        }
    }

    /// The wrapped distribution as a trait object.
    pub fn as_dyn(&self) -> &dyn ContinuousDistribution {
        match self {
            Fitted::Exponential(d) => d,
            Fitted::Weibull(d) => d,
            Fitted::Gamma(d) => d,
            Fitted::LogNormal(d) => d,
            Fitted::Normal(d) => d,
            Fitted::Uniform(d) => d,
        }
    }
}

impl ContinuousDistribution for Fitted {
    fn ln_pdf(&self, x: f64) -> f64 {
        self.as_dyn().ln_pdf(x)
    }
    fn cdf(&self, x: f64) -> f64 {
        self.as_dyn().cdf(x)
    }
    fn quantile(&self, p: f64) -> f64 {
        self.as_dyn().quantile(p)
    }
    fn mean(&self) -> f64 {
        self.as_dyn().mean()
    }
    fn variance(&self) -> f64 {
        self.as_dyn().variance()
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.as_dyn().sample(rng)
    }
    fn name(&self) -> &'static str {
        self.as_dyn().name()
    }
}

impl std::fmt::Display for Fitted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fitted::Exponential(d) => write!(f, "Exponential(rate={:.6})", d.rate()),
            Fitted::Weibull(d) => {
                write!(f, "Weibull(shape={:.4}, scale={:.4})", d.shape(), d.scale())
            }
            Fitted::Gamma(d) => write!(f, "Gamma(shape={:.4}, scale={:.4})", d.shape(), d.scale()),
            Fitted::LogNormal(d) => {
                write!(
                    f,
                    "LogNormal(mu={:.4}, sigma={:.4})",
                    d.location(),
                    d.shape()
                )
            }
            Fitted::Normal(d) => write!(f, "Normal(mean={:.4}, std={:.4})", d.mean(), d.std_dev()),
            Fitted::Uniform(d) => write!(f, "Uniform(min={:.4}, max={:.4})", d.min(), d.max()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fitted_dispatches_to_inner() {
        let e = Fitted::Exponential(Exponential::new(2.0).unwrap());
        assert!((e.mean() - 0.5).abs() < 1e-12);
        assert_eq!(e.parameter_count(), 1);
        assert_eq!(e.name(), "Exponential");

        let w = Fitted::Weibull(Weibull::new(1.0, 3.0).unwrap());
        assert_eq!(w.parameter_count(), 2);
        // Weibull with shape 1 is Exponential(1/scale).
        assert!((w.cdf(3.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let g = Fitted::Gamma(Gamma::new(2.0, 3.0).unwrap());
        let s = g.to_string();
        assert!(s.contains("Gamma") && s.contains("2.0000") && s.contains("3.0000"));
    }

    #[test]
    fn sample_n_draws_requested_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Exponential::new(1.0).unwrap();
        let xs = sample_n(&d, &mut rng, 100);
        assert_eq!(xs.len(), 100);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }
}
