//! Continuous uniform distribution — the null model behind Hypotheses 1, 2
//! and 5 ("failures are uniformly random over days / hours / rack positions").

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::distribution::ContinuousDistribution;
use crate::error::StatsError;

/// Continuous uniform distribution on `[min, max]`.
///
/// # Examples
///
/// ```
/// use dcf_stats::{ContinuousDistribution, Uniform};
///
/// let d = Uniform::new(2.0, 6.0).unwrap();
/// assert!((d.cdf(4.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    min: f64,
    max: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[min, max]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if the bounds are not finite
    /// or `min >= max`.
    pub fn new(min: f64, max: f64) -> Result<Self, StatsError> {
        if !min.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "uniform min",
                value: min,
            });
        }
        if !max.is_finite() || min >= max {
            return Err(StatsError::InvalidParameter {
                what: "uniform max",
                value: max,
            });
        }
        Ok(Self { min, max })
    }

    /// The lower bound.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// The upper bound.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl ContinuousDistribution for Uniform {
    fn ln_pdf(&self, x: f64) -> f64 {
        if x < self.min || x > self.max {
            f64::NEG_INFINITY
        } else {
            -(self.max - self.min).ln()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.min) / (self.max - self.min)).clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
        self.min + p * (self.max - self.min)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.min + self.max)
    }

    fn variance(&self) -> f64 {
        (self.max - self.min).powi(2) / 12.0
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.min + rng.random::<f64>() * (self.max - self.min)
    }

    fn name(&self) -> &'static str {
        "Uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_bounds() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn cdf_clamps_outside_support() {
        let d = Uniform::new(0.0, 10.0).unwrap();
        assert_eq!(d.cdf(-5.0), 0.0);
        assert_eq!(d.cdf(20.0), 1.0);
        assert_eq!(d.pdf(-1.0), 0.0);
    }

    #[test]
    fn samples_stay_in_bounds() {
        let d = Uniform::new(-2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((-2.0..=3.0).contains(&x));
        }
    }

    #[test]
    fn moments() {
        let d = Uniform::new(2.0, 8.0).unwrap();
        assert!((d.mean() - 5.0).abs() < 1e-12);
        assert!((d.variance() - 3.0).abs() < 1e-12);
    }
}
