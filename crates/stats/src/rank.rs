//! Rank statistics: Spearman correlation.
//!
//! §III-A of the paper claims failure *detections* are "positively
//! correlated with the workload"; Spearman's ρ is the standard
//! scale-free way to quantify that claim (hour-of-day detection counts vs
//! the utilization profile).

use crate::error::StatsError;

/// Assigns average ranks (1-based) to `xs`, ties sharing their mean rank.
fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite values"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation ρ between two equal-length samples.
///
/// Computed as the Pearson correlation of average ranks, so ties are
/// handled correctly.
///
/// # Errors
///
/// * [`StatsError::EmptySample`] when fewer than 3 pairs.
/// * [`StatsError::NonFiniteSample`] on NaN/∞ inputs.
/// * [`StatsError::DegenerateSample`] when either side is constant.
///
/// # Examples
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let up = [2.0, 4.0, 5.0, 8.0, 9.0];
/// let down = [9.0, 8.0, 5.0, 4.0, 2.0];
/// assert!((dcf_stats::rank::spearman(&x, &up).unwrap() - 1.0).abs() < 1e-12);
/// assert!((dcf_stats::rank::spearman(&x, &down).unwrap() + 1.0).abs() < 1e-12);
/// ```
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64, StatsError> {
    assert_eq!(xs.len(), ys.len(), "samples must have equal length");
    if xs.len() < 3 {
        return Err(StatsError::EmptySample);
    }
    for &v in xs.iter().chain(ys) {
        if !v.is_finite() {
            return Err(StatsError::NonFiniteSample { value: v });
        }
    }
    let rx = average_ranks(xs);
    let ry = average_ranks(ys);
    let n = rx.len() as f64;
    let mx = rx.iter().sum::<f64>() / n;
    let my = ry.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in rx.iter().zip(&ry) {
        cov += (a - mx) * (b - my);
        vx += (a - mx).powi(2);
        vy += (b - my).powi(2);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return Err(StatsError::DegenerateSample);
    }
    Ok(cov / (vx * vy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone_relations() {
        let x: Vec<f64> = (1..=20).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect(); // nonlinear but monotone
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((spearman(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_data_is_near_zero() {
        // A deterministic "shuffled" sequence with no monotone trend.
        let x: Vec<f64> = (0..101).map(f64::from).collect();
        let y: Vec<f64> = (0..101).map(|i| ((i * 37) % 101) as f64).collect();
        let rho = spearman(&x, &y).unwrap();
        assert!(rho.abs() < 0.2, "rho {rho}");
    }

    #[test]
    fn ties_share_average_ranks() {
        let ranks = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
        // Correlation still well-defined with ties.
        let x = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let rho = spearman(&x, &y).unwrap();
        assert!(rho > 0.9);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(spearman(&[1.0, 2.0], &[1.0, 2.0]).is_err());
        assert!(spearman(&[1.0, 2.0, f64::NAN], &[1.0, 2.0, 3.0]).is_err());
        assert!(matches!(
            spearman(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::DegenerateSample)
        ));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        let _ = spearman(&[1.0, 2.0, 3.0], &[1.0, 2.0]);
    }
}
