//! One-sample Kolmogorov–Smirnov test. The paper uses Pearson's chi-squared
//! as its primary test; KS is provided as a cross-check (several of the
//! related studies the paper cites, e.g. Schroeder & Gibson, use it).

use serde::{Deserialize, Serialize};

use crate::distribution::ContinuousDistribution;
use crate::error::StatsError;

/// Outcome of a one-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsOutcome {
    /// The KS statistic `D = sup |F_n(x) − F(x)|`.
    pub statistic: f64,
    /// Asymptotic right-tail p-value (Kolmogorov distribution).
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

impl KsOutcome {
    /// Whether the null hypothesis is rejected at significance level `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// One-sample KS test of `data` against a reference distribution.
///
/// Uses the asymptotic Kolmogorov p-value with the standard
/// `(√n + 0.12 + 0.11/√n)` small-sample correction.
///
/// # Errors
///
/// Fails on empty or non-finite samples.
///
/// # Examples
///
/// ```
/// use dcf_stats::{ks, Exponential, ContinuousDistribution};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let d = Exponential::new(1.0).unwrap();
/// let mut rng = StdRng::seed_from_u64(1);
/// let data: Vec<f64> = (0..2000).map(|_| d.sample(&mut rng)).collect();
/// let out = ks::ks_test(&data, &d).unwrap();
/// assert!(!out.rejects_at(0.01));
/// ```
pub fn ks_test<D: ContinuousDistribution + ?Sized>(
    data: &[f64],
    dist: &D,
) -> Result<KsOutcome, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptySample);
    }
    let mut sorted = Vec::with_capacity(data.len());
    for &x in data {
        if !x.is_finite() {
            return Err(StatsError::NonFiniteSample { value: x });
        }
        sorted.push(x);
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("all finite"));

    let n = sorted.len();
    let nf = n as f64;
    let mut d_stat = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        let d_plus = (i + 1) as f64 / nf - f;
        let d_minus = f - i as f64 / nf;
        d_stat = d_stat.max(d_plus).max(d_minus);
    }

    let sqrt_n = nf.sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d_stat;
    Ok(KsOutcome {
        statistic: d_stat,
        p_value: kolmogorov_sf(lambda),
        n,
    })
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²}`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::sample_n;
    use crate::{Exponential, LogNormal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accepts_true_model() {
        let d = Exponential::new(0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let data = sample_n(&d, &mut rng, 5_000);
        let out = ks_test(&data, &d).unwrap();
        assert!(
            !out.rejects_at(0.01),
            "D={} p={}",
            out.statistic,
            out.p_value
        );
    }

    #[test]
    fn rejects_wrong_model() {
        let truth = LogNormal::new(0.0, 1.5).unwrap();
        let wrong = Exponential::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let data = sample_n(&truth, &mut rng, 5_000);
        let out = ks_test(&data, &wrong).unwrap();
        assert!(out.rejects_at(0.001));
    }

    #[test]
    fn kolmogorov_sf_reference() {
        // Q(1.36) ≈ 0.0489 (the classic 5% critical value λ ≈ 1.358).
        assert!((kolmogorov_sf(1.358) - 0.05).abs() < 0.002);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-6);
    }

    #[test]
    fn empty_sample_errors() {
        let d = Exponential::new(1.0).unwrap();
        assert!(ks_test(&[], &d).is_err());
    }
}
