//! Poisson distribution — event counts per interval; the natural null model
//! for "failures per day" and the engine behind batch-event scheduling.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::error::StatsError;
use crate::special::{ln_gamma, reg_upper_gamma};

/// Poisson distribution with mean `λ > 0`.
///
/// # Examples
///
/// ```
/// use dcf_stats::Poisson;
///
/// let d = Poisson::new(3.0).unwrap();
/// assert!((d.pmf(0) - (-3.0f64).exp()).abs() < 1e-12);
/// assert!((d.cdf(2) + d.sf(2) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `mean` is finite and
    /// positive.
    pub fn new(mean: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "poisson mean",
                value: mean,
            });
        }
        Ok(Self { mean })
    }

    /// The mean λ.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Probability mass `P(X = k)`.
    pub fn pmf(&self, k: u64) -> f64 {
        (k as f64 * self.mean.ln() - self.mean - ln_gamma(k as f64 + 1.0)).exp()
    }

    /// Cumulative probability `P(X <= k)` via the incomplete-gamma identity.
    pub fn cdf(&self, k: u64) -> f64 {
        reg_upper_gamma(k as f64 + 1.0, self.mean)
    }

    /// Survival `P(X > k)`.
    pub fn sf(&self, k: u64) -> f64 {
        1.0 - self.cdf(k)
    }

    /// Draws one sample: Knuth inversion for small means, normal
    /// approximation (rounded, floored at 0) above λ = 30.
    pub fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        if self.mean > 30.0 {
            let u1: f64 = rng.random::<f64>().max(1e-300);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            return (self.mean + self.mean.sqrt() * z).round().max(0.0) as u64;
        }
        let l = (-self.mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.random::<f64>();
            if p <= l || k > 10_000 {
                return k;
            }
            k += 1;
        }
    }
}

/// Convenience: one Poisson draw with mean `mean` (0 for non-positive
/// means) — the form generators use for event counts.
pub fn poisson_count(rng: &mut dyn RngCore, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    Poisson::new(mean).expect("positive mean").sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_mean() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = Poisson::new(4.2).unwrap();
        let total: f64 = (0..100).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn cdf_matches_pmf_partial_sums() {
        let d = Poisson::new(2.5).unwrap();
        let mut acc = 0.0;
        for k in 0..20 {
            acc += d.pmf(k);
            assert!((d.cdf(k) - acc).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn sample_mean_converges_small_and_large() {
        let mut rng = StdRng::seed_from_u64(1);
        for &mean in &[0.7, 8.0, 120.0] {
            let d = Poisson::new(mean).unwrap();
            let n = 50_000;
            let total: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
            let got = total as f64 / n as f64;
            assert!((got - mean).abs() / mean < 0.03, "mean {mean} got {got}");
        }
    }

    #[test]
    fn poisson_count_handles_nonpositive() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(poisson_count(&mut rng, 0.0), 0);
        assert_eq!(poisson_count(&mut rng, -3.0), 0);
        assert!(poisson_count(&mut rng, 5.0) < 100);
    }
}
