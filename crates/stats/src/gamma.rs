//! Gamma distribution — one of the four TBF null models (§II-B).

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::distribution::ContinuousDistribution;
use crate::error::StatsError;
use crate::special::{ln_gamma, reg_lower_gamma};

/// Gamma distribution with shape `k > 0` and scale `θ > 0` (mean `kθ`).
///
/// # Examples
///
/// ```
/// use dcf_stats::{ContinuousDistribution, Gamma};
///
/// let d = Gamma::new(2.0, 3.0).unwrap();
/// assert!((d.mean() - 6.0).abs() < 1e-12);
/// assert!((d.variance() - 18.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both parameters are
    /// finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, StatsError> {
        if !shape.is_finite() || shape <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "gamma shape",
                value: shape,
            });
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "gamma scale",
                value: scale,
            });
        }
        Ok(Self { shape, scale })
    }

    /// The shape parameter k.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter θ.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl ContinuousDistribution for Gamma {
    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return f64::NEG_INFINITY;
        }
        if x == 0.0 {
            return if self.shape < 1.0 {
                f64::INFINITY
            } else if self.shape == 1.0 {
                -self.scale.ln()
            } else {
                f64::NEG_INFINITY
            };
        }
        (self.shape - 1.0) * x.ln()
            - x / self.scale
            - ln_gamma(self.shape)
            - self.shape * self.scale.ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            reg_lower_gamma(self.shape, x / self.scale)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
        // Bisection on the CDF: robust for all shapes, and quantiles are only
        // used for bin-edge construction where ~1e-10 accuracy is plenty.
        let mut lo = 0.0f64;
        let mut hi = self.mean().max(1.0);
        while self.cdf(hi) < p {
            hi *= 2.0;
            if hi > 1e300 {
                break;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) <= 1e-12 * hi.max(1.0) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Marsaglia–Tsang squeeze method; boost trick for shape < 1.
        if self.shape < 1.0 {
            let u: f64 = rng.random::<f64>().max(1e-300);
            let boosted = Gamma {
                shape: self.shape + 1.0,
                scale: self.scale,
            };
            return boosted.sample(rng) * u.powf(1.0 / self.shape);
        }
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            // Standard normal via Box–Muller.
            let u1: f64 = rng.random::<f64>().max(1e-300);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let v = (1.0 + c * z).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.random::<f64>().max(1e-300);
            if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
                return d * v * self.scale;
            }
        }
    }

    fn name(&self) -> &'static str {
        "Gamma"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gamma::new(-1.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        let g = Gamma::new(1.0, 4.0).unwrap();
        let e = crate::Exponential::new(0.25).unwrap();
        for &x in &[0.5, 2.0, 8.0] {
            assert!((g.cdf(x) - e.cdf(x)).abs() < 1e-10);
        }
    }

    #[test]
    fn cdf_reference_values() {
        // scipy.stats.gamma(a=3, scale=2).cdf(4) = 0.3233235838169365
        let g = Gamma::new(3.0, 2.0).unwrap();
        assert!((g.cdf(4.0) - 0.323_323_583_816_936_5).abs() < 1e-10);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &(k, t) in &[(0.4, 1.0), (1.0, 2.0), (5.5, 0.3)] {
            let g = Gamma::new(k, t).unwrap();
            for &p in &[0.01, 0.3, 0.5, 0.8, 0.99] {
                let x = g.quantile(p);
                assert!((g.cdf(x) - p).abs() < 1e-9, "k={k} t={t} p={p}");
            }
        }
    }

    #[test]
    fn sample_moments_converge() {
        for &(k, t) in &[(0.5, 2.0), (3.0, 1.5)] {
            let g = Gamma::new(k, t).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            let n = 200_000;
            let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            assert!((mean - g.mean()).abs() / g.mean() < 0.02, "mean k={k}");
            assert!(
                (var - g.variance()).abs() / g.variance() < 0.05,
                "var k={k}"
            );
        }
    }
}
