//! Weibull distribution — used both as a TBF null model (Hypothesis 3/4)
//! and as the lifecycle hazard family behind the paper's Figure 6 curves.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::distribution::ContinuousDistribution;
use crate::error::StatsError;
use crate::special::ln_gamma;

/// Weibull distribution with shape `k > 0` and scale `λ > 0`.
///
/// Shape `< 1` gives a decreasing hazard (infant mortality), shape `> 1`
/// an increasing hazard (wear-out), shape `= 1` reduces to the exponential.
///
/// # Examples
///
/// ```
/// use dcf_stats::{ContinuousDistribution, Weibull};
///
/// let wear_out = Weibull::new(2.0, 10.0).unwrap();
/// assert!(wear_out.hazard(9.0) > wear_out.hazard(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both parameters are
    /// finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, StatsError> {
        if !shape.is_finite() || shape <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "weibull shape",
                value: shape,
            });
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "weibull scale",
                value: scale,
            });
        }
        Ok(Self { shape, scale })
    }

    /// The shape parameter k.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter λ.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Instantaneous hazard rate `h(x) = (k/λ)(x/λ)^{k−1}` for `x >= 0`.
    pub fn hazard(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            // Limit at zero: infinite for shape < 1, 1/scale for shape == 1, 0 above.
            return match self.shape.partial_cmp(&1.0).expect("shape is finite") {
                std::cmp::Ordering::Less => f64::INFINITY,
                std::cmp::Ordering::Equal => 1.0 / self.scale,
                std::cmp::Ordering::Greater => 0.0,
            };
        }
        (self.shape / self.scale) * (x / self.scale).powf(self.shape - 1.0)
    }
}

impl ContinuousDistribution for Weibull {
    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return f64::NEG_INFINITY;
        }
        if x == 0.0 {
            return if self.shape == 1.0 {
                -self.scale.ln()
            } else if self.shape < 1.0 {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            };
        }
        let z = x / self.scale;
        self.shape.ln() - self.scale.ln() + (self.shape - 1.0) * z.ln() - z.powf(self.shape)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-(x / self.scale).powf(self.shape)).exp_m1()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
        self.scale * (-(-p).ln_1p()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * (ln_gamma(1.0 + 1.0 / self.shape)).exp()
    }

    fn variance(&self) -> f64 {
        let g1 = ln_gamma(1.0 + 1.0 / self.shape).exp();
        let g2 = ln_gamma(1.0 + 2.0 / self.shape).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.random();
        self.scale * (-(-u).ln_1p()).powf(1.0 / self.shape)
    }

    fn name(&self) -> &'static str {
        "Weibull"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
        assert!(Weibull::new(f64::NAN, 1.0).is_err());
        assert!(Weibull::new(1.0, f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        let w = Weibull::new(1.0, 2.0).unwrap();
        let e = crate::Exponential::new(0.5).unwrap();
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            assert!((w.cdf(x) - e.cdf(x)).abs() < 1e-12);
            assert!((w.pdf(x) - e.pdf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_matches_gamma_formula() {
        // Weibull(2, 1) mean = Γ(1.5) = √π/2.
        let w = Weibull::new(2.0, 1.0).unwrap();
        assert!((w.mean() - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-10);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let w = Weibull::new(0.7, 5.0).unwrap();
        for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
            assert!((w.cdf(w.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn hazard_shapes() {
        let infant = Weibull::new(0.5, 1.0).unwrap();
        assert!(infant.hazard(0.1) > infant.hazard(1.0));
        let wear = Weibull::new(3.0, 1.0).unwrap();
        assert!(wear.hazard(1.0) > wear.hazard(0.1));
        let flat = Weibull::new(1.0, 2.0).unwrap();
        assert!((flat.hazard(0.5) - flat.hazard(5.0)).abs() < 1e-12);
        assert_eq!(infant.hazard(0.0), f64::INFINITY);
        assert_eq!(wear.hazard(0.0), 0.0);
    }

    #[test]
    fn sample_median_converges() {
        let w = Weibull::new(1.5, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut xs: Vec<f64> = (0..100_001).map(|_| w.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[50_000];
        assert!((median - w.quantile(0.5)).abs() / w.quantile(0.5) < 0.02);
    }
}
