//! Normal distribution — used by the paper's μ ± 2σ rack-position anomaly
//! detection (§IV) and as a general-purpose building block.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::distribution::ContinuousDistribution;
use crate::error::StatsError;
use crate::special::{erfc, inverse_normal_cdf};

/// Normal (Gaussian) distribution with mean μ and standard deviation σ.
///
/// # Examples
///
/// ```
/// use dcf_stats::{ContinuousDistribution, Normal};
///
/// let d = Normal::new(0.0, 1.0).unwrap();
/// assert!((d.cdf(0.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `mean` is finite and
    /// `std_dev` is finite and positive.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "normal mean",
                value: mean,
            });
        }
        if !std_dev.is_finite() || std_dev <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "normal std_dev",
                value: std_dev,
            });
        }
        Ok(Self { mean, std_dev })
    }

    /// The standard deviation σ.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl ContinuousDistribution for Normal {
    fn ln_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        -0.5 * z * z - self.std_dev.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        0.5 * erfc(-z / std::f64::consts::SQRT_2)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
        self.mean + self.std_dev * inverse_normal_cdf(p)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.std_dev * self.std_dev
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u1: f64 = rng.random::<f64>().max(1e-300);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }

    fn name(&self) -> &'static str {
        "Normal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn standard_normal_reference_values() {
        let d = Normal::new(0.0, 1.0).unwrap();
        assert!((d.cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-10);
        assert!((d.quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-8);
        assert!((d.pdf(0.0) - 1.0 / (2.0 * std::f64::consts::PI).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn two_sigma_covers_95_percent() {
        let d = Normal::new(10.0, 2.0).unwrap();
        let inside = d.cdf(14.0) - d.cdf(6.0);
        assert!((inside - 0.954_499_736_103_642).abs() < 1e-9);
    }

    #[test]
    fn sample_mean_converges() {
        let d = Normal::new(-3.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean + 3.0).abs() < 0.01);
    }
}
