//! Special functions needed by the distribution and test machinery.
//!
//! Everything here is implemented from standard numerical recipes
//! (Lanczos approximation, series/continued-fraction incomplete gamma,
//! Abramowitz–Stegun style `erf`) and unit-tested against reference values.

/// Coefficients for the Lanczos approximation of the gamma function (g = 7, n = 9).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Accurate to ~14 significant digits over the tested range.
///
/// # Examples
///
/// ```
/// let v = dcf_stats::special::ln_gamma(5.0);
/// assert!((v - 24.0f64.ln()).abs() < 1e-12); // Γ(5) = 4! = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, x)` is the CDF of a Gamma(shape = a, scale = 1) variable at `x`.
///
/// # Examples
///
/// ```
/// // P(1, x) = 1 - exp(-x)
/// let p = dcf_stats::special::reg_lower_gamma(1.0, 2.0);
/// assert!((p - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
/// ```
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_lower_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_lower_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        lower_gamma_series(a, x)
    } else {
        1.0 - upper_gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn reg_upper_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_upper_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_upper_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - lower_gamma_series(a, x)
    } else {
        upper_gamma_cf(a, x)
    }
}

/// Series expansion for P(a, x), convergent for x < a + 1.
fn lower_gamma_series(a: f64, x: f64) -> f64 {
    let ln_pre = a * x.ln() - x - ln_gamma(a);
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    (ln_pre.exp() * sum).clamp(0.0, 1.0)
}

/// Lentz continued fraction for Q(a, x), convergent for x ≥ a + 1.
fn upper_gamma_cf(a: f64, x: f64) -> f64 {
    let ln_pre = a * x.ln() - x - ln_gamma(a);
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (ln_pre.exp() * h).clamp(0.0, 1.0)
}

/// Error function `erf(x)`, accurate to ~1.2e-16 via the incomplete gamma relation.
///
/// # Examples
///
/// ```
/// assert!(dcf_stats::special::erf(0.0).abs() < 1e-15);
/// assert!((dcf_stats::special::erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let v = reg_lower_gamma(0.5, x * x);
    if x > 0.0 {
        v
    } else {
        -v
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        reg_upper_gamma(0.5, x * x)
    } else {
        1.0 + reg_lower_gamma(0.5, x * x)
    }
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Uses the recurrence to shift the argument above 6, then the asymptotic series.
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    while x < 12.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

/// Trigamma function `ψ′(x)` for `x > 0` (derivative of digamma).
pub fn trigamma(x: f64) -> f64 {
    assert!(x > 0.0, "trigamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    while x < 12.0 {
        result += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result
        + inv
            * (1.0
                + inv
                    * (0.5
                        + inv
                            * (1.0 / 6.0
                                - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0 - inv2 / 30.0)))))
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Acklam's rational approximation refined with one Halley step; accurate to
/// ~1e-15 over `p ∈ (0, 1)`.
///
/// # Panics
///
/// Panics when `p` is outside the open interval `(0, 1)`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "inverse_normal_cdf requires 0 < p < 1, got {p}"
    );
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the exact CDF.
    let e = 0.5 * erfc(-x / std::f64::consts::SQRT_2) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            close(ln_gamma(n as f64), fact.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π / 2
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn incomplete_gamma_exponential_identity() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            close(reg_lower_gamma(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn incomplete_gamma_complementarity() {
        for &a in &[0.3, 1.0, 2.5, 7.0, 30.0] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 50.0] {
                close(reg_lower_gamma(a, x) + reg_upper_gamma(a, x), 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn incomplete_gamma_reference_values() {
        // Reference values from scipy.special.gammainc.
        close(reg_lower_gamma(2.0, 2.0), 0.593_994_150_290_162, 1e-12);
        close(reg_lower_gamma(5.0, 5.0), 0.559_506_714_934_788, 1e-12);
        close(reg_lower_gamma(0.5, 0.25), 0.520_499_877_813_046_5, 1e-12);
    }

    #[test]
    fn incomplete_gamma_monotone_in_x() {
        let a = 3.7;
        let mut prev = 0.0;
        for i in 1..200 {
            let x = i as f64 * 0.1;
            let p = reg_lower_gamma(a, x);
            assert!(p >= prev, "P(a,x) must be nondecreasing in x");
            prev = p;
        }
    }

    #[test]
    fn erf_reference_values() {
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-12);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-12);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-12);
        close(erfc(2.0), 1.0 - 0.995_322_265_018_952_7, 1e-12);
        close(erfc(-0.5) + erfc(0.5), 2.0 * erfc(0.0), 1e-12);
    }

    #[test]
    fn digamma_reference_values() {
        // ψ(1) = -γ (Euler–Mascheroni)
        close(digamma(1.0), -0.577_215_664_901_532_9, 1e-10);
        // ψ(2) = 1 - γ
        close(digamma(2.0), 1.0 - 0.577_215_664_901_532_9, 1e-10);
        close(digamma(10.0), 2.251_752_589_066_721, 1e-10);
    }

    #[test]
    fn trigamma_reference_values() {
        // ψ'(1) = π²/6
        close(trigamma(1.0), std::f64::consts::PI.powi(2) / 6.0, 1e-9);
        close(trigamma(5.0), 0.221_322_955_737_115, 1e-9);
    }

    #[test]
    fn trigamma_is_derivative_of_digamma() {
        for &x in &[0.5, 1.0, 2.3, 8.0] {
            let h = 1e-4;
            let numeric = (digamma(x + h) - digamma(x - h)) / (2.0 * h);
            close(trigamma(x), numeric, 1e-5);
        }
    }

    #[test]
    fn probit_round_trips_through_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let z = inverse_normal_cdf(p);
            let back = 0.5 * erfc(-z / std::f64::consts::SQRT_2);
            close(back, p, 1e-12);
        }
    }

    #[test]
    fn probit_symmetry() {
        for &p in &[0.01, 0.2, 0.4] {
            close(inverse_normal_cdf(p), -inverse_normal_cdf(1.0 - p), 1e-10);
        }
    }
}
