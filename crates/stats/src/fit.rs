//! Maximum-likelihood estimation for the distribution families used in §II-B.
//!
//! The paper: "we first estimate the parameters of the fitting distributions
//! through maximum likelihood estimation (MLE) and then adopt Pearson's
//! chi-squared test". This module is the MLE half; see [`crate::chi_square`]
//! for the test half.

use crate::distribution::Fitted;
use crate::error::StatsError;
use crate::special::{digamma, trigamma};
use crate::{Exponential, Gamma, LogNormal, Normal, Uniform, Weibull};

/// Validated positive-support sample with its logarithms cached.
///
/// All four TBF families consume `ln x` — the lognormal and Weibull
/// moments directly, the Weibull Newton solver once per iteration. One
/// shared pass computes and caches them, so [`fit_tbf_families`] walks
/// the raw sample exactly once however many families it fits. Every
/// cached value is the same `f64` the fits used to recompute in place,
/// so the fitted parameters are bit-identical to the uncached path.
struct PositivePrep {
    /// Sample size as a float.
    n: f64,
    /// Sample mean.
    mean: f64,
    /// Mean of `ln x` (MLE, i.e. `/n`).
    mean_ln: f64,
    /// Largest `ln x` (the Weibull solver's overflow shift).
    max_ln: f64,
    /// `ln x` per observation, in sample order.
    ln: Vec<f64>,
}

impl PositivePrep {
    /// Validates `data` for positive-support fits and caches its stats.
    fn new(data: &[f64]) -> Result<Self, StatsError> {
        if data.is_empty() {
            return Err(StatsError::EmptySample);
        }
        let mut sum = 0.0;
        let mut sum_ln = 0.0;
        let mut max_ln = f64::NEG_INFINITY;
        let mut ln = Vec::with_capacity(data.len());
        for &x in data {
            if !x.is_finite() {
                return Err(StatsError::NonFiniteSample { value: x });
            }
            if x <= 0.0 {
                return Err(StatsError::NonPositiveSample { value: x });
            }
            let lx = x.ln();
            sum += x;
            sum_ln += lx;
            max_ln = max_ln.max(lx);
            ln.push(lx);
        }
        let n = data.len() as f64;
        let first = data[0];
        if data
            .iter()
            .all(|&x| (x - first).abs() < f64::EPSILON * first.abs())
        {
            return Err(StatsError::DegenerateSample);
        }
        Ok(Self {
            n,
            mean: sum / n,
            mean_ln: sum_ln / n,
            max_ln,
            ln,
        })
    }

    /// MLE `var(ln x)` — the lognormal σ² and the Weibull shape
    /// initializer, summed in sample order like the uncached code did.
    fn var_ln(&self) -> f64 {
        self.ln
            .iter()
            .map(|lx| (lx - self.mean_ln).powi(2))
            .sum::<f64>()
            / self.n
    }
}

/// MLE fit of an exponential distribution: `rate = 1 / mean`.
///
/// # Errors
///
/// Fails on empty, non-finite, non-positive or degenerate samples.
///
/// # Examples
///
/// ```
/// let data = [1.0, 2.0, 3.0, 4.0];
/// let d = dcf_stats::fit::fit_exponential(&data).unwrap();
/// assert!((d.rate() - 0.4).abs() < 1e-12); // mean 2.5 → rate 0.4
/// ```
pub fn fit_exponential(data: &[f64]) -> Result<Exponential, StatsError> {
    let prep = PositivePrep::new(data)?;
    Exponential::from_mean(prep.mean)
}

/// MLE fit of a lognormal: `μ = mean(ln x)`, `σ² = var(ln x)` (MLE, i.e. /n).
///
/// # Errors
///
/// Fails on empty, non-finite, non-positive or degenerate samples.
pub fn fit_lognormal(data: &[f64]) -> Result<LogNormal, StatsError> {
    let prep = PositivePrep::new(data)?;
    fit_lognormal_prepped(&prep)
}

/// [`fit_lognormal`] against an already-validated sample.
fn fit_lognormal_prepped(prep: &PositivePrep) -> Result<LogNormal, StatsError> {
    let var_ln = prep.var_ln();
    if var_ln <= 0.0 {
        return Err(StatsError::DegenerateSample);
    }
    LogNormal::new(prep.mean_ln, var_ln.sqrt())
}

/// MLE fit of a Weibull via Newton–Raphson on the shape profile equation.
///
/// Solves `g(k) = Σ x^k ln x / Σ x^k − 1/k − mean(ln x) = 0`, then
/// `scale = (mean(x^k))^(1/k)`.
///
/// # Errors
///
/// Fails on bad samples or if the solver does not converge (rare; the
/// profile equation is monotone in `k`).
pub fn fit_weibull(data: &[f64]) -> Result<Weibull, StatsError> {
    let prep = PositivePrep::new(data)?;
    fit_weibull_prepped(&prep)
}

/// [`fit_weibull`] against an already-validated sample.
///
/// The solver works entirely off the cached logarithms: `k` stays
/// positive throughout, so the per-iteration overflow shift
/// `max(k·ln x)` is exactly `k · max(ln x)` (multiplying by a positive
/// constant preserves the argmax) — one multiplication instead of the
/// full sweep the uncached code paid twice per iteration.
fn fit_weibull_prepped(prep: &PositivePrep) -> Result<Weibull, StatsError> {
    let (n, mean_ln) = (prep.n, prep.mean_ln);

    // Menon-style moment initialization for the shape.
    let var_ln = prep.var_ln();
    let mut k = if var_ln > 0.0 {
        (std::f64::consts::PI / (6.0 * var_ln).sqrt()).max(0.02)
    } else {
        1.0
    };

    const MAX_ITERS: usize = 200;
    let mut converged = false;
    for _ in 0..MAX_ITERS {
        // Compute Σ x^k, Σ x^k ln x, Σ x^k (ln x)² in one pass, guarding overflow
        // by working with x^k = exp(k ln x − m) under the max shift.
        let m = k * prep.max_ln;
        let mut s0 = 0.0;
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        for &lx in &prep.ln {
            let w = (k * lx - m).exp();
            s0 += w;
            s1 += w * lx;
            s2 += w * lx * lx;
        }
        let r = s1 / s0;
        let g = r - 1.0 / k - mean_ln;
        let dg = (s2 / s0 - r * r) + 1.0 / (k * k);
        let step = g / dg;
        let mut next = k - step;
        if next <= 0.0 {
            next = k / 2.0;
        }
        if (next - k).abs() <= 1e-12 * k.max(1.0) {
            k = next;
            converged = true;
            break;
        }
        k = next;
    }
    if !converged {
        return Err(StatsError::NoConvergence {
            what: "weibull shape",
            iterations: MAX_ITERS,
        });
    }

    let m = k * prep.max_ln;
    let s0: f64 = prep.ln.iter().map(|&lx| (k * lx - m).exp()).sum();
    let scale = ((s0 / n).ln() + m).exp().powf(1.0 / k);
    Weibull::new(k, scale)
}

/// MLE fit of a gamma via Newton iteration on the shape.
///
/// Solves `ln k − ψ(k) = s` where `s = ln(mean) − mean(ln x)`, starting from
/// the Minka closed-form approximation; `scale = mean / k`.
///
/// # Errors
///
/// Fails on bad samples or non-convergence.
pub fn fit_gamma(data: &[f64]) -> Result<Gamma, StatsError> {
    let prep = PositivePrep::new(data)?;
    fit_gamma_prepped(&prep)
}

/// [`fit_gamma`] against an already-validated sample (the Newton
/// iteration is scalar; only the stats come from the prep).
fn fit_gamma_prepped(prep: &PositivePrep) -> Result<Gamma, StatsError> {
    let (mean, mean_ln) = (prep.mean, prep.mean_ln);
    let s = mean.ln() - mean_ln;
    if s <= 0.0 {
        // Numerically possible only for (near-)degenerate samples.
        return Err(StatsError::DegenerateSample);
    }
    // Minka's initializer.
    let mut k = (3.0 - s + ((s - 3.0).powi(2) + 24.0 * s).sqrt()) / (12.0 * s);
    const MAX_ITERS: usize = 200;
    let mut converged = false;
    for _ in 0..MAX_ITERS {
        let g = k.ln() - digamma(k) - s;
        let dg = 1.0 / k - trigamma(k);
        let mut next = k - g / dg;
        if next <= 0.0 {
            next = k / 2.0;
        }
        if (next - k).abs() <= 1e-12 * k.max(1.0) {
            k = next;
            converged = true;
            break;
        }
        k = next;
    }
    if !converged {
        return Err(StatsError::NoConvergence {
            what: "gamma shape",
            iterations: MAX_ITERS,
        });
    }
    Gamma::new(k, mean / k)
}

/// MLE fit of a normal distribution (`μ = mean`, `σ² = /n` variance).
///
/// # Errors
///
/// Fails on empty, non-finite or degenerate samples.
pub fn fit_normal(data: &[f64]) -> Result<Normal, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptySample);
    }
    for &x in data {
        if !x.is_finite() {
            return Err(StatsError::NonFiniteSample { value: x });
        }
    }
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    if var <= 0.0 {
        return Err(StatsError::DegenerateSample);
    }
    Normal::new(mean, var.sqrt())
}

/// MLE fit of a uniform distribution (`min = sample min`, `max = sample max`).
///
/// # Errors
///
/// Fails on empty, non-finite or degenerate samples.
pub fn fit_uniform(data: &[f64]) -> Result<Uniform, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptySample);
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in data {
        if !x.is_finite() {
            return Err(StatsError::NonFiniteSample { value: x });
        }
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Uniform::new(lo, hi)
}

/// Fits all four families the paper tests against TBF data (§II-B):
/// exponential, Weibull, gamma and lognormal.
///
/// Families whose fit fails (e.g. gamma on a degenerate sample) are simply
/// omitted, mirroring how an analyst would skip an inapplicable family.
pub fn fit_tbf_families(data: &[f64]) -> Vec<Fitted> {
    // One validation-and-cache pass shared by all four families; a
    // sample the prep rejects is rejected by every family.
    let Ok(prep) = PositivePrep::new(data) else {
        return Vec::new();
    };
    let mut out = Vec::with_capacity(4);
    if let Ok(d) = Exponential::from_mean(prep.mean) {
        out.push(Fitted::Exponential(d));
    }
    if let Ok(d) = fit_weibull_prepped(&prep) {
        out.push(Fitted::Weibull(d));
    }
    if let Ok(d) = fit_gamma_prepped(&prep) {
        out.push(Fitted::Gamma(d));
    }
    if let Ok(d) = fit_lognormal_prepped(&prep) {
        out.push(Fitted::LogNormal(d));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{sample_n, ContinuousDistribution};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_recovers_rate() {
        let truth = Exponential::new(0.35).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let data = sample_n(&truth, &mut rng, 100_000);
        let fit = fit_exponential(&data).unwrap();
        assert!((fit.rate() - 0.35).abs() / 0.35 < 0.02);
    }

    #[test]
    fn weibull_recovers_parameters() {
        for &(k, lam) in &[(0.6, 2.0), (1.0, 1.0), (2.5, 10.0)] {
            let truth = Weibull::new(k, lam).unwrap();
            let mut rng = StdRng::seed_from_u64(2);
            let data = sample_n(&truth, &mut rng, 50_000);
            let fit = fit_weibull(&data).unwrap();
            assert!(
                (fit.shape() - k).abs() / k < 0.03,
                "shape {k}: {}",
                fit.shape()
            );
            assert!(
                (fit.scale() - lam).abs() / lam < 0.03,
                "scale {lam}: {}",
                fit.scale()
            );
        }
    }

    #[test]
    fn gamma_recovers_parameters() {
        for &(k, t) in &[(0.7, 3.0), (4.0, 0.5)] {
            let truth = Gamma::new(k, t).unwrap();
            let mut rng = StdRng::seed_from_u64(3);
            let data = sample_n(&truth, &mut rng, 50_000);
            let fit = fit_gamma(&data).unwrap();
            assert!(
                (fit.shape() - k).abs() / k < 0.05,
                "shape {k}: {}",
                fit.shape()
            );
            assert!(
                (fit.scale() - t).abs() / t < 0.05,
                "scale {t}: {}",
                fit.scale()
            );
        }
    }

    #[test]
    fn lognormal_recovers_parameters() {
        let truth = LogNormal::new(1.2, 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let data = sample_n(&truth, &mut rng, 50_000);
        let fit = fit_lognormal(&data).unwrap();
        assert!((fit.location() - 1.2).abs() < 0.02);
        assert!((fit.shape() - 0.7).abs() < 0.02);
    }

    #[test]
    fn fits_reject_bad_samples() {
        assert_eq!(fit_exponential(&[]), Err(StatsError::EmptySample));
        assert!(matches!(
            fit_weibull(&[1.0, -2.0]),
            Err(StatsError::NonPositiveSample { .. })
        ));
        assert!(matches!(
            fit_gamma(&[2.0, 2.0, 2.0]),
            Err(StatsError::DegenerateSample)
        ));
        assert!(matches!(
            fit_lognormal(&[1.0, f64::NAN]),
            Err(StatsError::NonFiniteSample { .. })
        ));
    }

    #[test]
    fn normal_and_uniform_fits() {
        let n = fit_normal(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert!((n.mean() - 3.0).abs() < 1e-12);
        let u = fit_uniform(&[0.5, 2.5, 1.0]).unwrap();
        assert!((u.min() - 0.5).abs() < 1e-12 && (u.max() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn tbf_families_returns_all_four_on_good_data() {
        let truth = Weibull::new(1.3, 4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let data = sample_n(&truth, &mut rng, 5_000);
        let fits = fit_tbf_families(&data);
        assert_eq!(fits.len(), 4);
        let names: Vec<_> = fits.iter().map(|f| f.name()).collect();
        assert_eq!(names, ["Exponential", "Weibull", "Gamma", "LogNormal"]);
    }

    #[test]
    fn weibull_fit_handles_large_magnitudes_without_overflow() {
        // Values around 1e8 with shape ~2 would overflow naive Σ x^k sums.
        let truth = Weibull::new(2.0, 1e8).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let data = sample_n(&truth, &mut rng, 20_000);
        let fit = fit_weibull(&data).unwrap();
        assert!((fit.shape() - 2.0).abs() < 0.1);
        assert!((fit.scale() - 1e8).abs() / 1e8 < 0.05);
    }
}
