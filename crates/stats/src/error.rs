//! Error types for the statistics crate.

/// Errors produced by distribution construction, fitting, and hypothesis tests.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// A distribution parameter was out of range (non-finite, non-positive, …).
    InvalidParameter {
        /// Which parameter was rejected (e.g. `"weibull shape"`).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A fit or test was asked to run on an empty sample.
    EmptySample,
    /// A fit requires strictly positive observations but found one that is not.
    NonPositiveSample {
        /// The offending observation.
        value: f64,
    },
    /// All observations are (numerically) identical, so a scale/shape cannot
    /// be estimated.
    DegenerateSample,
    /// An iterative MLE solver failed to converge.
    NoConvergence {
        /// Which fit failed (e.g. `"weibull shape"`).
        what: &'static str,
        /// Number of iterations attempted.
        iterations: usize,
    },
    /// A hypothesis test had too few usable bins / categories.
    NotEnoughBins {
        /// Number of usable bins found.
        found: usize,
        /// Minimum required.
        required: usize,
    },
    /// A sample contained a NaN or infinite observation.
    NonFiniteSample {
        /// The offending observation.
        value: f64,
    },
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::InvalidParameter { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            StatsError::EmptySample => write!(f, "sample is empty"),
            StatsError::NonPositiveSample { value } => {
                write!(f, "sample must be strictly positive, found {value}")
            }
            StatsError::DegenerateSample => {
                write!(f, "sample is degenerate (all observations identical)")
            }
            StatsError::NoConvergence { what, iterations } => {
                write!(
                    f,
                    "{what} estimation did not converge after {iterations} iterations"
                )
            }
            StatsError::NotEnoughBins { found, required } => {
                write!(f, "test needs at least {required} bins, found {found}")
            }
            StatsError::NonFiniteSample { value } => {
                write!(f, "sample contains a non-finite observation: {value}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parameter_name() {
        let e = StatsError::InvalidParameter {
            what: "weibull shape",
            value: -1.0,
        };
        assert!(e.to_string().contains("weibull shape"));
        assert!(e.to_string().contains("-1"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&StatsError::EmptySample);
    }
}
