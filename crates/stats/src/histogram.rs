//! Fixed-width and logarithmic histograms used for the PDF-style figures.

use serde::{Deserialize, Serialize};

use crate::error::StatsError;

/// A histogram with uniformly spaced bins over `[min, max)`.
///
/// # Examples
///
/// ```
/// use dcf_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// h.add(1.0);
/// h.add(9.5);
/// h.add(-3.0); // below range → counted as underflow
/// assert_eq!(h.counts(), &[1, 0, 0, 0, 1]);
/// assert_eq!(h.underflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[min, max)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for non-finite bounds,
    /// `min >= max`, or zero bins.
    pub fn new(min: f64, max: f64, bins: usize) -> Result<Self, StatsError> {
        if !min.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "histogram min",
                value: min,
            });
        }
        if !max.is_finite() || min >= max {
            return Err(StatsError::InvalidParameter {
                what: "histogram max",
                value: max,
            });
        }
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                what: "histogram bins",
                value: 0.0,
            });
        }
        Ok(Self {
            min,
            max,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.min {
            self.underflow += 1;
            return;
        }
        if x >= self.max {
            self.overflow += 1;
            return;
        }
        let w = (self.max - self.min) / self.counts.len() as f64;
        let idx = (((x - self.min) / w) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Adds every observation in `data`.
    pub fn extend(&mut self, data: &[f64]) {
        for &x in data {
            self.add(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below `min`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `max`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index {i} out of range");
        let w = (self.max - self.min) / self.counts.len() as f64;
        self.min + (i as f64 + 0.5) * w
    }

    /// In-range counts normalized to fractions of the in-range total
    /// (an empirical PDF on the bins). Returns all-zero when empty.
    pub fn fractions(&self) -> Vec<f64> {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

/// A histogram with logarithmically spaced bins, for heavy-tailed data such
/// as TBF (Figure 5 uses a log-scaled axis).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    log_min: f64,
    log_max: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// Creates a histogram with `bins` log-uniform bins over `[min, max)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `0 < min < max` and
    /// `bins > 0`.
    pub fn new(min: f64, max: f64, bins: usize) -> Result<Self, StatsError> {
        if !min.is_finite() || min <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "log histogram min",
                value: min,
            });
        }
        if !max.is_finite() || max <= min {
            return Err(StatsError::InvalidParameter {
                what: "log histogram max",
                value: max,
            });
        }
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                what: "log histogram bins",
                value: 0.0,
            });
        }
        Ok(Self {
            log_min: min.ln(),
            log_max: max.ln(),
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Adds one observation (non-positive values count as underflow).
    pub fn add(&mut self, x: f64) {
        if x <= 0.0 || x.ln() < self.log_min {
            self.underflow += 1;
            return;
        }
        let lx = x.ln();
        if lx >= self.log_max {
            self.overflow += 1;
            return;
        }
        let w = (self.log_max - self.log_min) / self.counts.len() as f64;
        let idx = (((lx - self.log_min) / w) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below range (or non-positive).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations above range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Geometric center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index {i} out of range");
        let w = (self.log_max - self.log_min) / self.counts.len() as f64;
        (self.log_min + (i as f64 + 0.5) * w).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Histogram::new(0.0, 0.0, 3).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(LogHistogram::new(0.0, 1.0, 3).is_err());
        assert!(LogHistogram::new(1.0, 1.0, 3).is_err());
    }

    #[test]
    fn binning_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.extend(&[0.0, 0.5, 5.0, 9.99, 10.0, 11.0, -1.0]);
        assert_eq!(h.counts()[0], 2); // 0.0, 0.5
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.extend(&[0.1, 0.3, 0.6, 0.9, 0.95]);
        let total: f64 = h.fractions().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn log_binning_spans_decades() {
        let mut h = LogHistogram::new(1.0, 10_000.0, 4).unwrap();
        // Geometric centers of the 4 bins land in each decade.
        h.add(2.0);
        h.add(30.0);
        h.add(300.0);
        h.add(3000.0);
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.underflow(), 0);
        h.add(0.5);
        h.add(-1.0);
        h.add(1e6);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.overflow(), 1);
        let c1 = h.bin_center(0);
        let c2 = h.bin_center(1);
        assert!((c2 / c1 - 10.0).abs() < 1e-9, "log bins are geometric");
    }
}
