//! The paper's μ ± kσ anomaly detection (§IV): "we estimate the expectation
//! μ and the variation σ² of the FR at each rack position and discover that
//! the FRs of rack positions 22 and 35 … lie out of the range (μ−2σ, μ+2σ)."

use serde::{Deserialize, Serialize};

use crate::error::StatsError;

/// An index flagged as anomalous, with its value and z-score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Anomaly {
    /// Index of the flagged entry in the input slice.
    pub index: usize,
    /// The flagged value.
    pub value: f64,
    /// Signed number of standard deviations from the mean.
    pub z_score: f64,
}

/// Flags entries of `values` lying outside `mean ± k_sigma · std`.
///
/// The mean/σ are estimated over the full slice (as the paper does) with the
/// population (1/n) variance. Entries are returned most-extreme first.
///
/// # Errors
///
/// * [`StatsError::EmptySample`] on fewer than 3 values (σ is meaningless).
/// * [`StatsError::DegenerateSample`] if σ = 0.
/// * [`StatsError::NonFiniteSample`] on NaN/∞ inputs.
///
/// # Examples
///
/// ```
/// // Mostly-flat failure rates with two hot positions.
/// let mut fr = vec![1.0; 40];
/// fr[22] = 3.0;
/// fr[35] = 2.8;
/// let hits = dcf_stats::anomaly::sigma_outliers(&fr, 2.0).unwrap();
/// let idx: Vec<usize> = hits.iter().map(|a| a.index).collect();
/// assert_eq!(idx, vec![22, 35]);
/// ```
pub fn sigma_outliers(values: &[f64], k_sigma: f64) -> Result<Vec<Anomaly>, StatsError> {
    if values.len() < 3 {
        return Err(StatsError::EmptySample);
    }
    for &v in values {
        if !v.is_finite() {
            return Err(StatsError::NonFiniteSample { value: v });
        }
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    if var <= 0.0 {
        return Err(StatsError::DegenerateSample);
    }
    let std = var.sqrt();
    let mut out: Vec<Anomaly> = values
        .iter()
        .enumerate()
        .filter_map(|(index, &value)| {
            let z_score = (value - mean) / std;
            (z_score.abs() > k_sigma).then_some(Anomaly {
                index,
                value,
                z_score,
            })
        })
        .collect();
    out.sort_by(|a, b| {
        b.z_score
            .abs()
            .partial_cmp(&a.z_score.abs())
            .expect("finite z-scores")
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_input_is_degenerate() {
        assert!(matches!(
            sigma_outliers(&[1.0, 1.0, 1.0, 1.0], 2.0),
            Err(StatsError::DegenerateSample)
        ));
    }

    #[test]
    fn short_input_rejected() {
        assert!(matches!(
            sigma_outliers(&[1.0, 2.0], 2.0),
            Err(StatsError::EmptySample)
        ));
    }

    #[test]
    fn empty_input_is_a_typed_error() {
        assert!(matches!(
            sigma_outliers(&[], 2.0),
            Err(StatsError::EmptySample)
        ));
        assert!(matches!(
            sigma_outliers(&[1.0], 2.0),
            Err(StatsError::EmptySample)
        ));
    }

    #[test]
    fn non_finite_input_is_a_typed_error() {
        assert!(matches!(
            sigma_outliers(&[1.0, f64::NAN, 3.0], 2.0),
            Err(StatsError::NonFiniteSample { .. })
        ));
    }

    #[test]
    fn no_outliers_in_mild_noise() {
        let values = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02, 0.98];
        let hits = sigma_outliers(&values, 2.0).unwrap();
        assert!(hits.len() <= 1, "at most one borderline hit, got {hits:?}");
    }

    #[test]
    fn ordering_is_by_extremity() {
        let mut values = vec![1.0; 30];
        values[5] = 10.0; // most extreme
        values[9] = 6.0;
        let hits = sigma_outliers(&values, 2.0).unwrap();
        assert_eq!(hits[0].index, 5);
        assert_eq!(hits[1].index, 9);
        assert!(hits[0].z_score > hits[1].z_score);
    }

    #[test]
    fn detects_low_side_outliers_too() {
        let mut values = vec![10.0; 30];
        values[3] = 0.0;
        let hits = sigma_outliers(&values, 2.0).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].index, 3);
        assert!(hits[0].z_score < 0.0);
    }
}
