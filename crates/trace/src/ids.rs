//! Newtyped identifiers for all entities in the trace.
//!
//! Each id wraps a dense `u32`/`u64` index assigned by the fleet builder or
//! the FMS; newtypes keep server/rack/product-line indices from being mixed
//! up across the crates.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name($inner);

        impl $name {
            /// Wraps a raw index.
            pub fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// The raw index.
            pub fn raw(self) -> $inner {
                self.0
            }

            /// The raw index as a `usize`, for direct slice indexing.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// A failure operation ticket id, unique within a trace.
    FotId, u64, "fot-"
);
id_type!(
    /// A server (host) id, dense within a fleet.
    ServerId, u32, "host-"
);
id_type!(
    /// A data center id (`host_idc` in the paper's schema).
    DataCenterId, u16, "idc-"
);
id_type!(
    /// A product line id; the company partitions servers into hundreds of these.
    ProductLineId, u16, "pl-"
);
id_type!(
    /// A human operator id.
    OperatorId, u16, "op-"
);
id_type!(
    /// A rack id, dense within a data center.
    RackId, u32, "rack-"
);

/// A server's slot position within its rack (the paper's `error_position`).
///
/// Positions are small integers; the paper's example racks have ~40 slots
/// with anomalies at positions 22 and 35.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RackPosition(u8);

impl RackPosition {
    /// Wraps a raw slot number.
    pub fn new(slot: u8) -> Self {
        Self(slot)
    }

    /// The raw slot number.
    pub fn raw(self) -> u8 {
        self.0
    }

    /// The slot number as a `usize` for slice indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RackPosition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_display() {
        let s = ServerId::new(42);
        assert_eq!(s.raw(), 42);
        assert_eq!(s.index(), 42);
        assert_eq!(s.to_string(), "host-42");
        assert_eq!(ServerId::from(42), s);
        assert_eq!(DataCenterId::new(3).to_string(), "idc-3");
        assert_eq!(FotId::new(7).to_string(), "fot-7");
        assert_eq!(RackPosition::new(22).to_string(), "u22");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(ServerId::new(1) < ServerId::new(2));
        assert!(RackPosition::new(22) < RackPosition::new(35));
    }

    #[test]
    fn serde_is_transparent() {
        // Minimal build environments stub serde_json; skip if so.
        let Ok(json) =
            std::panic::catch_unwind(|| serde_json::to_string(&ServerId::new(9)).unwrap())
        else {
            return;
        };
        assert_eq!(json, "9");
        let back: ServerId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ServerId::new(9));
    }
}
